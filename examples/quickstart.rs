//! Quickstart: run one benchmark under conventional DRAM and under PRA,
//! and print the side-by-side power breakdown.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pra_repro::{Scheme, SimBuilder};

fn main() {
    let instructions = 100_000;
    println!("running GUPS (single core, {instructions} instructions) under two schemes...\n");

    let run = |scheme: Scheme| {
        SimBuilder::new()
            .app(pra_repro::workloads::gups())
            .scheme(scheme)
            .instructions(instructions)
            .run()
    };
    let baseline = run(Scheme::Baseline);
    let pra = run(Scheme::Pra);

    println!("baseline DRAM power:\n{}\n", baseline.power);
    println!("PRA DRAM power:\n{}\n", pra.power);

    let saving = 1.0 - pra.power.total() / baseline.power.total();
    println!("total DRAM power saving with PRA: {:.1}%", saving * 100.0);
    println!(
        "row-activation power saving:       {:.1}%",
        (1.0 - pra.power.act_pre / baseline.power.act_pre) * 100.0
    );
    println!(
        "write I/O power saving:            {:.1}%",
        (1.0 - pra.power.wr_io / baseline.power.wr_io) * 100.0
    );
    println!(
        "performance cost (IPC):            {:.2}%",
        (1.0 - pra.ipc[0] / baseline.ipc[0]) * 100.0
    );
    println!();
    println!(
        "PRA activation granularities (eighths of a row, 1/8..full): {:?}",
        pra.dram
            .granularity_proportions()
            .map(|p| format!("{:.1}%", p * 100.0))
    );
}
