//! Define a custom workload profile and drive the full system with it —
//! the path a downstream user takes to evaluate PRA on their own
//! application's memory behaviour.
//!
//! ```bash
//! cargo run --release --example custom_workload
//! ```

use pra_repro::workloads::{AccessPattern, BenchProfile};
use pra_repro::{Scheme, SimBuilder};

fn main() {
    // A hypothetical key-value store: moderate streaming scans mixed with
    // random point updates that dirty two adjacent words (key metadata +
    // value pointer).
    let kv_store = BenchProfile {
        name: "kv-store",
        compute_per_mem: 12,
        store_fraction: 0.35,
        rmw_prob: 0.8,
        pattern: AccessPattern::Streamed {
            streams: 2,
            stream_prob: 0.35,
            burst: 2,
        },
        stores_stream: false,
        footprint_lines: 48 * 1024 * 1024 / 64,
        dirty_words_dist: [0.30, 0.60, 0.05, 0.05, 0.0, 0.0, 0.0, 0.0],
    };
    kv_store.assert_valid();
    println!(
        "custom profile '{}': {:.2} dirty words per store on average\n",
        kv_store.name,
        kv_store.expected_dirty_words()
    );

    for scheme in [Scheme::Baseline, Scheme::Pra] {
        let report = SimBuilder::new()
            .homogeneous(kv_store, 4)
            .name(kv_store.name)
            .scheme(scheme)
            .instructions(50_000)
            .run();
        println!("--- {} ---", report.scheme);
        println!("  total power:       {:>8.1} mW", report.power.total());
        println!("  activation power:  {:>8.1} mW", report.power.act_pre);
        println!("  write I/O power:   {:>8.1} mW", report.power.wr_io);
        println!("  IPC (sum):         {:>8.2}", report.ipc_sum());
        println!(
            "  row-buffer hits:   rd {:>5.1}%  wr {:>5.1}%",
            report.dram.read.hit_rate() * 100.0,
            report.dram.write.hit_rate() * 100.0
        );
        if report.scheme == "PRA" {
            println!(
                "  false row-buffer hits: rd {} wr {}",
                report.dram.read.false_hits, report.dram.write.false_hits
            );
            let p = report.dram.granularity_proportions();
            println!(
                "  activation granularity: 1/8 {:.1}%  2/8 {:.1}%  full {:.1}%",
                p[0] * 100.0,
                p[1] * 100.0,
                p[7] * 100.0
            );
        }
        println!();
    }
}
