//! Record a workload region to a trace file, inspect it, and drive a
//! trace-replayed simulation — the portable-workload path for users who
//! want to evaluate PRA on captured access streams instead of synthetic
//! generators.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use pra_repro::workloads::{Trace, WorkloadGen};
use pra_repro::{Scheme, SimBuilder};

fn main() -> std::io::Result<()> {
    // 1. Record a region of em3d.
    let mut generator = WorkloadGen::new(pra_repro::workloads::em3d(), 42, 0);
    let trace = Trace::record(&mut generator, 400_000);
    println!(
        "recorded {} ops ({} memory ops) of em3d",
        trace.len(),
        trace.memory_ops()
    );

    // 2. Round-trip it through the text format, as a file-based flow would.
    let mut buffer = Vec::new();
    trace.save(&mut buffer)?;
    println!("serialised trace: {} bytes", buffer.len());
    let reloaded = Trace::load(buffer.as_slice())?;
    assert_eq!(reloaded, trace);

    // 3. Drive the full system from the reloaded trace, baseline vs PRA.
    for scheme in [Scheme::Baseline, Scheme::Pra] {
        let report = SimBuilder::new()
            .app_trace("em3d-region", reloaded.clone())
            .scheme(scheme)
            .instructions(30_000)
            .warmup_mem_ops(100_000)
            .run();
        println!(
            "{:<10} power {:>7.1} mW  act {:>6.1} mW  wr-io {:>5.1} mW  IPC {:.3}",
            report.scheme,
            report.power.total(),
            report.power.act_pre,
            report.power.wr_io,
            report.ipc[0],
        );
    }
    Ok(())
}
