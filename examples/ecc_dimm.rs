//! The ECC-DIMM compatibility story of Section 4.2: on an x72 DIMM, the
//! ninth (ECC) chip has its PRA# pin strapped to VDD, so it ignores PRA
//! masks and always activates full rows, while the eight data chips
//! partially activate.
//!
//! ```bash
//! cargo run --release --example ecc_dimm
//! ```

use pra_repro::pra_core::{PraChip, PraPin};
use pra_repro::WordMask;

fn main() {
    // Eight data chips plus one ECC chip, as on an x72 registered DIMM.
    let mut data_chips: Vec<PraChip> = (0..8).map(|_| PraChip::new(8)).collect();
    let mut ecc_chip = PraChip::new_ecc_strapped(8);

    // A writeback with two dirty words arrives: the controller pulls PRA#
    // low and puts mask 10000001b on the address bus.
    let mask = WordMask::from_words([0, 7]);
    println!("write with dirty mask {mask} to bank 2\n");

    let mut total_mats = 0;
    for (i, chip) in data_chips.iter_mut().enumerate() {
        let act = chip.activate(2, PraPin::PartialActivation, mask);
        total_mats += act.mats;
        if i == 0 {
            println!(
                "data chips:  activate {} MATs each ({} groups), +{} cycle for mask delivery",
                act.mats, act.selected_groups, act.extra_cycles
            );
        }
    }
    let ecc_act = ecc_chip.activate(2, PraPin::PartialActivation, mask);
    total_mats += ecc_act.mats;
    println!(
        "ECC chip:    activates {} MATs (full row — PRA# strapped high, mask ignored)",
        ecc_act.mats
    );

    let conventional = 9 * 16;
    println!(
        "\nDIMM-level activation: {total_mats} of {conventional} MATs ({:.0}% saved)",
        (1.0 - f64::from(total_mats) / f64::from(conventional)) * 100.0
    );

    // The ECC chip still receives and stores every ECC byte: all words land.
    assert!((0..8).all(|w| ecc_chip.word_lands(2, w)));
    // Data chips ignore clean words ("don't care" data).
    assert!(data_chips[0].word_lands(2, 0));
    assert!(!data_chips[0].word_lands(2, 3));
    println!("ECC bytes stored for all eight words; clean data words are don't-care. OK");
}
