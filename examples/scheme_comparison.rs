//! Compare every scheme the paper evaluates — baseline, FGA, Half-DRAM,
//! PRA, and the combined case studies — on one multiprogrammed mix.
//!
//! ```bash
//! cargo run --release --example scheme_comparison [instructions]
//! ```

use pra_repro::{Scheme, SimBuilder};

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60_000);
    let mix = &pra_repro::workloads::all_mixes()[1]; // MIX2: the memory-bound mix
    println!(
        "running {} ({}) x 4 cores, {instructions} instructions/core\n",
        mix.name,
        mix.apps
            .iter()
            .map(|a| a.name)
            .collect::<Vec<_>>()
            .join("+"),
    );

    let schemes = [
        Scheme::Baseline,
        Scheme::Fga,
        Scheme::HalfDram,
        Scheme::Pra,
        Scheme::HalfDramPra,
        Scheme::Dbi,
        Scheme::DbiPra,
    ];
    let mut baseline_power = 0.0;
    let mut baseline_edp = 0.0;
    println!(
        "{:<15} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "scheme", "power mW", "vs base", "IPC sum", "energy mJ", "EDP", "falsehit"
    );
    for scheme in schemes {
        let r = SimBuilder::new()
            .mix(mix.apps)
            .name(mix.name)
            .scheme(scheme)
            .instructions(instructions)
            .run();
        if scheme == Scheme::Baseline {
            baseline_power = r.power.total();
            baseline_edp = r.edp();
        }
        println!(
            "{:<15} {:>9.1} {:>8.1}% {:>9.2} {:>9.3} {:>10.3} {:>9}",
            r.scheme,
            r.power.total(),
            (r.power.total() / baseline_power - 1.0) * 100.0,
            r.ipc_sum(),
            r.energy_mj(),
            r.edp() / baseline_edp,
            r.dram.read.false_hits + r.dram.write.false_hits,
        );
    }
    println!("\n(EDP column is normalised to the baseline run)");
}
