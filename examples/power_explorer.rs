//! Explore the analytic power models without running any simulation: the
//! CACTI-style activation-energy curve (Figure 9), the Eq. (1)/(2) IDD
//! derivation, the per-granularity ACT power array (Table 3), and the
//! Section 4.2 hardware overheads.
//!
//! ```bash
//! cargo run --release --example power_explorer
//! ```

use pra_repro::dram_power::{
    overheads, ActivationEnergyModel, DevicePowerTimings, IddParams, PowerParams,
};

fn main() {
    let model = ActivationEnergyModel::paper_table2();
    println!("== activation energy vs activated MATs (Figure 9) ==");
    for point in model.figure9_series() {
        let bar = "#".repeat((point.ratio * 40.0) as usize);
        println!(
            "{:>2} MATs {:>8.1} pJ {:>6.1}% {bar}",
            point.mats,
            point.energy_pj,
            point.ratio * 100.0
        );
    }
    println!(
        "\nshared structures keep the 8-MAT activation at {:.1}% of full-row energy\n",
        model.scaling_factor(8) * 100.0
    );

    println!("== Eq. (1)/(2): activation power from IDD currents ==");
    let idd = IddParams::calibrated_to_paper();
    let t = DevicePowerTimings::ddr3_1600();
    println!(
        "IDD0 {:.2} mA, IDD2N {:.1} mA, IDD3N {:.1} mA, VDD {:.2} V",
        idd.idd0_ma, idd.idd2n_ma, idd.idd3n_ma, idd.vdd
    );
    println!(
        "I_ACT = {:.2} mA  ->  P_ACT = {:.2} mW (paper: 22.2 mW)\n",
        idd.i_act_ma(&t),
        idd.p_act_mw(&t)
    );

    println!("== per-granularity activation power (Table 3) ==");
    let params = PowerParams::paper_table3();
    for g in 1..=8u32 {
        println!(
            "{g}/8 row: published {:>5.1} mW | CACTI-projected {:>5.2} mW",
            params.act_power_mw(g),
            params.act_power_mw(8) * model.scaling_for_granularity(g)
        );
    }

    println!("\n== PRA hardware overheads (Section 4.2) ==");
    let pra = overheads::PraOverheads::paper_section42();
    println!(
        "PRA latches: {} x {:.2} um^2, {:.1} uW each -> {:.2}% die area, {:.3}% of ACT power",
        pra.latches_per_chip,
        pra.latch_area_um2,
        pra.latch_power_uw,
        pra.published_latch_area_overhead * 100.0,
        pra.published_latch_power_overhead * 100.0
    );
    println!(
        "wordline AND gates: ~{:.0}% die area; total PRA area overhead ~{:.1}%",
        pra.published_wordline_gate_area_overhead * 100.0,
        pra.total_area_overhead() * 100.0
    );
    let l1 = overheads::FgdOverheads::l1_32k();
    let l2 = overheads::FgdOverheads::l2_4m();
    println!(
        "FGD bits (+{} per line): L1 area +{:.2}%, energy +{:.2}%; L2 area +{:.2}%, energy +{:.2}%",
        overheads::FgdOverheads::extra_bits_per_line(),
        l1.area * 100.0,
        l1.dynamic_energy * 100.0,
        l2.area * 100.0,
        l2.dynamic_energy * 100.0
    );
}
