//! Cross-crate integration tests: full-system runs exercising the paper's
//! headline claims end to end.

use pra_repro::{PagePolicy, Report, Scheme, SimBuilder};

fn run(scheme: Scheme, profile: workloads::BenchProfile, policy: PagePolicy) -> Report {
    SimBuilder::new()
        .app(profile)
        .scheme(scheme)
        .policy(policy)
        .instructions(30_000)
        .warmup_mem_ops(400_000)
        .seed(7)
        .run()
}

#[test]
fn pra_saves_total_power_on_every_random_write_benchmark() {
    for profile in [
        workloads::gups(),
        workloads::em3d(),
        workloads::linked_list(),
    ] {
        let base = run(Scheme::Baseline, profile, PagePolicy::RelaxedClosePage);
        let pra = run(Scheme::Pra, profile, PagePolicy::RelaxedClosePage);
        assert!(
            pra.power.total() < base.power.total() * 0.95,
            "{}: PRA {} vs baseline {}",
            profile.name,
            pra.power.total(),
            base.power.total()
        );
    }
}

#[test]
fn pra_performance_cost_is_small() {
    // Paper: 0.8% average, 4.8% worst-case performance loss.
    let base = run(
        Scheme::Baseline,
        workloads::gups(),
        PagePolicy::RelaxedClosePage,
    );
    let pra = run(Scheme::Pra, workloads::gups(), PagePolicy::RelaxedClosePage);
    let ratio = pra.ipc[0] / base.ipc[0];
    assert!(
        ratio > 0.90,
        "PRA must not cost more than ~10% IPC, got ratio {ratio}"
    );
}

#[test]
fn fga_loses_performance_pra_does_not() {
    let base = run(
        Scheme::Baseline,
        workloads::lbm(),
        PagePolicy::RelaxedClosePage,
    );
    let fga = run(Scheme::Fga, workloads::lbm(), PagePolicy::RelaxedClosePage);
    let pra = run(Scheme::Pra, workloads::lbm(), PagePolicy::RelaxedClosePage);
    // FGA's halved prefetch width must hurt clearly more than PRA.
    let fga_loss = 1.0 - fga.ipc[0] / base.ipc[0];
    let pra_loss = 1.0 - pra.ipc[0] / base.ipc[0];
    assert!(
        fga_loss > pra_loss + 0.05,
        "FGA loss {fga_loss:.3} must clearly exceed PRA loss {pra_loss:.3}"
    );
}

#[test]
fn half_dram_saves_activation_but_not_write_io() {
    let base = run(
        Scheme::Baseline,
        workloads::gups(),
        PagePolicy::RelaxedClosePage,
    );
    let half = run(
        Scheme::HalfDram,
        workloads::gups(),
        PagePolicy::RelaxedClosePage,
    );
    let pra = run(Scheme::Pra, workloads::gups(), PagePolicy::RelaxedClosePage);
    assert!(
        half.power.act_pre < base.power.act_pre * 0.7,
        "Half-DRAM halves activations"
    );
    // Half-DRAM moves full lines; PRA moves only dirty words.
    let half_io_energy = half.energy.wr_io / half.dram.writes_completed.max(1) as f64;
    let base_io_energy = base.energy.wr_io / base.dram.writes_completed.max(1) as f64;
    let pra_io_energy = pra.energy.wr_io / pra.dram.writes_completed.max(1) as f64;
    assert!((half_io_energy / base_io_energy - 1.0).abs() < 0.05);
    assert!(
        pra_io_energy < base_io_energy * 0.5,
        "GUPS writes one word of eight"
    );
}

#[test]
fn restricted_policy_reflects_dirty_distribution_directly() {
    // Section 5.2.1: with restricted close-page the dirty-word distribution
    // maps straight onto activation granularity.
    let pra = run(
        Scheme::Pra,
        workloads::gups(),
        PagePolicy::RestrictedClosePage,
    );
    let props = pra.dram.granularity_proportions();
    // GUPS stores dirty exactly one word: every write activation is 1/8.
    let write_share = pra.dram.write_activation_share();
    assert!(
        (props[0] - write_share).abs() < 0.05,
        "1/8 share {} should track the write-activation share {}",
        props[0],
        write_share
    );
    assert!(props[7] > 0.3, "read activations stay full-row");
}

#[test]
fn pra_false_hits_are_rare_for_reads() {
    // Paper: max 0.26%, average 0.04% of reads are false hits.
    for profile in [workloads::libquantum(), workloads::gups(), workloads::lbm()] {
        let pra = run(Scheme::Pra, profile, PagePolicy::RelaxedClosePage);
        let rate = pra.dram.read.false_hits as f64 / pra.dram.read.total().max(1) as f64;
        assert!(rate < 0.02, "{}: read false-hit rate {rate}", profile.name);
    }
}

#[test]
fn combined_half_dram_pra_beats_components_on_activation_power() {
    let policy = PagePolicy::RestrictedClosePage;
    let half = run(Scheme::HalfDram, workloads::gups(), policy);
    let pra = run(Scheme::Pra, workloads::gups(), policy);
    let combined = run(Scheme::HalfDramPra, workloads::gups(), policy);
    assert!(combined.power.act_pre < half.power.act_pre);
    assert!(combined.power.act_pre < pra.power.act_pre);
}

#[test]
fn dbi_increases_write_row_hits() {
    let base = run(
        Scheme::Baseline,
        workloads::em3d(),
        PagePolicy::RelaxedClosePage,
    );
    let dbi = run(Scheme::Dbi, workloads::em3d(), PagePolicy::RelaxedClosePage);
    assert!(
        dbi.cache.dbi_writebacks > 0,
        "DBI must proactively write back"
    );
    assert!(
        dbi.dram.write.hit_rate() > base.dram.write.hit_rate(),
        "DBI row-clusters writebacks: {} vs {}",
        dbi.dram.write.hit_rate(),
        base.dram.write.hit_rate()
    );
}

#[test]
fn energy_is_conserved_across_breakdown() {
    let r = run(
        Scheme::Pra,
        workloads::omnetpp(),
        PagePolicy::RelaxedClosePage,
    );
    let e = r.energy;
    let sum = e.act_pre + e.rd + e.wr + e.rd_io + e.wr_io + e.bg + e.refresh;
    assert!((sum - e.total()).abs() < 1e-6);
    // Power x time == energy.
    let back = r.power.total() * r.runtime_ns;
    assert!((back - e.total()).abs() / e.total() < 1e-9);
}

#[test]
fn reports_are_deterministic() {
    let a = run(Scheme::Pra, workloads::mcf(), PagePolicy::RelaxedClosePage);
    let b = run(Scheme::Pra, workloads::mcf(), PagePolicy::RelaxedClosePage);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
    assert_eq!(a.dram.activations, b.dram.activations);
    assert_eq!(a.dram.read.hits, b.dram.read.hits);
    assert!((a.energy.total() - b.energy.total()).abs() < 1e-9);
}
