//! Calibration regression tests: the Table 1 / Figure 3 *shape* invariants
//! the whole evaluation rests on must survive any future retuning of the
//! workload profiles or simulator. Runs at reduced scale; the full-scale
//! numbers live in EXPERIMENTS.md.

use pra_repro::pra_core::experiments::{table1, ExperimentConfig};
use pra_repro::{Scheme, SimBuilder};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        instructions: 25_000,
        seed: 1,
        warmup: Some(250_000),
    }
}

#[test]
fn locality_asymmetry_holds_for_every_benchmark() {
    // The paper's central Table 1 observation: reads have (much) better row
    // locality than writes, for every benchmark — up to noise for the
    // random benchmarks whose rates are both within a percent of zero.
    for row in table1(&cfg()) {
        assert!(
            row.rb_hit.0 + 0.02 >= row.rb_hit.1,
            "{}: read hit {:.3} must be >= write hit {:.3}",
            row.name,
            row.rb_hit.0,
            row.rb_hit.1
        );
        // Where locality is meaningful at all, reads must clearly lead.
        if row.rb_hit.0 > 0.10 {
            assert!(
                row.rb_hit.0 > row.rb_hit.1,
                "{}: {:.3} vs {:.3}",
                row.name,
                row.rb_hit.0,
                row.rb_hit.1
            );
        }
    }
}

#[test]
fn benchmark_character_matches_table1() {
    let rows = table1(&cfg());
    let get = |name: &str| rows.iter().find(|r| r.name == name).expect(name);

    // libquantum has the best locality of the suite, on both sides.
    let libquantum = get("libquantum");
    for row in &rows {
        assert!(
            libquantum.rb_hit.0 >= row.rb_hit.0 - 1e-9,
            "{} out-hits libquantum",
            row.name
        );
    }
    assert!(
        libquantum.rb_hit.1 > 0.3,
        "libquantum write locality is real"
    );

    // The random/pointer benchmarks have essentially no locality.
    for name in ["em3d", "GUPS", "LinkedList"] {
        let row = get(name);
        assert!(row.rb_hit.0 < 0.05, "{name} read hit {:.3}", row.rb_hit.0);
        assert!(row.rb_hit.1 < 0.05, "{name} write hit {:.3}", row.rb_hit.1);
    }

    // Write-traffic ordering: the RMW-heavy benchmarks approach 50 %,
    // mcf stays the most read-dominated.
    let mcf = get("mcf");
    for name in ["em3d", "GUPS"] {
        let row = get(name);
        assert!(
            row.traffic.1 > 0.40,
            "{name} write traffic {:.3}",
            row.traffic.1
        );
        assert!(row.traffic.1 > mcf.traffic.1, "{name} must out-write mcf");
    }
    assert!(mcf.traffic.0 > 0.75, "mcf read share {:.3}", mcf.traffic.0);

    // Suite averages stay in the paper's neighbourhood.
    let n = rows.len() as f64;
    let avg_read_traffic: f64 = rows.iter().map(|r| r.traffic.0).sum::<f64>() / n;
    let avg_write_acts: f64 = rows.iter().map(|r| r.activations.1).sum::<f64>() / n;
    assert!(
        (0.55..=0.75).contains(&avg_read_traffic),
        "avg read traffic {avg_read_traffic:.3} (paper: 0.64)"
    );
    assert!(
        (0.30..=0.55).contains(&avg_write_acts),
        "avg write activation share {avg_write_acts:.3} (paper: 0.42)"
    );
}

#[test]
fn dirty_word_distribution_is_single_word_dominated() {
    // Figure 3's shape: across the suite, most evicted dirty lines carry
    // very few dirty words.
    let reports = pra_repro::pra_core::experiments::motivation_runs(&cfg());
    let mut single = 0.0;
    let mut counted = 0;
    for report in &reports {
        let dist = report.cache.dirty_word_proportions();
        if dist.iter().sum::<f64>() > 0.0 {
            single += dist[0];
            counted += 1;
        }
    }
    assert!(counted >= 6, "most benchmarks must produce writebacks");
    let avg_single = single / f64::from(counted);
    assert!(
        avg_single > 0.6,
        "avg single-word share {avg_single:.3} (paper-like: ~0.8)"
    );
}

#[test]
fn pra_shape_on_the_flagship_claims() {
    // A 4-core GUPS run must show the paper's three headline directions at
    // once: big activation saving, bigger write-I/O saving, tiny
    // performance impact.
    let run = |scheme: Scheme| {
        SimBuilder::new()
            .homogeneous(workloads::gups(), 4)
            .name("GUPS")
            .scheme(scheme)
            .instructions(10_000)
            .warmup_mem_ops(80_000)
            .run()
    };
    let base = run(Scheme::Baseline);
    let pra = run(Scheme::Pra);
    let act_saving = 1.0 - pra.power.act_pre / base.power.act_pre;
    let wr_io_saving = 1.0 - pra.power.wr_io / base.power.wr_io;
    let perf_ratio = pra.ipc_sum() / base.ipc_sum();
    assert!(act_saving > 0.15, "activation saving {act_saving:.3}");
    assert!(wr_io_saving > 0.5, "write I/O saving {wr_io_saving:.3}");
    assert!(wr_io_saving > act_saving, "GUPS: I/O saving dominates");
    assert!(perf_ratio > 0.93, "performance ratio {perf_ratio:.3}");
}
