//! # pra-repro
//!
//! A from-scratch Rust reproduction of **“Partial Row Activation for
//! Low-Power DRAM System”** (Lee, Kim, Hong, Kim — HPCA 2017).
//!
//! PRA attacks DRAM's *row overfetching* problem asymmetrically: reads keep
//! activating full rows (preserving the n-bit prefetch and full bandwidth),
//! while writes activate only the MAT groups holding the cache line's dirty
//! words — from one-eighth of a row up to a full row — and drive only those
//! words on the bus.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`mem_model`] | addresses, DRAM geometry, address mappings, word masks, requests |
//! | [`dram_power`] | IDD power model (Table 3), CACTI-style activation energy (Table 2/Fig. 9), energy accounting |
//! | [`dram_sim`] | cycle-level DDR3 memory system with pluggable activation schemes |
//! | [`cache_sim`] | L1/L2 hierarchy with fine-grained dirty bits (FGD) and the Dirty-Block Index |
//! | [`cpu_sim`] | simplified OoO multi-core model, IPC and weighted speedup |
//! | [`workloads`] | synthetic benchmarks calibrated to the paper's Table 1 / Figure 3 |
//! | [`sim_fault`] | deterministic fault injection: mask corruption, command drop/stretch, dirty-bit flips, refresh stress |
//! | [`pra_core`] | the PRA mechanism, scheme composition, [`SimBuilder`] and per-figure experiments |
//!
//! # Quickstart
//!
//! ```
//! use pra_repro::{Scheme, SimBuilder};
//!
//! let baseline = SimBuilder::new()
//!     .app(pra_repro::workloads::gups())
//!     .scheme(Scheme::Baseline)
//!     .instructions(20_000)
//!     .warmup_mem_ops(400_000)
//!     .run();
//! let pra = SimBuilder::new()
//!     .app(pra_repro::workloads::gups())
//!     .scheme(Scheme::Pra)
//!     .instructions(20_000)
//!     .warmup_mem_ops(400_000)
//!     .run();
//! assert!(pra.power.total() < baseline.power.total());
//! ```
//!
//! Every table and figure of the paper's evaluation regenerates via the
//! `bench` crate's binaries (`cargo run -p bench --release --bin fig12`);
//! see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! measured-vs-paper results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cache_sim;
pub use cpu_sim;
pub use dram_power;
pub use dram_sim;
pub use mem_model;
pub use pra_core;
pub use sim_fault;
pub use workloads;

pub use dram_sim::{PagePolicy, SchemeBehavior};
pub use mem_model::{PhysAddr, WordMask};
pub use pra_core::{Report, Scheme, SimBuilder, SimError};
pub use sim_fault::{FaultCounts, FaultPlan};
