//! Recovery-pipeline behaviour of the memory system: C/A-parity alerts
//! with bounded replay, terminal full-row fallback under persistent
//! faults, parity escapes, metric reconciliation and determinism.

use dram_sim::{DramConfig, MemorySystem, PagePolicy, RecoveryConfig, SchemeBehavior};
use mem_model::rng::Rng;
use mem_model::{MemRequest, PhysAddr, WordMask};
use sim_fault::{Domain, FaultPlan};

/// PRA configuration with the protocol checker forced on, so every test
/// also validates replay-timing legality (a premature replay is a
/// protocol violation and panics the run).
fn pra_config(recovery: Option<RecoveryConfig>) -> DramConfig {
    let mut cfg = DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
    cfg.verify_protocol = true;
    cfg.recovery = recovery;
    cfg
}

fn small_recovery() -> RecoveryConfig {
    RecoveryConfig {
        alert_latency: 6,
        max_retries: 2,
        backoff_cycles: 8,
        probation_cycles: 50_000,
    }
}

/// Feeds a deterministic mixed read/partial-write stream and drains.
fn run_stream(mem: &mut MemorySystem, ops: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    for id in 0..ops as u64 {
        let line = rng.bounded_u64(1 << 20);
        let addr = PhysAddr::from_line_number(line);
        let req = if rng.random_bool(0.5) {
            let bits = 1u8 << rng.bounded_u64(6) as u8;
            MemRequest::write(id, addr, WordMask::from_bits(bits | 1))
        } else {
            MemRequest::read(id, addr)
        };
        while mem.try_enqueue(req).is_err() {
            mem.tick();
        }
    }
    assert!(mem.run_until_idle(2_000_000), "system failed to drain");
}

#[test]
fn recovery_without_faults_is_bit_identical_to_no_recovery() {
    let run = |recovery: Option<RecoveryConfig>, attach_disabled_injector: bool| {
        let mut mem = MemorySystem::new(pra_config(recovery));
        if attach_disabled_injector {
            mem.set_fault_injector(FaultPlan::disabled().injector(Domain::Dram));
        }
        run_stream(&mut mem, 150, 21);
        format!("{:?}", mem.stats())
    };
    let baseline = run(None, false);
    assert_eq!(
        baseline,
        run(Some(small_recovery()), false),
        "recovery engine must be inert without faults"
    );
    assert_eq!(
        baseline,
        run(Some(small_recovery()), true),
        "recovery plus a disabled injector must also be inert"
    );
    let mut mem = MemorySystem::new(pra_config(Some(small_recovery())));
    run_stream(&mut mem, 150, 21);
    assert_eq!(
        mem.recovery_counts(),
        dram_sim::RecoveryCounts::default(),
        "no fault fired, so no counter may move"
    );
}

#[test]
fn persistent_fault_exhausts_budget_and_falls_back_to_full_row() {
    // A single partial write to a site where the mask transfer fails
    // deterministically on every attempt: two replays consume the budget,
    // the third alert exhausts it, and the terminal fallback is a
    // checker-verified full-row activation plus a scoreboard demotion.
    let plan = FaultPlan {
        seed: 1,
        mask_corrupt_rate: 1.0,
        persistent_rate: 1.0,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config(Some(small_recovery())));
    mem.set_fault_injector(plan.injector(Domain::Dram));
    mem.try_enqueue(MemRequest::write(
        1,
        PhysAddr::from_line_number(42),
        WordMask::single(0),
    ))
    .unwrap();
    assert!(mem.run_until_idle(100_000));
    let rec = mem.recovery_counts();
    assert_eq!(
        (rec.alerts, rec.retries, rec.exhausted),
        (3, 2, 1),
        "two replays then exhaustion: {rec:?}"
    );
    assert_eq!(rec.recovered, 0, "a persistent site never recovers");
    assert_eq!(rec.demotions, 1, "the faulty row is demoted");
    let stats = mem.stats();
    assert_eq!(stats.degraded_activations, 1);
    assert_eq!(
        stats.act_histogram[15], 1,
        "the fallback activation opened the full row (checker-verified)"
    );
    assert_eq!(stats.writes_completed, 1, "the write still retires");
    let counts = mem.fault_counts();
    assert_eq!(counts.masks_corrupted, 3, "one corruption per attempt");
    assert_eq!(counts.detected, 3, "parity caught every attempt");
    assert_eq!(counts.degraded, 1, "only the terminal fallback degrades");
}

#[test]
fn demoted_row_activates_full_until_probation_ends() {
    let plan = FaultPlan {
        seed: 1,
        mask_corrupt_rate: 1.0,
        persistent_rate: 1.0,
        ..FaultPlan::disabled()
    };
    let mut recovery = small_recovery();
    recovery.probation_cycles = 2_000;
    let mut mem = MemorySystem::new(pra_config(Some(recovery)));
    mem.set_fault_injector(plan.injector(Domain::Dram));
    let addr = PhysAddr::from_line_number(42);
    mem.try_enqueue(MemRequest::write(1, addr, WordMask::single(0)))
        .unwrap();
    assert!(mem.run_until_idle(100_000));
    assert_eq!(mem.recovery_counts().demotions, 1);
    // Idle long enough for the relaxed close-page policy to precharge,
    // so the next write needs a fresh activation.
    for _ in 0..200 {
        mem.tick();
    }
    // A second write to the demoted row inside probation: the controller
    // skips the mask transfer entirely, so the persistent fault cannot
    // fire and no further alerts are raised.
    mem.try_enqueue(MemRequest::write(2, addr, WordMask::single(1)))
        .unwrap();
    assert!(mem.run_until_idle(100_000));
    let rec = mem.recovery_counts();
    assert_eq!(rec.alerts, 3, "the demoted row raised no new alert");
    assert_eq!(mem.stats().act_histogram[15], 2, "both ACTs were full-row");
    // After probation the row is re-promoted and the mask transfer (and
    // its persistent fault) comes back.
    for _ in 0..2_100 {
        mem.tick();
    }
    mem.try_enqueue(MemRequest::write(3, addr, WordMask::single(2)))
        .unwrap();
    assert!(mem.run_until_idle(100_000));
    let rec = mem.recovery_counts();
    assert_eq!(rec.promotions, 1, "probation elapsed, row re-promoted");
    assert!(rec.alerts > 3, "the promoted row faults again");
}

#[test]
fn escaped_faults_are_counted_but_undetected() {
    // Every mask fault flips an even number of bits: parity matches, the
    // chip activates with silently wrong coverage, and the only trace is
    // the fault.dram.escaped counter.
    let plan = FaultPlan {
        seed: 7,
        mask_corrupt_rate: 1.0,
        mask_escape_rate: 1.0,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config(Some(small_recovery())));
    mem.set_fault_injector(plan.injector(Domain::Dram));
    run_stream(&mut mem, 150, 31);
    let counts = mem.fault_counts();
    let stats = mem.stats();
    assert!(counts.masks_corrupted > 0);
    assert_eq!(
        counts.escaped, counts.masks_corrupted,
        "every fault escaped"
    );
    assert_eq!(counts.detected, 0, "escapes are invisible to parity");
    assert_eq!(stats.parity_escapes, counts.escaped);
    assert_eq!(stats.degraded_activations, 0);
    assert_eq!(
        mem.recovery_counts().alerts,
        0,
        "nothing detected, nothing recovered"
    );
    mem.finish_observability();
    assert_eq!(
        mem.observer().registry.counter_value("fault.dram.escaped"),
        Some(counts.escaped)
    );
}

#[test]
fn mixed_fault_storm_reconciles_and_replays_deterministically() {
    // Aggressive mixed transient/persistent plan with drops and escapes.
    // Invariants: every injected fault is either detected (and enters the
    // recovery pipeline) or escaped (and is counted); nothing is silently
    // lost; and the whole pipeline is digest-deterministic.
    let plan = FaultPlan {
        seed: 99,
        command_drop_rate: 0.3,
        mask_corrupt_rate: 0.5,
        mask_escape_rate: 0.1,
        persistent_rate: 0.05,
        transient_burst_len: 2,
        ..FaultPlan::disabled()
    };
    let run = || {
        let mut mem = MemorySystem::new(pra_config(Some(small_recovery())));
        mem.set_fault_injector(plan.injector(Domain::Dram));
        run_stream(&mut mem, 200, 13);
        let stats_digest = format!("{:?}", mem.stats());
        (stats_digest, mem.fault_counts(), mem.recovery_counts())
    };
    let (stats_a, counts_a, rec_a) = run();
    let (stats_b, counts_b, rec_b) = run();
    assert_eq!(stats_a, stats_b, "stats must replay bit-identically");
    assert_eq!(counts_a, counts_b, "fault counts must replay identically");
    assert_eq!(rec_a, rec_b, "recovery counts must replay identically");
    // Reconciliation: no silent losses.
    assert!(counts_a.commands_dropped > 0 && counts_a.masks_corrupted > 0);
    assert_eq!(
        counts_a.injected,
        counts_a.commands_dropped + counts_a.masks_corrupted,
        "only drop and mask faults were planned"
    );
    assert_eq!(
        counts_a.detected,
        counts_a.injected - counts_a.escaped,
        "every non-escaped fault is detected"
    );
    assert_eq!(
        rec_a.alerts, counts_a.detected,
        "every detected fault raises exactly one alert"
    );
    assert_eq!(
        rec_a.retries + rec_a.exhausted,
        rec_a.alerts,
        "every alert is either replayed or declared exhausted"
    );
    assert!(rec_a.recovered > 0, "transient faults must recover");
}

#[test]
fn all_requests_complete_under_recovery_with_drops() {
    let plan = FaultPlan {
        seed: 3,
        command_drop_rate: 0.5,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config(Some(small_recovery())));
    mem.set_fault_injector(plan.injector(Domain::Dram));
    run_stream(&mut mem, 200, 13);
    let counts = mem.fault_counts();
    let stats = mem.stats();
    assert!(counts.commands_dropped > 0);
    assert_eq!(
        counts.detected, counts.commands_dropped,
        "with recovery on, every dropped command is detected"
    );
    assert_eq!(
        stats.reads_completed + stats.writes_completed,
        200,
        "replayed or rescheduled; no request is lost"
    );
    let rec = mem.recovery_counts();
    assert_eq!(rec.alerts, counts.commands_dropped);
    assert!(rec.recovered > 0, "replayed commands eventually issue");
}

#[test]
fn recovery_counters_publish_to_the_metrics_registry() {
    let plan = FaultPlan {
        seed: 2,
        mask_corrupt_rate: 1.0,
        command_drop_rate: 0.2,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config(Some(small_recovery())));
    mem.set_fault_injector(plan.injector(Domain::Dram));
    run_stream(&mut mem, 100, 17);
    mem.finish_observability();
    let rec = mem.recovery_counts();
    assert!(rec.alerts > 0);
    let registry = &mem.observer().registry;
    assert_eq!(registry.counter_value("recover.alerts"), Some(rec.alerts));
    assert_eq!(registry.counter_value("recover.retries"), Some(rec.retries));
    assert_eq!(
        registry.counter_value("recover.recovered"),
        Some(rec.recovered)
    );
    assert_eq!(
        registry.counter_value("recover.exhausted"),
        Some(rec.exhausted)
    );
    assert_eq!(
        registry.counter_value("recover.demotions"),
        Some(rec.demotions)
    );
    assert_eq!(
        registry.counter_value("recover.promotions"),
        Some(rec.promotions)
    );
}
