//! Live power telemetry at the memory-system level: residency
//! conservation, streaming-vs-post-hoc energy parity, power trace events
//! and the telemetry on/off switch.

use std::cell::RefCell;
use std::rc::Rc;

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::rng::Rng;
use mem_model::{MemRequest, PhysAddr, WordMask};
use sim_fault::{Domain, FaultPlan};
use sim_obs::{RingSink, TraceEvent};

/// Deterministic mixed read/partial-write stream with idle gaps, so
/// refresh, power-down and all three residency states are exercised.
fn drive(mem: &mut MemorySystem, requests: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    for id in 0..requests as u64 {
        let addr = PhysAddr::from_line_number(rng.random_range(0u64..1 << 18));
        let req = if rng.random_bool(0.4) {
            let bits = rng.random_range(1u16..256) as u8;
            MemRequest::write(id, addr, WordMask::from_bits(bits))
        } else {
            MemRequest::read(id, addr)
        };
        while mem.try_enqueue(req).is_err() {
            mem.tick();
        }
        for _ in 0..rng.random_range(0u16..48) {
            mem.tick();
        }
    }
    assert!(mem.run_until_idle(2_000_000), "failed to drain");
    for _ in 0..20_000 {
        mem.tick();
    }
}

fn total_ranks(mem: &MemorySystem) -> u64 {
    let g = &mem.config().geometry;
    g.channels as u64 * g.ranks_per_channel as u64
}

/// Satellite: per-rank residency cycles across all states sum exactly to
/// elapsed memory cycles, for every rank, across schemes and policies.
#[test]
fn power_residency_conserves_cycles_across_schemes() {
    type SchemeCtor = fn() -> SchemeBehavior;
    let schemes: [(&str, SchemeCtor); 3] = [
        ("baseline", SchemeBehavior::baseline),
        ("pra", SchemeBehavior::pra),
        ("half_dram_pra", SchemeBehavior::half_dram_pra),
    ];
    for policy in [
        PagePolicy::RelaxedClosePage,
        PagePolicy::RestrictedClosePage,
    ] {
        for (name, scheme) in schemes {
            let mut mem = MemorySystem::new(DramConfig::paper_baseline(policy, scheme()));
            drive(&mut mem, 150, 0x636f_6e73);
            let cycles = mem.cycle();
            let ledger = mem.residency();
            for (r, rank) in ledger.ranks().iter().enumerate() {
                assert_eq!(
                    rank.total_cycles(),
                    cycles,
                    "rank {r} residency must conserve cycles ({name}, {policy:?})"
                );
            }
            assert_eq!(
                ledger.total_state_cycles(),
                cycles * total_ranks(&mem),
                "system-wide residency = cycles x ranks ({name}, {policy:?})"
            );
        }
    }
}

/// Satellite: conservation also holds under an aggressive fault plan (the
/// recovery/degradation paths must not skip or double-count cycles).
#[test]
fn power_residency_conserves_cycles_under_faults() {
    let plan = FaultPlan {
        seed: 99,
        mask_corrupt_rate: 0.3,
        command_drop_rate: 0.1,
        command_stretch_rate: 0.2,
        command_stretch_cycles: 2,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::pra(),
    ));
    mem.set_fault_injector(plan.injector(Domain::Dram));
    drive(&mut mem, 150, 0x6661_756c);
    assert!(mem.fault_counts().injected > 0, "plan must actually inject");
    let cycles = mem.cycle();
    for (r, rank) in mem.residency().ranks().iter().enumerate() {
        assert_eq!(rank.total_cycles(), cycles, "rank {r} under faults");
    }
}

/// A bank-open cycle implies the rank was in active standby that cycle,
/// so no bank's open-cycle count can exceed the rank's ACT_STBY residency.
#[test]
fn power_bank_open_cycles_bounded_by_active_standby() {
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::pra(),
    ));
    drive(&mut mem, 200, 0x6261_6e6b);
    let mut any_open = false;
    for (r, rank) in mem.residency().ranks().iter().enumerate() {
        let act_stby = rank.state_cycles[0];
        for (b, open) in rank.bank_open_cycles.iter().enumerate() {
            assert!(
                *open <= act_stby,
                "rank {r} bank {b}: open {open} > ACT_STBY {act_stby}"
            );
            any_open |= *open > 0;
        }
    }
    assert!(any_open, "the stream must open banks");
}

/// Tentpole invariant: the streaming `energy.*` counters published at the
/// final window close equal the post-hoc `EnergyBreakdown`, field by
/// field, at whole-pJ resolution (the counters are the same `f64`s the
/// breakdown reports, rounded once).
#[test]
fn power_streaming_counters_match_post_hoc_breakdown() {
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::pra(),
    ));
    mem.set_metrics_epochs(5_000, None);
    drive(&mut mem, 200, 0x7061_7269);
    mem.finish_observability();

    let energy = mem.energy();
    let reg = &mem.observer().registry;
    let counter = |name: &str| reg.counter_value(name).unwrap_or_else(|| panic!("{name}"));
    assert_eq!(counter("energy.act_pre_pj"), energy.act_pre.round() as u64);
    assert_eq!(counter("energy.rd_pj"), energy.rd.round() as u64);
    assert_eq!(counter("energy.wr_pj"), energy.wr.round() as u64);
    assert_eq!(counter("energy.rd_io_pj"), energy.rd_io.round() as u64);
    assert_eq!(counter("energy.wr_io_pj"), energy.wr_io.round() as u64);
    assert_eq!(counter("energy.bg_pj"), energy.bg.round() as u64);
    assert_eq!(counter("energy.refresh_pj"), energy.refresh.round() as u64);
    assert_eq!(counter("energy.total_pj"), energy.total().round() as u64);

    // Residency counters mirror the ledger exactly.
    for (r, rank) in mem.residency().ranks().iter().enumerate() {
        assert_eq!(
            counter(&format!("power.residency.r{r}.act_stby")),
            rank.state_cycles[0]
        );
        assert_eq!(
            counter(&format!("power.residency.r{r}.pre_stby")),
            rank.state_cycles[1]
        );
        assert_eq!(
            counter(&format!("power.residency.r{r}.pdn")),
            rank.state_cycles[2]
        );
        assert_eq!(
            counter(&format!("power.residency.r{r}.bank_open")),
            rank.open_bank_cycles()
        );
    }

    // Epoch deltas of the total-energy counter sum back to the post-hoc
    // total: streaming accumulation loses nothing across windows.
    let delta_sum: u64 = mem
        .observer()
        .snapshots()
        .iter()
        .map(|s| {
            s.counters
                .iter()
                .find(|(n, _)| n == "energy.total_pj")
                .map_or(0, |&(_, v)| v)
        })
        .sum();
    assert_eq!(delta_sum, energy.total().round() as u64);
}

/// PowerEpoch trace events carry the per-window energy deltas; summed
/// across the run they reproduce the post-hoc breakdown (to within the
/// half-pJ-per-epoch serialization rounding). PowerRank events likewise
/// sum to the cumulative residency ledger exactly.
#[test]
fn power_trace_events_reconcile_with_breakdown_and_ledger() {
    let sink = Rc::new(RefCell::new(RingSink::new(1 << 20)));
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::pra(),
    ));
    mem.set_trace_sink(Box::new(Rc::clone(&sink)));
    mem.set_metrics_epochs(5_000, None);
    drive(&mut mem, 150, 0x6576_656e);
    mem.finish_observability();

    let energy = mem.energy();
    let ranks = total_ranks(&mem) as usize;
    let mut epochs = 0u64;
    let mut sums = [0u64; 7];
    let mut rank_states = vec![[0u64; 3]; ranks];
    for ev in sink.borrow().events() {
        match *ev {
            TraceEvent::PowerEpoch {
                epoch,
                act_pre_pj,
                rd_pj,
                wr_pj,
                rd_io_pj,
                wr_io_pj,
                bg_pj,
                refresh_pj,
                ..
            } => {
                assert_eq!(u64::from(epoch), epochs, "epochs arrive in order");
                epochs += 1;
                for (s, v) in sums.iter_mut().zip([
                    act_pre_pj, rd_pj, wr_pj, rd_io_pj, wr_io_pj, bg_pj, refresh_pj,
                ]) {
                    *s += v;
                }
            }
            TraceEvent::PowerRank {
                rank,
                act_stby,
                pre_stby,
                pdn,
                ..
            } => {
                let r = &mut rank_states[rank as usize];
                r[0] += act_stby;
                r[1] += pre_stby;
                r[2] += pdn;
            }
            _ => {}
        }
    }
    assert!(epochs >= 2, "run must span several epochs");
    let expected = [
        energy.act_pre,
        energy.rd,
        energy.wr,
        energy.rd_io,
        energy.wr_io,
        energy.bg,
        energy.refresh,
    ];
    for (component, (sum, exact)) in sums.iter().zip(expected).enumerate() {
        let err = (*sum as f64 - exact).abs();
        assert!(
            err <= 0.5 * epochs as f64 + 0.5,
            "component {component}: summed {sum} vs post-hoc {exact} (err {err})"
        );
    }
    for (r, states) in rank_states.iter().enumerate() {
        assert_eq!(
            *states,
            mem.residency().ranks()[r].state_cycles,
            "rank {r} PowerRank deltas sum to the cumulative ledger"
        );
    }
}

/// With telemetry off, no `energy.*`/`power.*` metrics are registered and
/// no power events are emitted — the observability surface is exactly the
/// pre-telemetry one.
#[test]
fn power_telemetry_off_leaves_registry_and_trace_clean() {
    let sink = Rc::new(RefCell::new(RingSink::new(1 << 20)));
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::pra(),
    ));
    mem.set_power_telemetry(false);
    mem.set_trace_sink(Box::new(Rc::clone(&sink)));
    mem.set_metrics_epochs(5_000, None);
    drive(&mut mem, 100, 0x6f66_6600);
    mem.finish_observability();

    let reg = &mem.observer().registry;
    assert!(
        !reg.names()
            .iter()
            .any(|(n, _)| n.starts_with("energy.") || n.starts_with("power.")),
        "telemetry off must register no energy/power metrics"
    );
    let power_events = sink
        .borrow()
        .events()
        .filter(|e| matches!(e.kind(), "POWER_EPOCH" | "POWER_RANK"))
        .count();
    assert_eq!(power_events, 0);
}

/// Toggling telemetry must not perturb the simulation itself: identical
/// stats and bit-identical energy either way.
#[test]
fn power_telemetry_toggle_does_not_perturb_simulation() {
    let run = |enabled: bool| {
        let mut mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::pra(),
        ));
        mem.set_power_telemetry(enabled);
        mem.set_metrics_epochs(5_000, None);
        drive(&mut mem, 150, 0x7065_7274);
        mem.finish_observability();
        (format!("{:?}", mem.stats()), mem.energy())
    };
    let (stats_on, energy_on) = run(true);
    let (stats_off, energy_off) = run(false);
    assert_eq!(stats_on, stats_off);
    assert_eq!(energy_on.total().to_bits(), energy_off.total().to_bits());
    assert_eq!(energy_on.act_pre.to_bits(), energy_off.act_pre.to_bits());
    assert_eq!(energy_on.bg.to_bits(), energy_off.bg.to_bits());
}
