//! One deliberately illegal command stream per timing rule, asserting the
//! protocol checker flags exactly that rule (via the public API, as an
//! external consumer of the crate would drive it).
//!
//! DDR3-1600 Table 3 timing: tRCD 11, tRP 11, tRAS 28, tRRD 5, tFAW 24,
//! tCCD 4, tWR 12, WL 8, burst 4.

use dram_sim::{DramCommand, ProtocolChecker, TimingParams};

fn checker() -> ProtocolChecker {
    let t = TimingParams::ddr3_1600_table3();
    ProtocolChecker::new(t, 1, 8, false, t.burst_cycles)
}

fn two_rank_checker() -> ProtocolChecker {
    let t = TimingParams::ddr3_1600_table3();
    ProtocolChecker::new(t, 2, 8, false, t.burst_cycles)
}

fn act(bank: u32, row: u32) -> DramCommand {
    DramCommand::Activate {
        rank: 0,
        bank,
        row,
        mats: 16,
        extra_cycles: 0,
    }
}

fn read(bank: u32) -> DramCommand {
    DramCommand::Read { rank: 0, bank }
}

fn write(bank: u32) -> DramCommand {
    DramCommand::Write { rank: 0, bank }
}

fn pre(bank: u32) -> DramCommand {
    DramCommand::Precharge { rank: 0, bank }
}

#[test]
fn trcd_read_too_early() {
    let mut c = checker();
    c.observe(0, act(0, 7)).expect("ACT to idle bank is legal");
    let e = c.observe(10, read(0)).expect_err("READ at tRCD-1");
    assert!(e.rule.contains("tRCD"), "{e}");
    assert_eq!(e.cycle, 10);
    assert_eq!(e.command, read(0));
}

#[test]
fn trp_reactivation_too_early() {
    let mut c = checker();
    c.observe(0, act(0, 7)).expect("ACT");
    c.observe(11, read(0)).expect("READ at tRCD");
    c.observe(28, pre(0)).expect("PRE at tRAS");
    let e = c
        .observe(38, act(0, 8))
        .expect_err("ACT at tRP-1 after PRE");
    assert!(e.rule.contains("tRP"), "{e}");
    c.observe(39, act(0, 8))
        .expect("ACT at exactly tRP is legal");
}

#[test]
fn trrd_acts_too_close() {
    let mut c = checker();
    c.observe(0, act(0, 1)).expect("first ACT");
    let e = c.observe(4, act(1, 1)).expect_err("second ACT at tRRD-1");
    assert!(e.rule.contains("tRRD"), "{e}");
    let mut c = checker();
    c.observe(0, act(0, 1)).expect("first ACT");
    c.observe(5, act(1, 1))
        .expect("ACT at exactly tRRD is legal");
}

#[test]
fn tfaw_fifth_act_in_window() {
    let mut c = checker();
    for (bank, cycle) in [0u64, 5, 10, 15].into_iter().enumerate() {
        c.observe(cycle, act(bank as u32, 1))
            .expect("four ACTs fit");
    }
    let e = c.observe(20, act(4, 1)).expect_err("fifth ACT inside tFAW");
    assert!(e.rule.contains("tFAW"), "{e}");
    // Once the first ACT leaves the 24-cycle window, the fifth is legal.
    c.observe(24, act(4, 1)).expect("window slid");
}

#[test]
fn twr_precharge_before_write_recovery() {
    let mut c = checker();
    c.observe(0, act(0, 7)).expect("ACT");
    c.observe(11, write(0)).expect("WRITE at tRCD");
    // Fence: 11 + WL(8) + burst(4) + tWR(12) = 35.
    let e = c.observe(34, pre(0)).expect_err("PRE one cycle early");
    assert!(e.rule.contains("tWR"), "{e}");
    c.observe(35, pre(0)).expect("PRE at the fence is legal");
}

#[test]
fn tccd_column_commands_too_close() {
    let mut c = checker();
    c.observe(0, act(0, 7)).expect("ACT");
    c.observe(11, read(0)).expect("first READ");
    let e = c.observe(14, read(0)).expect_err("READ at tCCD-1");
    assert!(e.rule.contains("tCCD"), "{e}");
    c.observe(15, read(0))
        .expect("READ at exactly tCCD is legal");
}

#[test]
fn twtr_read_too_soon_after_write_burst() {
    // Write at 11: burst starts 11+WL(8)=19, ends 23. The next read burst
    // must start at 23+tWTR(6)=29, so the RD command (CL 11 ahead of its
    // burst) is illegal before cycle 18.
    let mut c = checker();
    c.observe(0, act(0, 7)).expect("ACT");
    c.observe(11, write(0)).expect("WRITE at tRCD");
    let e = c.observe(16, read(0)).expect_err("READ inside tWTR");
    assert!(e.rule.contains("tWTR"), "{e}");
    assert_eq!(e.cycle, 16);
    let mut c = checker();
    c.observe(0, act(0, 7)).expect("ACT");
    c.observe(11, write(0)).expect("WRITE at tRCD");
    c.observe(18, read(0))
        .expect("READ whose burst starts exactly at tWTR is legal");
}

#[test]
fn trtrs_rank_switch_too_soon() {
    // Rank-0 read burst ends at 11+CL(11)+burst(4)=26; a rank-1 burst must
    // start at 26+tRTRS(2)=28, i.e. its RD may not issue before 17.
    let mut c = two_rank_checker();
    c.observe(0, act(0, 7)).expect("ACT rank 0");
    c.observe(
        5,
        DramCommand::Activate {
            rank: 1,
            bank: 0,
            row: 7,
            mats: 16,
            extra_cycles: 0,
        },
    )
    .expect("ACT rank 1 at tRRD");
    c.observe(11, read(0)).expect("rank-0 READ");
    let e = c
        .observe(16, DramCommand::Read { rank: 1, bank: 0 })
        .expect_err("rank-1 READ inside tRTRS");
    assert!(e.rule.contains("tRTRS"), "{e}");
    c.observe(17, DramCommand::Read { rank: 1, bank: 0 })
        .expect("rank-1 READ after the switch penalty is legal");
}

#[test]
fn data_bus_overlap_with_widened_burst() {
    // An FGA-style scheme doubles the effective burst to 8 cycles: the
    // read at 11 occupies the bus 22..30, so a tCCD-legal read at 16
    // (burst would start at 27) still overlaps.
    let t = TimingParams::ddr3_1600_table3();
    let mut c = ProtocolChecker::new(t, 1, 8, false, 2 * t.burst_cycles);
    c.observe(0, act(0, 7)).expect("ACT");
    c.observe(11, read(0)).expect("first READ");
    let e = c.observe(16, read(0)).expect_err("overlapping burst");
    assert!(e.rule.contains("data-bus overlap"), "{e}");
    c.observe(19, read(0))
        .expect("back-to-back bursts at the widened length are legal");
}
