//! Fault-injection behaviour of the memory system: deterministic replay,
//! graceful PRA degradation, command drop/stretch survival, refresh
//! stress, and metric publication.

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::rng::Rng;
use mem_model::{MemRequest, PhysAddr, WordMask};
use sim_fault::{Domain, FaultPlan};

fn pra_config() -> DramConfig {
    DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::pra())
}

/// Feeds a deterministic mixed read/partial-write stream and drains.
fn run_stream(mem: &mut MemorySystem, ops: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    for id in 0..ops as u64 {
        let line = rng.bounded_u64(1 << 20);
        let addr = PhysAddr::from_line_number(line);
        let req = if rng.random_bool(0.5) {
            // Partial write: one to three dirty words, never the full line,
            // so PRA issues maskable (non-full-coverage) activations.
            let bits = 1u8 << rng.bounded_u64(6) as u8;
            MemRequest::write(id, addr, WordMask::from_bits(bits | 1))
        } else {
            MemRequest::read(id, addr)
        };
        while mem.try_enqueue(req).is_err() {
            mem.tick();
        }
    }
    assert!(mem.run_until_idle(2_000_000), "system failed to drain");
}

#[test]
fn same_plan_and_stream_replays_identically() {
    let plan = FaultPlan {
        seed: 42,
        mask_corrupt_rate: 0.3,
        command_drop_rate: 0.1,
        command_stretch_rate: 0.2,
        command_stretch_cycles: 2,
        ..FaultPlan::disabled()
    };
    let run = || {
        let mut mem = MemorySystem::new(pra_config());
        mem.set_fault_injector(plan.injector(Domain::Dram));
        run_stream(&mut mem, 300, 7);
        (format!("{:?}", mem.stats()), mem.fault_counts())
    };
    let (stats_a, counts_a) = run();
    let (stats_b, counts_b) = run();
    assert_eq!(stats_a, stats_b, "stats must replay bit-identically");
    assert_eq!(counts_a, counts_b, "fault counts must replay identically");
    assert!(counts_a.injected > 0, "stress plan must actually inject");
}

#[test]
fn corrupted_masks_degrade_to_full_row_and_are_all_detected() {
    let plan = FaultPlan {
        seed: 1,
        mask_corrupt_rate: 1.0,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config());
    mem.set_fault_injector(plan.injector(Domain::Dram));
    run_stream(&mut mem, 200, 11);
    let counts = mem.fault_counts();
    let stats = mem.stats();
    assert!(
        counts.masks_corrupted > 0,
        "every partial ACT was corrupted"
    );
    assert_eq!(
        counts.detected, counts.masks_corrupted,
        "parity catches every single-bit corruption"
    );
    assert_eq!(
        counts.degraded, counts.detected,
        "every detected fault degrades to full row"
    );
    assert_eq!(
        stats.degraded_activations, counts.degraded,
        "controller stats agree with the injector"
    );
    // Degraded activations land in the full-row (16 MAT) histogram bucket.
    assert!(stats.act_histogram[15] >= counts.degraded);
}

#[test]
fn dropped_commands_are_retried_and_all_requests_complete() {
    let plan = FaultPlan {
        seed: 3,
        command_drop_rate: 0.5,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config());
    mem.set_fault_injector(plan.injector(Domain::Dram));
    run_stream(&mut mem, 200, 13);
    let counts = mem.fault_counts();
    assert!(counts.commands_dropped > 0, "half of issuances must drop");
    let stats = mem.stats();
    assert_eq!(
        stats.reads_completed + stats.writes_completed,
        200,
        "dropped commands retry; no request is lost"
    );
}

#[test]
fn stretched_activation_delays_the_read_by_exactly_the_stretch() {
    let latency = |plan: Option<FaultPlan>| {
        let mut mem = MemorySystem::new(pra_config());
        if let Some(p) = plan {
            mem.set_fault_injector(p.injector(Domain::Dram));
        }
        let req = MemRequest::read(0, PhysAddr::from_line_number(99));
        mem.try_enqueue(req).expect("empty queue accepts");
        assert!(mem.run_until_idle(100_000));
        mem.stats().read_latency_sum
    };
    let clean = latency(None);
    let stretched = latency(Some(FaultPlan {
        seed: 5,
        command_stretch_rate: 1.0,
        command_stretch_cycles: 3,
        ..FaultPlan::disabled()
    }));
    assert_eq!(
        stretched,
        clean + 3,
        "a 3-cycle ACT stretch shows up as exactly 3 cycles of read latency"
    );
}

#[test]
fn refresh_stress_multiplies_the_refresh_rate() {
    let count_refreshes = |plan: Option<FaultPlan>| {
        let mut mem = MemorySystem::new(pra_config());
        if let Some(p) = plan {
            mem.set_fault_injector(p.injector(Domain::Dram));
        }
        for _ in 0..20_000 {
            mem.tick();
        }
        mem.stats().refreshes
    };
    let normal = count_refreshes(None);
    let stressed = count_refreshes(Some(FaultPlan {
        seed: 9,
        refresh_interval_divisor: 4,
        ..FaultPlan::disabled()
    }));
    assert!(
        (8..=12).contains(&normal),
        "baseline refresh envelope broke: {normal}"
    );
    assert!(
        stressed >= normal * 3,
        "divisor 4 must roughly quadruple refreshes: {stressed} vs {normal}"
    );
}

#[test]
fn disabled_plan_attached_is_indistinguishable_from_none() {
    let run = |attach: bool| {
        let mut mem = MemorySystem::new(pra_config());
        if attach {
            mem.set_fault_injector(FaultPlan::disabled().injector(Domain::Dram));
        }
        run_stream(&mut mem, 150, 21);
        format!("{:?}", mem.stats())
    };
    assert_eq!(run(false), run(true), "disabled injector is zero-cost");
}

#[test]
fn fault_counters_publish_to_the_metrics_registry() {
    let plan = FaultPlan {
        seed: 2,
        mask_corrupt_rate: 1.0,
        command_drop_rate: 0.2,
        ..FaultPlan::disabled()
    };
    let mut mem = MemorySystem::new(pra_config());
    mem.set_fault_injector(plan.injector(Domain::Dram));
    run_stream(&mut mem, 100, 17);
    mem.finish_observability();
    let counts = mem.fault_counts();
    let registry = &mem.observer().registry;
    assert_eq!(
        registry.counter_value("fault.injected"),
        Some(counts.injected)
    );
    assert_eq!(
        registry.counter_value("fault.detected"),
        Some(counts.detected)
    );
    assert_eq!(
        registry.counter_value("fault.degraded"),
        Some(counts.degraded)
    );
    assert!(counts.injected > 0);
}
