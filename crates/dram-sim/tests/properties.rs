//! Property-based tests of the cycle-level memory system: for arbitrary
//! request streams, under every scheme and policy, the simulator must
//! complete all work and keep its statistics and energy accounting
//! consistent.

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::{MemRequest, PhysAddr, WordMask};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ReqSpec {
    line: u64,
    write_mask: Option<u8>, // None = read; Some(0) coerced to 1
    gap: u8,
}

fn req_stream() -> impl Strategy<Value = Vec<ReqSpec>> {
    prop::collection::vec(
        (0u64..1 << 22, prop::option::of(any::<u8>()), any::<u8>()).prop_map(
            |(line, write_mask, gap)| ReqSpec { line, write_mask, gap },
        ),
        1..60,
    )
}

fn scheme_strategy() -> impl Strategy<Value = SchemeBehavior> {
    prop_oneof![
        Just(SchemeBehavior::baseline()),
        Just(SchemeBehavior::fga_half()),
        Just(SchemeBehavior::half_dram()),
        Just(SchemeBehavior::pra()),
        Just(SchemeBehavior::half_dram_pra()),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PagePolicy> {
    prop_oneof![Just(PagePolicy::RelaxedClosePage), Just(PagePolicy::RestrictedClosePage)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every enqueued request completes, and the hit/miss classification
    /// covers each request exactly once.
    #[test]
    fn all_requests_complete_and_classify(
        stream in req_stream(),
        scheme in scheme_strategy(),
        policy in policy_strategy(),
    ) {
        let mut mem = MemorySystem::new(DramConfig::paper_baseline(policy, scheme));
        let (mut reads, mut writes) = (0u64, 0u64);
        for (id, spec) in stream.iter().enumerate() {
            let addr = PhysAddr::from_line_number(spec.line);
            let req = match spec.write_mask {
                None => {
                    reads += 1;
                    MemRequest::read(id as u64, addr)
                }
                Some(bits) => {
                    writes += 1;
                    MemRequest::write(id as u64, addr, WordMask::from_bits(bits.max(1)))
                }
            };
            // Tick until the queue accepts (bounded).
            let mut tries = 0;
            let mut pending = req;
            while mem.try_enqueue(pending).is_err() {
                mem.tick();
                tries += 1;
                prop_assert!(tries < 100_000, "enqueue starved");
                pending = req;
            }
            for _ in 0..spec.gap {
                mem.tick();
            }
        }
        prop_assert!(mem.run_until_idle(2_000_000), "system failed to drain");
        let stats = mem.stats();
        prop_assert_eq!(stats.reads_completed, reads);
        prop_assert_eq!(stats.writes_completed, writes);
        prop_assert_eq!(stats.read.total(), reads, "each read classified once");
        prop_assert_eq!(stats.write.total(), writes, "each write classified once");
        // False hits are a subset of misses.
        prop_assert!(stats.read.false_hits <= stats.read.misses);
        prop_assert!(stats.write.false_hits <= stats.write.misses);
        // Histogram totals match the activation count.
        let hist_total: u64 = stats.act_histogram.iter().sum();
        prop_assert_eq!(hist_total, stats.activations);
        // Energy components are non-negative and finite.
        let e = mem.energy();
        for part in [e.act_pre, e.rd, e.wr, e.rd_io, e.wr_io, e.bg, e.refresh] {
            prop_assert!(part.is_finite() && part >= 0.0);
        }
        prop_assert!(e.total() > 0.0);
    }

    /// Non-PRA schemes never record false row-buffer hits (full coverage
    /// always), and never activate partially for coverage reasons.
    #[test]
    fn conventional_schemes_have_no_false_hits(
        stream in req_stream(),
        policy in policy_strategy(),
    ) {
        let mut mem = MemorySystem::new(DramConfig::paper_baseline(
            policy,
            SchemeBehavior::baseline(),
        ));
        for (i, spec) in stream.iter().enumerate() {
            let addr = PhysAddr::from_line_number(spec.line);
            let req = match spec.write_mask {
                None => MemRequest::read(i as u64, addr),
                Some(bits) => MemRequest::write(i as u64, addr, WordMask::from_bits(bits.max(1))),
            };
            while mem.try_enqueue(req).is_err() {
                mem.tick();
            }
        }
        prop_assert!(mem.run_until_idle(2_000_000));
        prop_assert_eq!(mem.stats().read.false_hits, 0);
        prop_assert_eq!(mem.stats().write.false_hits, 0);
        // Baseline activations are all full-row (16 MATs).
        let hist = mem.stats().act_histogram;
        let partial: u64 = hist[..15].iter().sum();
        prop_assert_eq!(partial, 0, "baseline must only do 16-MAT activations");
    }

    /// PRA's activation energy never exceeds the baseline's for the same
    /// request stream (the core power claim, stream-by-stream).
    #[test]
    fn pra_activation_energy_never_exceeds_baseline(stream in req_stream()) {
        let run = |scheme: SchemeBehavior| {
            let mut mem = MemorySystem::new(DramConfig::paper_baseline(
                PagePolicy::RestrictedClosePage,
                scheme,
            ));
            for (i, spec) in stream.iter().enumerate() {
                let addr = PhysAddr::from_line_number(spec.line);
                let req = match spec.write_mask {
                    None => MemRequest::read(i as u64, addr),
                    Some(bits) => {
                        MemRequest::write(i as u64, addr, WordMask::from_bits(bits.max(1)))
                    }
                };
                while mem.try_enqueue(req).is_err() {
                    mem.tick();
                }
            }
            assert!(mem.run_until_idle(2_000_000));
            mem.energy()
        };
        let base = run(SchemeBehavior::baseline());
        let pra = run(SchemeBehavior::pra());
        // Restricted close-page: same request stream implies at least as
        // many activations for PRA (false hits cannot reduce them), but
        // each write activation is no wider than full row.
        prop_assert!(pra.act_pre <= base.act_pre + 1e-6,
            "PRA ACT energy {} vs baseline {}", pra.act_pre, base.act_pre);
        // Write I/O energy shrinks or stays equal.
        prop_assert!(pra.wr_io <= base.wr_io + 1e-6);
    }
}
