//! Randomized property tests of the cycle-level memory system: for
//! arbitrary request streams, under every scheme and policy, the simulator
//! must complete all work and keep its statistics and energy accounting
//! consistent.
//!
//! Formerly driven by proptest; now deterministic seeded sweeps over the
//! in-repo [`mem_model::rng`] PRNG so the suite builds and runs offline.

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::rng::Rng;
use mem_model::{MemRequest, PhysAddr, WordMask};

#[derive(Debug, Clone)]
struct ReqSpec {
    line: u64,
    write_mask: Option<u8>, // None = read
    gap: u8,
}

fn random_stream(rng: &mut Rng) -> Vec<ReqSpec> {
    let len = rng.random_range(1usize..60);
    (0..len)
        .map(|_| ReqSpec {
            line: rng.random_range(0u64..1 << 22),
            write_mask: rng
                .random_bool(0.5)
                .then(|| rng.random_range(1u16..256) as u8),
            gap: rng.random_range(0u16..256) as u8,
        })
        .collect()
}

const SCHEMES: [fn() -> SchemeBehavior; 5] = [
    SchemeBehavior::baseline,
    SchemeBehavior::fga_half,
    SchemeBehavior::half_dram,
    SchemeBehavior::pra,
    SchemeBehavior::half_dram_pra,
];

const POLICIES: [PagePolicy; 2] = [
    PagePolicy::RelaxedClosePage,
    PagePolicy::RestrictedClosePage,
];

/// Every enqueued request completes, and the hit/miss classification covers
/// each request exactly once.
#[test]
fn all_requests_complete_and_classify() {
    let mut rng = Rng::seed_from_u64(0x636f_6d70);
    for case in 0..48 {
        let stream = random_stream(&mut rng);
        let scheme = SCHEMES[case % SCHEMES.len()]();
        let policy = POLICIES[case % POLICIES.len()];
        let mut mem = MemorySystem::new(DramConfig::paper_baseline(policy, scheme));
        let (mut reads, mut writes) = (0u64, 0u64);
        for (id, spec) in stream.iter().enumerate() {
            let addr = PhysAddr::from_line_number(spec.line);
            let req = match spec.write_mask {
                None => {
                    reads += 1;
                    MemRequest::read(id as u64, addr)
                }
                Some(bits) => {
                    writes += 1;
                    MemRequest::write(id as u64, addr, WordMask::from_bits(bits.max(1)))
                }
            };
            // Tick until the queue accepts (bounded).
            let mut tries = 0;
            let mut pending = req;
            while mem.try_enqueue(pending).is_err() {
                mem.tick();
                tries += 1;
                assert!(tries < 100_000, "enqueue starved");
                pending = req;
            }
            for _ in 0..spec.gap {
                mem.tick();
            }
        }
        assert!(mem.run_until_idle(2_000_000), "system failed to drain");
        let stats = mem.stats();
        assert_eq!(stats.reads_completed, reads);
        assert_eq!(stats.writes_completed, writes);
        assert_eq!(stats.read.total(), reads, "each read classified once");
        assert_eq!(stats.write.total(), writes, "each write classified once");
        // False hits are a subset of misses.
        assert!(stats.read.false_hits <= stats.read.misses);
        assert!(stats.write.false_hits <= stats.write.misses);
        // Histogram totals match the activation count.
        let hist_total: u64 = stats.act_histogram.iter().sum();
        assert_eq!(hist_total, stats.activations);
        // Energy components are non-negative and finite.
        let e = mem.energy();
        for part in [e.act_pre, e.rd, e.wr, e.rd_io, e.wr_io, e.bg, e.refresh] {
            assert!(part.is_finite() && part >= 0.0);
        }
        assert!(e.total() > 0.0);
    }
}

/// Non-PRA schemes never record false row-buffer hits (full coverage
/// always), and never activate partially for coverage reasons.
#[test]
fn conventional_schemes_have_no_false_hits() {
    let mut rng = Rng::seed_from_u64(0x6261_7365);
    for case in 0..24 {
        let stream = random_stream(&mut rng);
        let policy = POLICIES[case % POLICIES.len()];
        let mut mem = MemorySystem::new(DramConfig::paper_baseline(
            policy,
            SchemeBehavior::baseline(),
        ));
        for (i, spec) in stream.iter().enumerate() {
            let addr = PhysAddr::from_line_number(spec.line);
            let req = match spec.write_mask {
                None => MemRequest::read(i as u64, addr),
                Some(bits) => MemRequest::write(i as u64, addr, WordMask::from_bits(bits.max(1))),
            };
            while mem.try_enqueue(req).is_err() {
                mem.tick();
            }
        }
        assert!(mem.run_until_idle(2_000_000));
        assert_eq!(mem.stats().read.false_hits, 0);
        assert_eq!(mem.stats().write.false_hits, 0);
        // Baseline activations are all full-row (16 MATs).
        let hist = mem.stats().act_histogram;
        let partial: u64 = hist[..15].iter().sum();
        assert_eq!(partial, 0, "baseline must only do 16-MAT activations");
    }
}

/// PRA's activation energy never exceeds the baseline's for the same
/// request stream (the core power claim, stream-by-stream).
#[test]
fn pra_activation_energy_never_exceeds_baseline() {
    let mut rng = Rng::seed_from_u64(0x7072_6131);
    for _ in 0..24 {
        let stream = random_stream(&mut rng);
        let run = |scheme: SchemeBehavior| {
            let mut mem = MemorySystem::new(DramConfig::paper_baseline(
                PagePolicy::RestrictedClosePage,
                scheme,
            ));
            for (i, spec) in stream.iter().enumerate() {
                let addr = PhysAddr::from_line_number(spec.line);
                let req = match spec.write_mask {
                    None => MemRequest::read(i as u64, addr),
                    Some(bits) => {
                        MemRequest::write(i as u64, addr, WordMask::from_bits(bits.max(1)))
                    }
                };
                while mem.try_enqueue(req).is_err() {
                    mem.tick();
                }
            }
            assert!(mem.run_until_idle(2_000_000));
            mem.energy()
        };
        let base = run(SchemeBehavior::baseline());
        let pra = run(SchemeBehavior::pra());
        // Restricted close-page: same request stream implies at least as
        // many activations for PRA (false hits cannot reduce them), but
        // each write activation is no wider than full row.
        assert!(
            pra.act_pre <= base.act_pre + 1e-6,
            "PRA ACT energy {} vs baseline {}",
            pra.act_pre,
            base.act_pre
        );
        // Write I/O energy shrinks or stays equal.
        assert!(pra.wr_io <= base.wr_io + 1e-6);
    }
}
