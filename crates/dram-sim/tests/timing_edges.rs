//! Timing edge cases: bus turnaround, rank switching, power-down exit,
//! mixed-weight tFAW windows, and PRA-specific command timing.

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior, TimingParams};
use mem_model::{AddressMapping, DramGeometry, Location, MemRequest, PhysAddr, WordMask};

fn addr(loc: Location) -> PhysAddr {
    AddressMapping::RowInterleaved.encode(loc, &DramGeometry::baseline_ddr3())
}

fn loc(rank: u32, bank: u32, row: u32, column: u32) -> Location {
    Location {
        channel: 0,
        rank,
        bank,
        row,
        column,
    }
}

fn system(scheme: SchemeBehavior) -> MemorySystem {
    MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        scheme,
    ))
}

fn drain_cycles(mem: &mut MemorySystem) -> u64 {
    let start = mem.cycle();
    assert!(mem.run_until_idle(1_000_000));
    mem.cycle() - start
}

#[test]
fn write_to_read_turnaround_slows_the_pair() {
    // Same bank, same row: write then read must pay the bus turnaround.
    let mut wr_rd = system(SchemeBehavior::baseline());
    wr_rd
        .try_enqueue(MemRequest::write(1, addr(loc(0, 0, 1, 0)), WordMask::FULL))
        .unwrap();
    wr_rd
        .try_enqueue(MemRequest::read(2, addr(loc(0, 0, 1, 1))))
        .unwrap();
    let mixed = drain_cycles(&mut wr_rd);

    let mut rd_rd = system(SchemeBehavior::baseline());
    rd_rd
        .try_enqueue(MemRequest::read(1, addr(loc(0, 0, 1, 0))))
        .unwrap();
    rd_rd
        .try_enqueue(MemRequest::read(2, addr(loc(0, 0, 1, 1))))
        .unwrap();
    let same_dir = drain_cycles(&mut rd_rd);

    assert!(
        mixed > same_dir,
        "write->read ({mixed} cycles) must be slower than read->read ({same_dir})"
    );
}

#[test]
fn rank_switch_pays_trtrs() {
    // Two reads to different ranks vs the same rank (different banks, so
    // bank timing does not dominate).
    let mut cross = system(SchemeBehavior::baseline());
    cross
        .try_enqueue(MemRequest::read(1, addr(loc(0, 0, 1, 0))))
        .unwrap();
    cross
        .try_enqueue(MemRequest::read(2, addr(loc(1, 1, 1, 0))))
        .unwrap();
    let cross_cycles = drain_cycles(&mut cross);

    let mut same = system(SchemeBehavior::baseline());
    same.try_enqueue(MemRequest::read(1, addr(loc(0, 0, 1, 0))))
        .unwrap();
    same.try_enqueue(MemRequest::read(2, addr(loc(0, 1, 1, 0))))
        .unwrap();
    let same_cycles = drain_cycles(&mut same);

    assert!(
        cross_cycles >= same_cycles,
        "rank switch ({cross_cycles}) cannot be faster than same-rank ({same_cycles})"
    );
}

#[test]
fn power_down_exit_adds_txp() {
    let t = TimingParams::ddr3_1600_table3();
    // Let the system idle into power-down first.
    let mut mem = system(SchemeBehavior::baseline());
    for _ in 0..200 {
        mem.tick();
    }
    mem.try_enqueue(MemRequest::read(1, addr(loc(0, 0, 1, 0))))
        .unwrap();
    let mut latency = 0;
    for c in 0..200u64 {
        if !mem.tick().is_empty() {
            latency = c;
            break;
        }
    }
    // Cold access from idle: ACT at tXP, data at tXP + tRCD + CL + burst.
    let expected = t.txp + t.trcd + t.tcas + t.burst_cycles;
    assert_eq!(latency, expected, "power-down exit must add tXP cycles");
}

#[test]
fn pra_partial_write_pays_one_extra_cycle() {
    // Identical lone writes; PRA's partial activation defers the column
    // command by exactly one cycle relative to the baseline.
    let run = |scheme: SchemeBehavior, mask: WordMask| {
        let mut mem = system(scheme);
        mem.try_enqueue(MemRequest::write(1, addr(loc(0, 0, 1, 0)), mask))
            .unwrap();
        drain_cycles(&mut mem)
    };
    let base = run(SchemeBehavior::baseline(), WordMask::single(0));
    let pra_partial = run(SchemeBehavior::pra(), WordMask::single(0));
    let pra_full = run(SchemeBehavior::pra(), WordMask::FULL);
    assert_eq!(pra_partial, base + 1, "partial activation costs tRCD + tCK");
    assert_eq!(
        pra_full, base,
        "full-mask PRA writes have conventional timing"
    );
}

#[test]
fn pra_partial_activations_relax_tfaw() {
    // Five writes to five banks of one rank: the baseline must stall on
    // tFAW for the fifth activation; PRA's 1/8-weight activations must not.
    let stream = |mem: &mut MemorySystem| {
        for b in 0..5u32 {
            mem.try_enqueue(MemRequest::write(
                u64::from(b) + 1,
                addr(loc(0, b % 8, 3, 0)),
                WordMask::single(0),
            ))
            .unwrap();
        }
        drain_cycles(mem)
    };
    let mut base = system(SchemeBehavior::baseline());
    let base_cycles = stream(&mut base);
    let mut pra = system(SchemeBehavior::pra());
    let pra_cycles = stream(&mut pra);
    assert!(
        pra_cycles < base_cycles,
        "PRA ({pra_cycles}) should finish the activation burst faster than baseline ({base_cycles})"
    );
}

#[test]
fn refresh_blocks_and_releases_a_rank() {
    let t = TimingParams::ddr3_1600_table3();
    let mut mem = system(SchemeBehavior::baseline());
    // Run straight into the first refresh window and a bit beyond.
    for _ in 0..(t.trefi + 2 * t.trfc) {
        mem.tick();
    }
    assert!(mem.stats().refreshes >= 1, "first refresh must have fired");
    // The system still serves requests afterwards.
    mem.try_enqueue(MemRequest::read(99, addr(loc(0, 0, 7, 0))))
        .unwrap();
    assert!(mem.run_until_idle(10_000));
    assert_eq!(mem.stats().reads_completed, 1);
}

#[test]
fn tccd_spaces_row_hits() {
    let t = TimingParams::ddr3_1600_table3();
    // Four reads hitting one open row complete tCCD apart.
    let mut mem = system(SchemeBehavior::baseline());
    for i in 0..4u64 {
        mem.try_enqueue(MemRequest::read(i + 1, addr(loc(0, 0, 1, i as u32))))
            .unwrap();
    }
    let mut completions = Vec::new();
    for c in 0..200u64 {
        if !mem.tick().is_empty() {
            completions.push(c);
        }
        if completions.len() == 4 {
            break;
        }
    }
    assert_eq!(completions.len(), 4);
    for pair in completions.windows(2) {
        assert_eq!(pair[1] - pair[0], t.tccd, "row hits pipeline at tCCD");
    }
}
