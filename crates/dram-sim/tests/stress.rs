//! Long-running randomized stress tests. The default-run variant keeps CI
//! fast; the `#[ignore]`d variant runs half a million verified commands
//! (`cargo test -p dram-sim --test stress -- --ignored`).

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::{MemRequest, PhysAddr, WordMask};

/// Deterministic xorshift so the stress mix needs no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn stress(requests: u64, scheme: SchemeBehavior, policy: PagePolicy, seed: u64) {
    let mut cfg = DramConfig::paper_baseline(policy, scheme);
    cfg.refresh_postpone_max = if seed.is_multiple_of(2) { 0 } else { 8 };
    let mut mem = MemorySystem::new(cfg);
    let mut rng = Rng(seed | 1);
    let mut issued = 0u64;
    let (mut reads, mut writes) = (0u64, 0u64);
    while issued < requests {
        // Bursty arrivals: sometimes many per cycle, sometimes idle gaps.
        let burst = rng.next() % 4;
        for _ in 0..burst {
            if issued == requests {
                break;
            }
            let r = rng.next();
            // Mix of hot rows (locality) and cold random lines.
            let line = if r.is_multiple_of(5) {
                r % 512
            } else {
                r % (1 << 24)
            };
            let addr = PhysAddr::from_line_number(line);
            let req = if r.is_multiple_of(3) {
                writes += 1;
                MemRequest::write(issued, addr, WordMask::from_bits(((r >> 8) as u8).max(1)))
            } else {
                reads += 1;
                MemRequest::read(issued, addr)
            };
            if mem.try_enqueue(req).is_ok() {
                issued += 1;
            } else {
                if r.is_multiple_of(3) {
                    writes -= 1;
                } else {
                    reads -= 1;
                }
                mem.tick();
            }
        }
        if rng.next().is_multiple_of(7) {
            for _ in 0..rng.next() % 64 {
                mem.tick();
            }
        } else {
            mem.tick();
        }
    }
    assert!(mem.run_until_idle(20_000_000), "stress run failed to drain");
    let stats = mem.stats();
    assert_eq!(stats.reads_completed, reads);
    assert_eq!(stats.writes_completed, writes);
    assert_eq!(stats.read.total(), reads);
    assert_eq!(stats.write.total(), writes);
    assert!(mem.energy().total() > 0.0);
}

#[test]
fn stress_all_schemes_briefly() {
    for scheme in [
        SchemeBehavior::baseline(),
        SchemeBehavior::fga_half(),
        SchemeBehavior::half_dram(),
        SchemeBehavior::pra(),
        SchemeBehavior::half_dram_pra(),
    ] {
        for policy in [
            PagePolicy::RelaxedClosePage,
            PagePolicy::RestrictedClosePage,
            PagePolicy::OpenPage,
        ] {
            stress(2_000, scheme, policy, 0x5eed_0001);
        }
    }
}

/// Half a million commands under the debug-build protocol checker.
#[test]
#[ignore = "long-running; cargo test -p dram-sim --test stress -- --ignored"]
fn stress_pra_half_million_requests() {
    stress(
        500_000,
        SchemeBehavior::pra(),
        PagePolicy::RelaxedClosePage,
        0xdead_beef,
    );
}
