//! Acceptance tests for the observability layer: trace events, final
//! statistics and epoch snapshots must all agree on what the simulator did.

use std::cell::RefCell;
use std::rc::Rc;

use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::rng::Rng;
use mem_model::{MemRequest, PhysAddr, WordMask};
use sim_obs::{RingSink, TraceEvent};

/// Drives `mem` with a deterministic random mix of reads and partial
/// writes, with idle gaps so refresh and power-down paths fire too.
fn drive(mem: &mut MemorySystem, requests: usize, seed: u64) {
    let mut rng = Rng::seed_from_u64(seed);
    for id in 0..requests as u64 {
        let addr = PhysAddr::from_line_number(rng.random_range(0u64..1 << 18));
        let req = if rng.random_bool(0.4) {
            let bits = rng.random_range(1u16..256) as u8;
            MemRequest::write(id, addr, WordMask::from_bits(bits))
        } else {
            MemRequest::read(id, addr)
        };
        while mem.try_enqueue(req).is_err() {
            mem.tick();
        }
        for _ in 0..rng.random_range(0u16..64) {
            mem.tick();
        }
    }
    assert!(mem.run_until_idle(2_000_000), "failed to drain");
    // Idle long enough for refreshes and power-down entries to occur.
    for _ in 0..20_000 {
        mem.tick();
    }
}

#[test]
fn trace_event_counts_match_final_stats() {
    let sink = Rc::new(RefCell::new(RingSink::new(4_000_000)));
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::pra(),
    ));
    mem.set_trace_sink(Box::new(Rc::clone(&sink)));
    drive(&mut mem, 400, 0x7472_6163);
    mem.finish_observability();

    let sink = sink.borrow();
    assert_eq!(
        sink.dropped(),
        0,
        "ring must be large enough for the whole run"
    );
    let count = |kind: &str| sink.events().filter(|e| e.kind() == kind).count() as u64;

    let stats = mem.stats();
    let partial: u64 = stats.act_histogram[..15].iter().sum();
    assert_eq!(count("ACT") + count("PARTIAL_ACT"), stats.activations);
    assert_eq!(
        count("PARTIAL_ACT"),
        partial,
        "partial-ACT events match the histogram"
    );
    assert_eq!(count("RD"), stats.reads_completed);
    assert_eq!(count("WR"), stats.writes_completed);
    assert_eq!(count("PRE"), stats.precharges);
    assert_eq!(count("REF"), stats.refreshes);
    assert_eq!(count("RD_DONE"), stats.reads_completed);
    assert_eq!(count("DRAIN"), stats.drain_entries);
    assert!(count("PDN") > 0, "idle gaps must power ranks down");
    // Every power-up matches an earlier power-down on the same rank.
    assert!(count("PUP") <= count("PDN"));

    // Per-activation mats in the trace reproduce the histogram exactly.
    let mut hist = [0u64; 16];
    let mut latency_sum = 0u64;
    for ev in sink.events() {
        match *ev {
            TraceEvent::Activate { mats, .. } => hist[(mats - 1) as usize] += 1,
            TraceEvent::ReadComplete { latency, .. } => latency_sum += latency,
            _ => {}
        }
    }
    assert_eq!(hist, stats.act_histogram);
    assert_eq!(latency_sum, stats.read_latency_sum);

    // The registry's histograms agree with the counters.
    let reg = &mem.observer().registry;
    let lat = reg.histogram_value("dram.read_latency").unwrap();
    assert_eq!(lat.count(), stats.reads_completed);
    assert_eq!(lat.sum(), stats.read_latency_sum);
    let mats = reg.histogram_value("dram.act_mats").unwrap();
    assert_eq!(mats.count(), stats.activations);
    assert_eq!(
        reg.counter_value("dram.activations"),
        Some(stats.activations)
    );
    assert_eq!(reg.counter_value("dram.read.hits"), Some(stats.read.hits));
}

#[test]
fn epoch_deltas_sum_to_final_aggregates() {
    let mut mem = MemorySystem::new(DramConfig::paper_baseline(
        PagePolicy::RelaxedClosePage,
        SchemeBehavior::half_dram_pra(),
    ));
    mem.set_metrics_epochs(5_000, None);
    drive(&mut mem, 300, 0x6570_6f63);
    mem.finish_observability();

    let snaps = mem.observer().snapshots();
    assert!(
        snaps.len() >= 2,
        "run must span several epochs, got {}",
        snaps.len()
    );
    // Epochs tile the run: contiguous, in order, ending at the final cycle.
    for pair in snaps.windows(2) {
        assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        assert_eq!(pair[0].index + 1, pair[1].index);
    }
    assert_eq!(snaps[0].start_cycle, 0);
    assert_eq!(snaps.last().unwrap().end_cycle, mem.cycle());

    let sum_of = |name: &str| -> u64 {
        snaps
            .iter()
            .map(|s| {
                s.counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0, |&(_, v)| v)
            })
            .sum()
    };
    let stats = mem.stats();
    assert_eq!(sum_of("dram.cycles"), stats.cycles);
    assert_eq!(sum_of("dram.activations"), stats.activations);
    assert_eq!(sum_of("dram.precharges"), stats.precharges);
    assert_eq!(sum_of("dram.refreshes"), stats.refreshes);
    assert_eq!(sum_of("dram.reads_completed"), stats.reads_completed);
    assert_eq!(sum_of("dram.writes_completed"), stats.writes_completed);
    assert_eq!(sum_of("dram.read.hits"), stats.read.hits);
    assert_eq!(sum_of("dram.read.misses"), stats.read.misses);
    assert_eq!(sum_of("dram.write.false_hits"), stats.write.false_hits);

    // Histogram deltas likewise sum to the full-run totals.
    let hist_count_sum: u64 = snaps
        .iter()
        .flat_map(|s| &s.histograms)
        .filter(|(n, _)| n == "dram.read_latency")
        .map(|(_, d)| d.count)
        .sum();
    assert_eq!(hist_count_sum, stats.reads_completed);
}

#[test]
fn observability_off_changes_nothing() {
    let run = |observed: bool| {
        let mut mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RestrictedClosePage,
            SchemeBehavior::pra(),
        ));
        if observed {
            mem.set_trace_sink(Box::new(Rc::new(RefCell::new(RingSink::new(1 << 20)))));
            mem.set_metrics_epochs(1_000, None);
        }
        drive(&mut mem, 200, 0x6f66_6621);
        mem.finish_observability();
        (mem.stats().clone(), mem.energy())
    };
    let (plain_stats, plain_energy) = run(false);
    let (obs_stats, obs_energy) = run(true);
    assert_eq!(plain_stats.activations, obs_stats.activations);
    assert_eq!(plain_stats.read, obs_stats.read);
    assert_eq!(plain_stats.write, obs_stats.write);
    assert_eq!(plain_stats.cycles, obs_stats.cycles);
    assert!((plain_energy.total() - obs_energy.total()).abs() < 1e-9);
}
