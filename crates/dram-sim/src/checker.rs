//! An independent DRAM command-protocol checker.
//!
//! The scheduler in [`crate::MemorySystem`] is supposed to respect every
//! JEDEC-style timing constraint; this module re-verifies that claim from
//! the *outside*, by watching the command stream the controller issues and
//! re-deriving legality from its own per-bank/per-rank state. It shares no
//! code with the scheduler's fences, so a bookkeeping bug in one is caught
//! by the other (defence in depth, as DRAMSim-class simulators do with
//! their command-trace verifiers).
//!
//! The checker is wired into the channel behind
//! [`crate::DramConfig::verify_protocol`], which defaults to on in debug
//! builds (so the entire test suite runs verified) and off in release
//! builds (figure regeneration speed).

use core::fmt;
use std::collections::{BTreeMap, VecDeque};

use crate::scheme::FULL_ROW_MATS;
use crate::timing::TimingParams;

/// A DRAM command as seen on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCommand {
    /// Row activation of `mats` MATs (16 = conventional full row) taking
    /// `extra_cycles` of additional activate-to-column delay (PRA mask
    /// transfer).
    Activate {
        /// Target rank.
        rank: u32,
        /// Target bank.
        bank: u32,
        /// Row index.
        row: u32,
        /// MATs driven.
        mats: u32,
        /// Extra activate-to-column cycles.
        extra_cycles: u64,
    },
    /// Column read (BL8 of `burst_cycles` on the bus).
    Read {
        /// Target rank.
        rank: u32,
        /// Target bank.
        bank: u32,
    },
    /// Column write.
    Write {
        /// Target rank.
        rank: u32,
        /// Target bank.
        bank: u32,
    },
    /// Bank precharge (explicit or auto).
    Precharge {
        /// Target rank.
        rank: u32,
        /// Target bank.
        bank: u32,
    },
    /// All-bank refresh.
    Refresh {
        /// Target rank.
        rank: u32,
    },
}

/// A violated protocol rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// Cycle at which the illegal command was issued.
    pub cycle: u64,
    /// The offending command.
    pub command: DramCommand,
    /// Which rule was broken.
    pub rule: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {:?} violates {}",
            self.cycle, self.command, self.rule
        )
    }
}

impl std::error::Error for ProtocolError {}

#[derive(Debug, Clone)]
struct BankCheck {
    open_row: Option<u32>,
    act_at: u64,
    act_extra: u64,
    last_read_at: Option<u64>,
    last_write_at: Option<u64>,
    pre_at: Option<u64>,
    busy_until: u64, // refresh
}

impl BankCheck {
    fn new() -> Self {
        BankCheck {
            open_row: None,
            act_at: 0,
            act_extra: 0,
            last_read_at: None,
            last_write_at: None,
            pre_at: None,
            busy_until: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct RankCheck {
    banks: Vec<BankCheck>,
    acts: VecDeque<(u64, f64)>,
    last_act_at: Option<(u64, f64)>,
}

/// Replays the observed command stream against independently tracked state.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    timing: TimingParams,
    ranks: Vec<RankCheck>,
    last_col_at: Option<u64>,
    /// Previous data burst: `(end_cycle, was_read, rank)`. Drives the
    /// bus-level tWTR / tRTRS / overlap rules.
    last_burst: Option<(u64, bool, u32)>,
    /// Data-bus cycles one column burst occupies (the scheme's effective
    /// burst: `timing.burst_cycles * burst_multiplier` for FGA).
    burst_cycles: u64,
    /// Whether partial activations relax tRRD/tFAW proportionally (the
    /// scheme under test declares its own contract).
    relaxed_act_timing: bool,
    /// Replay hold-offs announced by the recovery pipeline:
    /// `(rank, bank)` → first cycle the bank accepts commands again.
    alert_holds: BTreeMap<(u32, u32), u64>,
    commands_checked: u64,
}

impl ProtocolChecker {
    /// A checker for `ranks` ranks of `banks` banks under `timing`.
    /// `burst_cycles` is the effective data-bus occupancy of one column
    /// burst (the raw `timing.burst_cycles` times any scheme multiplier).
    pub fn new(
        timing: TimingParams,
        ranks: usize,
        banks: usize,
        relaxed_act_timing: bool,
        burst_cycles: u64,
    ) -> Self {
        ProtocolChecker {
            timing,
            ranks: (0..ranks)
                .map(|_| RankCheck {
                    banks: (0..banks).map(|_| BankCheck::new()).collect(),
                    acts: VecDeque::new(),
                    last_act_at: None,
                })
                .collect(),
            last_col_at: None,
            last_burst: None,
            burst_cycles,
            relaxed_act_timing,
            alert_holds: BTreeMap::new(),
            commands_checked: 0,
        }
    }

    /// Announces an ALERT_n replay hold: the recovery pipeline promised
    /// not to re-issue the faulted command window on `(rank, bank)` before
    /// cycle `until`. Observing an Activate/Read/Write there earlier is a
    /// violation. Precharge and Refresh are exempt — the alert parks the
    /// faulted command, not bank maintenance.
    pub fn record_alert(&mut self, rank: u32, bank: u32, until: u64) {
        self.alert_holds.insert((rank, bank), until);
    }

    /// Commands observed so far.
    pub fn commands_checked(&self) -> u64 {
        self.commands_checked
    }

    fn weight(&self, mats: u32) -> f64 {
        if self.relaxed_act_timing {
            f64::from(mats) / f64::from(FULL_ROW_MATS)
        } else {
            1.0
        }
    }

    fn err(cycle: u64, command: DramCommand, rule: impl Into<String>) -> ProtocolError {
        ProtocolError {
            cycle,
            command,
            rule: rule.into(),
        }
    }

    /// Observes one command at `cycle`.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule, naming it.
    pub fn observe(&mut self, cycle: u64, command: DramCommand) -> Result<(), ProtocolError> {
        self.commands_checked += 1;
        if let DramCommand::Activate { rank, bank, .. }
        | DramCommand::Read { rank, bank }
        | DramCommand::Write { rank, bank } = command
        {
            if let Some(&until) = self.alert_holds.get(&(rank, bank)) {
                if cycle < until {
                    return Err(Self::err(
                        cycle,
                        command,
                        format!("replay before alert window elapsed (hold until {until})"),
                    ));
                }
                self.alert_holds.remove(&(rank, bank));
            }
        }
        let t = self.timing;
        match command {
            DramCommand::Activate {
                rank,
                bank,
                row,
                mats,
                extra_cycles,
            } => {
                if mats == 0 || mats > FULL_ROW_MATS {
                    return Err(Self::err(cycle, command, "mats out of range"));
                }
                let weight = self.weight(mats);
                let r = &mut self.ranks[rank as usize];
                // tRRD against the previous activation in this rank.
                if let Some((prev, prev_w)) = r.last_act_at {
                    let spacing = if self.relaxed_act_timing {
                        t.scaled_trrd(prev_w)
                    } else {
                        t.trrd
                    };
                    if cycle < prev + spacing {
                        return Err(Self::err(cycle, command, format!("tRRD ({spacing})")));
                    }
                }
                // Weighted tFAW.
                let in_window: f64 = r
                    .acts
                    .iter()
                    .filter(|&&(c, _)| c + t.tfaw > cycle)
                    .map(|&(_, w)| w)
                    .sum();
                if in_window + weight > 4.0 + 1e-9 {
                    return Err(Self::err(
                        cycle,
                        command,
                        format!("tFAW (window weight {in_window:.3} + {weight:.3} > 4)"),
                    ));
                }
                let b = &mut r.banks[bank as usize];
                if b.open_row.is_some() {
                    return Err(Self::err(cycle, command, "ACT to an open bank"));
                }
                if let Some(pre_at) = b.pre_at {
                    if cycle < pre_at + t.trp {
                        return Err(Self::err(cycle, command, "tRP"));
                    }
                }
                if cycle < b.busy_until {
                    return Err(Self::err(cycle, command, "tRFC (rank refreshing)"));
                }
                b.open_row = Some(row);
                b.act_at = cycle;
                b.act_extra = extra_cycles;
                b.last_read_at = None;
                b.last_write_at = None;
                r.last_act_at = Some((cycle, weight));
                r.acts.push_back((cycle, weight));
                while let Some(&(c, _)) = r.acts.front() {
                    if c + t.tfaw <= cycle {
                        r.acts.pop_front();
                    } else {
                        break;
                    }
                }
            }
            DramCommand::Read { rank, bank } | DramCommand::Write { rank, bank } => {
                let is_read = matches!(command, DramCommand::Read { .. });
                if let Some(last) = self.last_col_at {
                    if cycle < last + t.tccd {
                        return Err(Self::err(cycle, command, "tCCD"));
                    }
                }
                let b = &mut self.ranks[rank as usize].banks[bank as usize];
                if b.open_row.is_none() {
                    return Err(Self::err(cycle, command, "column to a closed bank"));
                }
                if cycle < b.act_at + t.trcd + b.act_extra {
                    return Err(Self::err(cycle, command, "tRCD (+PRA mask cycle)"));
                }
                // Bus-level rules, mirroring the shared-data-bus model the
                // scheduler's DataBus implements: a burst starts CL (reads)
                // or WL (writes) after its column command, must not overlap
                // the previous burst, and pays tWTR on a direction change
                // plus tRTRS on a rank change.
                let start = cycle.saturating_add(if is_read { t.tcas } else { t.wl });
                if let Some((prev_end, prev_read, prev_rank)) = self.last_burst {
                    let turnaround = prev_read != is_read;
                    let rank_switch = prev_rank != rank;
                    let mut min_start = prev_end;
                    if turnaround {
                        min_start += t.twtr;
                    }
                    if rank_switch {
                        min_start += t.trtrs;
                    }
                    if start < min_start {
                        let rule = match (turnaround, rank_switch) {
                            (true, true) => "tWTR+tRTRS (bus turnaround and rank switch)",
                            (true, false) => "tWTR (bus turnaround)",
                            (false, true) => "tRTRS (rank-to-rank switch)",
                            (false, false) => "data-bus overlap",
                        };
                        return Err(Self::err(cycle, command, rule));
                    }
                }
                self.last_burst = Some((start.saturating_add(self.burst_cycles), is_read, rank));
                if is_read {
                    b.last_read_at = Some(cycle);
                } else {
                    b.last_write_at = Some(cycle);
                }
                self.last_col_at = Some(cycle);
            }
            DramCommand::Precharge { rank, bank } => {
                let b = &mut self.ranks[rank as usize].banks[bank as usize];
                if b.open_row.is_none() {
                    return Err(Self::err(cycle, command, "PRE to a closed bank"));
                }
                if cycle < b.act_at + t.tras {
                    return Err(Self::err(cycle, command, "tRAS"));
                }
                if let Some(rd) = b.last_read_at {
                    if cycle < rd + t.trtp {
                        return Err(Self::err(cycle, command, "tRTP"));
                    }
                }
                if let Some(wr) = b.last_write_at {
                    let wr_done = wr
                        .saturating_add(t.wl)
                        .saturating_add(t.burst_cycles)
                        .saturating_add(t.twr);
                    if cycle < wr_done {
                        return Err(Self::err(cycle, command, "tWR"));
                    }
                }
                b.open_row = None;
                b.pre_at = Some(cycle);
            }
            DramCommand::Refresh { rank } => {
                let r = &mut self.ranks[rank as usize];
                for (i, b) in r.banks.iter().enumerate() {
                    if b.open_row.is_some() {
                        return Err(Self::err(cycle, command, format!("REF with bank {i} open")));
                    }
                    if let Some(pre_at) = b.pre_at {
                        if cycle < pre_at + t.trp {
                            return Err(Self::err(cycle, command, "tRP before REF"));
                        }
                    }
                }
                for b in &mut r.banks {
                    b.busy_until = cycle.saturating_add(t.trfc);
                }
            }
        }
        Ok(())
    }
}

impl sim_snap::SnapState for ProtocolChecker {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("protocol-checker");
        // timing / burst_cycles / relaxed_act_timing are configuration,
        // rebuilt from the run config and covered by the header digest.
        w.seq(self.ranks.len());
        for rank in &self.ranks {
            w.seq(rank.banks.len());
            for b in &rank.banks {
                w.bool(b.open_row.is_some());
                if let Some(row) = b.open_row {
                    w.u32(row);
                }
                w.u64(b.act_at);
                w.u64(b.act_extra);
                w.opt_u64(b.last_read_at);
                w.opt_u64(b.last_write_at);
                w.opt_u64(b.pre_at);
                w.u64(b.busy_until);
            }
            w.seq(rank.acts.len());
            for &(c, weight) in &rank.acts {
                w.u64(c);
                w.f64(weight);
            }
            w.bool(rank.last_act_at.is_some());
            if let Some((c, weight)) = rank.last_act_at {
                w.u64(c);
                w.f64(weight);
            }
        }
        w.opt_u64(self.last_col_at);
        w.bool(self.last_burst.is_some());
        if let Some((end, was_read, rank)) = self.last_burst {
            w.u64(end);
            w.bool(was_read);
            w.u32(rank);
        }
        // BTreeMap iterates in key order, so the encoding is canonical.
        w.seq(self.alert_holds.len());
        for (&(rank, bank), &until) in &self.alert_holds {
            w.u32(rank);
            w.u32(bank);
            w.u64(until);
        }
        w.u64(self.commands_checked);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("protocol-checker")?;
        let ranks = r.seq()?;
        if ranks != self.ranks.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "checker rank count mismatch: snapshot has {ranks}, config has {}",
                self.ranks.len()
            )));
        }
        for rank in &mut self.ranks {
            let banks = r.seq()?;
            if banks != rank.banks.len() {
                return Err(sim_snap::SnapError::Decode(format!(
                    "checker bank count mismatch: snapshot has {banks}, config has {}",
                    rank.banks.len()
                )));
            }
            for b in &mut rank.banks {
                b.open_row = if r.bool()? { Some(r.u32()?) } else { None };
                b.act_at = r.u64()?;
                b.act_extra = r.u64()?;
                b.last_read_at = r.opt_u64()?;
                b.last_write_at = r.opt_u64()?;
                b.pre_at = r.opt_u64()?;
                b.busy_until = r.u64()?;
            }
            let acts = r.seq()?;
            rank.acts.clear();
            for _ in 0..acts {
                let c = r.u64()?;
                let weight = r.f64()?;
                rank.acts.push_back((c, weight));
            }
            rank.last_act_at = if r.bool()? {
                Some((r.u64()?, r.f64()?))
            } else {
                None
            };
        }
        self.last_col_at = r.opt_u64()?;
        self.last_burst = if r.bool()? {
            Some((r.u64()?, r.bool()?, r.u32()?))
        } else {
            None
        };
        self.alert_holds.clear();
        let holds = r.seq()?;
        for _ in 0..holds {
            let rank = r.u32()?;
            let bank = r.u32()?;
            let until = r.u64()?;
            self.alert_holds.insert((rank, bank), until);
        }
        self.commands_checked = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> ProtocolChecker {
        let t = TimingParams::ddr3_1600_table3();
        ProtocolChecker::new(t, 2, 8, false, t.burst_cycles)
    }

    fn act(rank: u32, bank: u32, row: u32) -> DramCommand {
        DramCommand::Activate {
            rank,
            bank,
            row,
            mats: 16,
            extra_cycles: 0,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(11, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
        c.observe(28, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap();
        c.observe(39, act(0, 0, 6)).unwrap();
        assert_eq!(c.commands_checked(), 4);
    }

    #[test]
    fn trcd_violation_detected() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        let err = c
            .observe(10, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tRCD"), "{err}");
    }

    #[test]
    fn tras_violation_detected() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        let err = c
            .observe(27, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tRAS"), "{err}");
    }

    #[test]
    fn trp_violation_detected() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(28, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap();
        let err = c.observe(38, act(0, 0, 6)).unwrap_err();
        assert!(err.rule.contains("tRP"), "{err}");
    }

    #[test]
    fn trrd_violation_detected() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        let err = c.observe(4, act(0, 1, 5)).unwrap_err();
        assert!(err.rule.contains("tRRD"), "{err}");
    }

    #[test]
    fn tfaw_violation_detected() {
        let mut c = checker();
        for (i, cycle) in [0u64, 5, 10, 15].iter().enumerate() {
            c.observe(*cycle, act(0, i as u32, 1)).unwrap();
        }
        let err = c.observe(20, act(0, 4, 1)).unwrap_err();
        assert!(err.rule.contains("tFAW"), "{err}");
        // After the window slides, the fifth activation is legal.
        let mut c2 = checker();
        for (i, cycle) in [0u64, 5, 10, 15].iter().enumerate() {
            c2.observe(*cycle, act(0, i as u32, 1)).unwrap();
        }
        c2.observe(25, act(0, 4, 1)).unwrap();
    }

    #[test]
    fn relaxed_partial_activations_pass_tfaw() {
        let t = TimingParams::ddr3_1600_table3();
        let mut c = ProtocolChecker::new(t, 2, 8, true, t.burst_cycles);
        // Eight 2-MAT activations inside one tFAW window: weight 8 * 1/8 = 1.
        for i in 0..8u32 {
            let cmd = DramCommand::Activate {
                rank: 0,
                bank: i,
                row: 1,
                mats: 2,
                extra_cycles: 1,
            };
            c.observe(u64::from(i) * 2, cmd).unwrap();
        }
    }

    #[test]
    fn pra_extra_cycle_enforced() {
        let mut c = checker();
        c.observe(
            0,
            DramCommand::Activate {
                rank: 0,
                bank: 0,
                row: 5,
                mats: 2,
                extra_cycles: 1,
            },
        )
        .unwrap();
        let err = c
            .observe(11, DramCommand::Write { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tRCD"), "{err}");
        c.observe(12, DramCommand::Write { rank: 0, bank: 0 })
            .unwrap();
    }

    #[test]
    fn twr_violation_detected() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(11, DramCommand::Write { rank: 0, bank: 0 })
            .unwrap();
        // Write burst ends at 11 + WL(8) + 4 = 23; tWR ends at 35 > tRAS.
        let err = c
            .observe(34, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tWR"), "{err}");
        let mut c2 = checker();
        c2.observe(0, act(0, 0, 5)).unwrap();
        c2.observe(11, DramCommand::Write { rank: 0, bank: 0 })
            .unwrap();
        c2.observe(35, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap();
    }

    #[test]
    fn refresh_rules() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        let err = c.observe(5, DramCommand::Refresh { rank: 0 }).unwrap_err();
        assert!(err.rule.contains("open"), "{err}");
        c.observe(28, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap();
        c.observe(39, DramCommand::Refresh { rank: 0 }).unwrap();
        // ACT during tRFC is illegal.
        let err = c.observe(100, act(0, 0, 5)).unwrap_err();
        assert!(err.rule.contains("tRFC"), "{err}");
        c.observe(39 + 128, act(0, 0, 5)).unwrap();
    }

    #[test]
    fn twtr_violation_detected() {
        // Write burst: issued at 11, starts 11+WL(8)=19, ends 19+4=23. A
        // read burst must start at 23+tWTR(6)=29, i.e. the RD command may
        // not issue before 29-CL(11)=18.
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(11, DramCommand::Write { rank: 0, bank: 0 })
            .unwrap();
        let err = c
            .observe(16, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tWTR"), "{err}");
        let mut c2 = checker();
        c2.observe(0, act(0, 0, 5)).unwrap();
        c2.observe(11, DramCommand::Write { rank: 0, bank: 0 })
            .unwrap();
        c2.observe(18, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
    }

    #[test]
    fn trtrs_violation_detected() {
        // Read burst from rank 0 ends at 11+CL(11)+4=26; a rank-1 burst
        // must start at 26+tRTRS(2)=28, so its RD may not issue before 17.
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(5, act(1, 0, 5)).unwrap();
        c.observe(11, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
        let err = c
            .observe(16, DramCommand::Read { rank: 1, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tRTRS"), "{err}");
        let mut c2 = checker();
        c2.observe(0, act(0, 0, 5)).unwrap();
        c2.observe(5, act(1, 0, 5)).unwrap();
        c2.observe(11, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
        c2.observe(17, DramCommand::Read { rank: 1, bank: 0 })
            .unwrap();
    }

    #[test]
    fn data_bus_overlap_detected_with_effective_burst() {
        // With an FGA-style burst multiplier the effective burst is 8
        // cycles: a read at 11 occupies the bus 22..30, so a same-rank
        // same-direction read at 16 (tCCD-legal) would overlap.
        let t = TimingParams::ddr3_1600_table3();
        let mut c = ProtocolChecker::new(t, 2, 8, false, 2 * t.burst_cycles);
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(11, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
        let err = c
            .observe(16, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("data-bus overlap"), "{err}");
        c.observe(19, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
    }

    #[test]
    fn replay_hold_rejects_early_reissue() {
        let mut c = checker();
        c.record_alert(0, 0, 40);
        let err = c.observe(30, act(0, 0, 5)).unwrap_err();
        assert!(err.rule.contains("replay before alert window"), "{err}");
        // Other banks are unaffected.
        c.observe(31, act(0, 1, 5)).unwrap();
        // Once the window opens, the replay is legal and the hold clears.
        let mut c2 = checker();
        c2.record_alert(0, 0, 40);
        c2.observe(40, act(0, 0, 5)).unwrap();
        c2.observe(51, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
    }

    #[test]
    fn replay_hold_exempts_precharge() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.record_alert(0, 0, 100);
        // Bank maintenance may proceed during the hold...
        c.observe(28, DramCommand::Precharge { rank: 0, bank: 0 })
            .unwrap();
        // ...but re-issuing the faulted command window may not.
        let err = c.observe(50, act(0, 0, 6)).unwrap_err();
        assert!(err.rule.contains("replay"), "{err}");
        c.observe(100, act(0, 0, 6)).unwrap();
    }

    #[test]
    fn tccd_violation_detected() {
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(0, act(0, 1, 5)).unwrap_err(); // also tRRD, but check columns:
        let mut c = checker();
        c.observe(0, act(0, 0, 5)).unwrap();
        c.observe(11, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap();
        let err = c
            .observe(14, DramCommand::Read { rank: 0, bank: 0 })
            .unwrap_err();
        assert!(err.rule.contains("tCCD"), "{err}");
    }
}
