//! Counters collected by the simulator, feeding Table 1 and Figures 10/11.

use crate::scheme::FULL_ROW_MATS;

/// Row-buffer outcome counters for one request kind (read or write).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitCounters {
    /// Requests served from an already-open row with sufficient coverage.
    pub hits: u64,
    /// Requests that matched the open row but found insufficient partial
    /// coverage (PRA's *false row buffer hits*, Section 5.2.1). Counted as
    /// misses in hit rates; also included in `misses`.
    pub false_hits: u64,
    /// Requests that needed an activation (row closed or conflicting row,
    /// plus false hits).
    pub misses: u64,
}

impl HitCounters {
    /// Total classified requests.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Row-buffer hit rate with false hits counted as misses (the paper's
    /// Figure 10 accounting).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Hypothetical conventional hit rate: what the rate would have been if
    /// false hits had been real hits.
    pub fn conventional_hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.hits + self.false_hits) as f64 / self.total() as f64
        }
    }
}

/// All statistics the memory system collects during a run.
#[derive(Debug, Clone)]
pub struct DramStats {
    /// Memory-clock cycles simulated.
    pub cycles: u64,
    /// Read request outcomes.
    pub read: HitCounters,
    /// Write request outcomes.
    pub write: HitCounters,
    /// Completed read requests (data returned).
    pub reads_completed: u64,
    /// Completed write requests (data written to the array).
    pub writes_completed: u64,
    /// Sum of read latencies (enqueue to data completion) in cycles.
    pub read_latency_sum: u64,
    /// Activations histogram indexed by MATs driven minus one (0..16).
    /// `act_histogram[15]` counts full-row activations.
    pub act_histogram: [u64; FULL_ROW_MATS as usize],
    /// Activations triggered by reads, same indexing.
    pub act_histogram_reads: [u64; FULL_ROW_MATS as usize],
    /// Activation commands issued (including refresh-forced reopens).
    pub activations: u64,
    /// Precharge commands issued (explicit plus auto-precharge).
    pub precharges: u64,
    /// All-bank refresh commands issued.
    pub refreshes: u64,
    /// Cycles the data bus carried read or write bursts.
    pub bus_busy_cycles: u64,
    /// Row-hit streaks cut short by the fairness cap.
    pub hit_cap_precharges: u64,
    /// Write-drain mode entries.
    pub drain_entries: u64,
    /// Partial activations widened to full rows after a detected
    /// mask-transfer fault (fault injection only; always 0 otherwise).
    pub degraded_activations: u64,
    /// Injected mask faults that escaped C/A parity detection (an even
    /// number of flipped mask bits leaves the parity intact), so the
    /// activation proceeded with silently wrong coverage. Fault injection
    /// only; always 0 otherwise.
    pub parity_escapes: u64,
}

impl Default for DramStats {
    fn default() -> Self {
        DramStats {
            cycles: 0,
            read: HitCounters::default(),
            write: HitCounters::default(),
            reads_completed: 0,
            writes_completed: 0,
            read_latency_sum: 0,
            act_histogram: [0; FULL_ROW_MATS as usize],
            act_histogram_reads: [0; FULL_ROW_MATS as usize],
            activations: 0,
            precharges: 0,
            refreshes: 0,
            bus_busy_cycles: 0,
            hit_cap_precharges: 0,
            drain_entries: 0,
            degraded_activations: 0,
            parity_escapes: 0,
        }
    }
}

impl DramStats {
    /// Records an activation of `mats` MATs, attributed to a read or write.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is outside `1..=16`.
    pub fn record_activation(&mut self, mats: u32, for_read: bool) {
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — the protocol checker independently rejects out-of-range mats
        assert!(
            (1..=FULL_ROW_MATS).contains(&mats),
            "mats {mats} out of range"
        );
        self.activations += 1;
        self.act_histogram[(mats - 1) as usize] += 1;
        if for_read {
            self.act_histogram_reads[(mats - 1) as usize] += 1;
        }
    }

    /// Combined row-buffer hit rate over reads and writes.
    pub fn total_hit_rate(&self) -> f64 {
        let total = self.read.total() + self.write.total();
        if total == 0 {
            0.0
        } else {
            (self.read.hits + self.write.hits) as f64 / total as f64
        }
    }

    /// Average read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_completed as f64
        }
    }

    /// Share of activations caused by writes (Table 1's "Row activation"
    /// split).
    pub fn write_activation_share(&self) -> f64 {
        let reads: u64 = self.act_histogram_reads.iter().sum();
        if self.activations == 0 {
            0.0
        } else {
            (self.activations - reads) as f64 / self.activations as f64
        }
    }

    /// Proportion of activations at each eighth-of-a-row granularity
    /// (Figure 11): index `k` holds the share of `(k+1)/8`-row activations.
    /// Sub-eighth (odd-MAT) activations from the combined scheme round up.
    pub fn granularity_proportions(&self) -> [f64; 8] {
        let mut out = [0.0; 8];
        let total: u64 = self.act_histogram.iter().sum();
        if total == 0 {
            return out;
        }
        for (i, &count) in self.act_histogram.iter().enumerate() {
            let mats = i as u32 + 1;
            let eighth = mats.div_ceil(2); // 1..=8
            out[(eighth - 1) as usize] += count as f64 / total as f64;
        }
        out
    }

    /// Mirrors every counter into `reg` under canonical `dram.*` names, so
    /// epoch snapshots and metric dumps see the same numbers the public
    /// accessors report. Registration is idempotent; call this whenever the
    /// registry needs to be brought up to date (epoch boundaries, end of
    /// run).
    pub fn publish_to(&self, reg: &mut sim_obs::MetricsRegistry) {
        let mut set = |name: &str, value: u64| {
            let id = reg.counter(name);
            reg.set_counter(id, value);
        };
        set("dram.cycles", self.cycles);
        set("dram.read.hits", self.read.hits);
        set("dram.read.false_hits", self.read.false_hits);
        set("dram.read.misses", self.read.misses);
        set("dram.write.hits", self.write.hits);
        set("dram.write.false_hits", self.write.false_hits);
        set("dram.write.misses", self.write.misses);
        set("dram.reads_completed", self.reads_completed);
        set("dram.writes_completed", self.writes_completed);
        set("dram.read_latency_sum", self.read_latency_sum);
        set("dram.activations", self.activations);
        let partial: u64 = self.act_histogram[..FULL_ROW_MATS as usize - 1]
            .iter()
            .sum();
        set("dram.activations.partial", partial);
        set(
            "dram.activations.for_reads",
            self.act_histogram_reads.iter().sum(),
        );
        set("dram.precharges", self.precharges);
        set("dram.refreshes", self.refreshes);
        set("dram.bus_busy_cycles", self.bus_busy_cycles);
        set("dram.hit_cap_precharges", self.hit_cap_precharges);
        set("dram.drain_entries", self.drain_entries);
        set("dram.degraded_activations", self.degraded_activations);
        set("fault.dram.escaped", self.parity_escapes);
    }

    /// Average activation granularity as a fraction of a full row; the
    /// paper's "reduces average row activation granularity by 42%" metric is
    /// `1.0 - this`.
    pub fn avg_activation_fraction(&self) -> f64 {
        let total: u64 = self.act_histogram.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let weighted: f64 = self
            .act_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) / FULL_ROW_MATS as f64 * c as f64)
            .sum();
        weighted / total as f64
    }
}

impl sim_snap::SnapState for HitCounters {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.u64(self.hits);
        w.u64(self.false_hits);
        w.u64(self.misses);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        self.hits = r.u64()?;
        self.false_hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

impl sim_snap::SnapState for DramStats {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("dram-stats");
        w.u64(self.cycles);
        self.read.snap_save(w);
        self.write.snap_save(w);
        w.u64(self.reads_completed);
        w.u64(self.writes_completed);
        w.u64(self.read_latency_sum);
        for c in self.act_histogram {
            w.u64(c);
        }
        for c in self.act_histogram_reads {
            w.u64(c);
        }
        w.u64(self.activations);
        w.u64(self.precharges);
        w.u64(self.refreshes);
        w.u64(self.bus_busy_cycles);
        w.u64(self.hit_cap_precharges);
        w.u64(self.drain_entries);
        w.u64(self.degraded_activations);
        w.u64(self.parity_escapes);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("dram-stats")?;
        self.cycles = r.u64()?;
        self.read.snap_load(r)?;
        self.write.snap_load(r)?;
        self.reads_completed = r.u64()?;
        self.writes_completed = r.u64()?;
        self.read_latency_sum = r.u64()?;
        for c in &mut self.act_histogram {
            *c = r.u64()?;
        }
        for c in &mut self.act_histogram_reads {
            *c = r.u64()?;
        }
        self.activations = r.u64()?;
        self.precharges = r.u64()?;
        self.refreshes = r.u64()?;
        self.bus_busy_cycles = r.u64()?;
        self.hit_cap_precharges = r.u64()?;
        self.drain_entries = r.u64()?;
        self.degraded_activations = r.u64()?;
        self.parity_escapes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_with_false_hits() {
        let h = HitCounters {
            hits: 6,
            false_hits: 2,
            misses: 4,
        };
        assert!((h.hit_rate() - 0.6).abs() < 1e-12);
        assert!((h.conventional_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_are_zero() {
        let h = HitCounters::default();
        assert_eq!(h.hit_rate(), 0.0);
        assert_eq!(h.conventional_hit_rate(), 0.0);
        let s = DramStats::default();
        assert_eq!(s.total_hit_rate(), 0.0);
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.avg_activation_fraction(), 1.0);
    }

    #[test]
    fn granularity_proportions_sum_to_one() {
        let mut s = DramStats::default();
        s.record_activation(16, true);
        s.record_activation(16, true);
        s.record_activation(2, false);
        s.record_activation(4, false);
        let p = s.granularity_proportions();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12, "full-row share");
        assert!((p[0] - 0.25).abs() < 1e-12, "1/8 share");
        assert!((p[1] - 0.25).abs() < 1e-12, "2/8 share");
    }

    #[test]
    fn odd_mats_round_up_to_next_eighth() {
        let mut s = DramStats::default();
        s.record_activation(1, false); // halved single group -> 1/8 bucket
        s.record_activation(3, false); // 1.5 groups -> 2/8 bucket
        let p = s.granularity_proportions();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn avg_activation_fraction_weighted() {
        let mut s = DramStats::default();
        s.record_activation(16, true);
        s.record_activation(2, false);
        // (1.0 + 0.125) / 2
        assert!((s.avg_activation_fraction() - 0.5625).abs() < 1e-12);
        assert!((s.write_activation_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn activation_rejects_zero_mats() {
        DramStats::default().record_activation(0, true);
    }

    #[test]
    fn false_hits_are_counted_inside_misses() {
        // A false hit is recorded by incrementing BOTH false_hits and
        // misses, so totals never double-count and false_hits <= misses.
        let mut h = HitCounters::default();
        for _ in 0..3 {
            h.hits += 1;
        }
        for _ in 0..2 {
            h.misses += 1; // plain conflict misses
        }
        for _ in 0..2 {
            h.false_hits += 1; // PRA false row-buffer hits...
            h.misses += 1; // ...always counted as misses too
        }
        assert_eq!(h.total(), 7, "false hits must not inflate the total");
        assert!(h.false_hits <= h.misses);
        assert!((h.hit_rate() - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.conventional_hit_rate() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn conventional_hit_rate_never_below_hit_rate() {
        for hits in 0..6u64 {
            for false_hits in 0..6u64 {
                for extra_misses in 0..6u64 {
                    let h = HitCounters {
                        hits,
                        false_hits,
                        misses: false_hits + extra_misses,
                    };
                    assert!(
                        h.conventional_hit_rate() >= h.hit_rate() - 1e-12,
                        "{h:?}: conventional rate must dominate"
                    );
                    assert!(h.hit_rate() <= 1.0 && h.conventional_hit_rate() <= 1.0);
                }
            }
        }
    }

    #[test]
    fn publish_mirrors_counters_into_registry() {
        let mut s = DramStats {
            cycles: 1000,
            read: HitCounters {
                hits: 5,
                false_hits: 1,
                misses: 3,
            },
            ..DramStats::default()
        };
        s.record_activation(2, false);
        s.record_activation(16, true);
        s.refreshes = 4;
        let mut reg = sim_obs::MetricsRegistry::new();
        s.publish_to(&mut reg);
        assert_eq!(reg.counter_value("dram.cycles"), Some(1000));
        assert_eq!(reg.counter_value("dram.read.hits"), Some(5));
        assert_eq!(reg.counter_value("dram.read.false_hits"), Some(1));
        assert_eq!(reg.counter_value("dram.activations"), Some(2));
        assert_eq!(reg.counter_value("dram.activations.partial"), Some(1));
        assert_eq!(reg.counter_value("dram.activations.for_reads"), Some(1));
        assert_eq!(reg.counter_value("dram.refreshes"), Some(4));
        // Publishing again with advanced counters is fine (monotone).
        s.refreshes = 6;
        s.publish_to(&mut reg);
        assert_eq!(reg.counter_value("dram.refreshes"), Some(6));
    }
}
