//! Behavioural descriptors of the compared DRAM activation schemes.
//!
//! The simulator is scheme-agnostic: a [`SchemeBehavior`] tells it, for each
//! activation, how many MATs are driven (power), which words the open row
//! can serve (coverage), how long data bursts occupy the bus, whether write
//! I/O energy scales with the transferred fraction, and whether tRRD/tFAW
//! are relaxed proportionally to activation granularity.

use mem_model::WordMask;

/// MATs a conventional full-row activation drives (16 per sub-array).
pub const FULL_ROW_MATS: u32 = 16;

/// How write requests choose their activation granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteActPolicy {
    /// Conventional: always activate the full row.
    FullRow,
    /// Always activate a fixed number of MATs (FGA and Half-DRAM activate 8
    /// MATs — half a row — for every access).
    FixedMats(u32),
    /// PRA: activate the MAT groups named by the (ORed) dirty mask. With
    /// `halved`, each group is a single halved MAT (the combined
    /// Half-DRAM + PRA design) instead of a pair.
    PerMask {
        /// `true` when stacked on top of Half-DRAM's split MATs.
        halved: bool,
    },
}

/// Full behavioural description of one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeBehavior {
    /// Human-readable scheme name.
    pub name: &'static str,
    /// MATs driven by a read activation.
    pub read_act_mats: u32,
    /// Write activation granularity policy.
    pub write_act: WriteActPolicy,
    /// Extra cycles added between a *partial* activation and the first
    /// column command (PRA's mask transfer costs one extra tCK, Fig. 7a).
    pub partial_act_extra_cycles: u64,
    /// Multiplier on data-burst bus occupancy (FGA needs 16 bursts instead
    /// of 8 per line, i.e. 2x).
    pub burst_multiplier: u64,
    /// Whether write ODT/termination energy scales with the fraction of
    /// words actually transferred (PRA sends only dirty words).
    pub scale_write_io: bool,
    /// Whether activations count against tRRD/tFAW proportionally to their
    /// granularity.
    pub relaxed_act_timing: bool,
}

impl SchemeBehavior {
    /// Conventional DRAM.
    pub const fn baseline() -> Self {
        SchemeBehavior {
            name: "baseline",
            read_act_mats: FULL_ROW_MATS,
            write_act: WriteActPolicy::FullRow,
            partial_act_extra_cycles: 0,
            burst_multiplier: 1,
            scale_write_io: false,
            relaxed_act_timing: false,
        }
    }

    /// Fine-grained activation at half-row granularity (the configuration
    /// the paper evaluates; Section 5.2.2). Activates 8 MATs for every
    /// access and pays doubled burst occupancy because the n-bit prefetch
    /// width is halved.
    pub const fn fga_half() -> Self {
        SchemeBehavior {
            name: "FGA",
            read_act_mats: FULL_ROW_MATS / 2,
            write_act: WriteActPolicy::FixedMats(FULL_ROW_MATS / 2),
            partial_act_extra_cycles: 0,
            burst_multiplier: 2,
            scale_write_io: false,
            relaxed_act_timing: true,
        }
    }

    /// Half-DRAM (Half-DRAM-1Row): half-row activations for all accesses at
    /// full bandwidth.
    pub const fn half_dram() -> Self {
        SchemeBehavior {
            name: "Half-DRAM",
            read_act_mats: FULL_ROW_MATS / 2,
            write_act: WriteActPolicy::FixedMats(FULL_ROW_MATS / 2),
            partial_act_extra_cycles: 0,
            burst_multiplier: 1,
            scale_write_io: false,
            relaxed_act_timing: true,
        }
    }

    /// Partial Row Activation: full rows for reads, mask-granular partial
    /// rows for writes, dirty words only on the write bus.
    pub const fn pra() -> Self {
        SchemeBehavior {
            name: "PRA",
            read_act_mats: FULL_ROW_MATS,
            write_act: WriteActPolicy::PerMask { halved: false },
            partial_act_extra_cycles: 1,
            burst_multiplier: 1,
            scale_write_io: true,
            relaxed_act_timing: true,
        }
    }

    /// The combined Half-DRAM + PRA case study (Section 5.2.3): half rows
    /// for reads, halved mask-granular partial rows for writes.
    pub const fn half_dram_pra() -> Self {
        SchemeBehavior {
            name: "Half-DRAM+PRA",
            read_act_mats: FULL_ROW_MATS / 2,
            write_act: WriteActPolicy::PerMask { halved: true },
            partial_act_extra_cycles: 1,
            burst_multiplier: 1,
            scale_write_io: true,
            relaxed_act_timing: true,
        }
    }

    /// MATs driven when activating for a write with the given (already
    /// ORed) mask.
    pub fn write_act_mats(&self, mask: WordMask) -> u32 {
        match self.write_act {
            WriteActPolicy::FullRow => FULL_ROW_MATS,
            WriteActPolicy::FixedMats(m) => m,
            WriteActPolicy::PerMask { halved } => {
                let groups = mask.granularity_eighths().max(1);
                if halved {
                    groups
                } else {
                    groups * 2
                }
            }
        }
    }

    /// Word coverage the open row provides after a write activation with
    /// the given mask. Schemes without per-mask activation cover the whole
    /// line (Half-DRAM splits MATs vertically, so every word stays
    /// reachable).
    pub fn write_coverage(&self, mask: WordMask) -> WordMask {
        match self.write_act {
            WriteActPolicy::FullRow | WriteActPolicy::FixedMats(_) => WordMask::FULL,
            WriteActPolicy::PerMask { .. } => mask,
        }
    }

    /// `true` if write activations can open less than the full word
    /// coverage, enabling false row-buffer hits.
    pub fn has_partial_coverage(&self) -> bool {
        matches!(self.write_act, WriteActPolicy::PerMask { .. })
    }

    /// Weight of an activation of `mats` MATs against tRRD/tFAW.
    /// 1.0 for non-relaxed schemes regardless of granularity.
    pub fn act_timing_weight(&self, mats: u32) -> f64 {
        if self.relaxed_act_timing {
            f64::from(mats) / f64::from(FULL_ROW_MATS)
        } else {
            1.0
        }
    }

    /// Extra activate-to-column cycles for a write activation with the
    /// given coverage: PRA pays one tCK for mask delivery unless the mask is
    /// full (a full-mask PRA activation behaves like a conventional one,
    /// Fig. 7b).
    pub fn act_extra_cycles(&self, coverage: WordMask) -> u64 {
        if self.has_partial_coverage() && !coverage.is_full() {
            self.partial_act_extra_cycles
        } else {
            0
        }
    }

    /// Fraction of write data actually driven on the bus for energy
    /// purposes.
    pub fn write_io_fraction(&self, mask: WordMask) -> f64 {
        if self.scale_write_io {
            mask.fraction()
        } else {
            1.0
        }
    }
}

impl Default for SchemeBehavior {
    fn default() -> Self {
        SchemeBehavior::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_always_full() {
        let s = SchemeBehavior::baseline();
        assert_eq!(s.write_act_mats(WordMask::single(0)), 16);
        assert_eq!(s.write_coverage(WordMask::single(0)), WordMask::FULL);
        assert!(!s.has_partial_coverage());
        assert_eq!(s.act_timing_weight(16), 1.0);
        assert_eq!(s.write_io_fraction(WordMask::single(0)), 1.0);
    }

    #[test]
    fn pra_tracks_mask() {
        let s = SchemeBehavior::pra();
        let m = WordMask::from_words([0, 7]);
        assert_eq!(s.write_act_mats(m), 4, "two groups of two MATs");
        assert_eq!(s.write_coverage(m), m);
        assert!(s.has_partial_coverage());
        assert_eq!(s.act_extra_cycles(m), 1);
        assert_eq!(
            s.act_extra_cycles(WordMask::FULL),
            0,
            "full-mask writes need no extra cycle"
        );
        assert_eq!(s.write_io_fraction(m), 0.25);
        assert_eq!(s.read_act_mats, 16, "PRA keeps full-row reads");
    }

    #[test]
    fn half_dram_halves_power_not_coverage() {
        let s = SchemeBehavior::half_dram();
        assert_eq!(s.read_act_mats, 8);
        assert_eq!(s.write_act_mats(WordMask::single(3)), 8);
        assert_eq!(s.write_coverage(WordMask::single(3)), WordMask::FULL);
        assert_eq!(s.burst_multiplier, 1, "full bandwidth retained");
    }

    #[test]
    fn fga_doubles_burst() {
        let s = SchemeBehavior::fga_half();
        assert_eq!(s.burst_multiplier, 2);
        assert_eq!(s.read_act_mats, 8);
    }

    #[test]
    fn combined_scheme_halves_groups() {
        let s = SchemeBehavior::half_dram_pra();
        let m = WordMask::from_words([0, 1, 2]);
        assert_eq!(s.write_act_mats(m), 3, "three single halved MATs");
        assert_eq!(s.read_act_mats, 8);
        assert_eq!(s.write_coverage(m), m);
    }

    #[test]
    fn relaxed_weight_scales() {
        let s = SchemeBehavior::pra();
        assert_eq!(s.act_timing_weight(16), 1.0);
        assert_eq!(s.act_timing_weight(2), 0.125);
        let b = SchemeBehavior::baseline();
        assert_eq!(b.act_timing_weight(2), 1.0);
    }
}
