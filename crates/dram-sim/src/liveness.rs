//! Cycle-domain liveness watchdogs.
//!
//! Batch campaigns need to distinguish "still simulating" from "livelocked":
//! a scheduler bug (or a hostile fault plan) can leave the memory system
//! ticking forever without retiring a single request. The watchdogs here are
//! pure functions of the memory-cycle counter and queue state — no wall
//! clock, so seeded runs stay bit-reproducible and the sim-lint
//! `forbid-wallclock` pass stays clean.
//!
//! Two independent bounds, both measured in memory cycles and both disabled
//! when zero:
//!
//! * **No-retire**: trips when requests are pending but none has retired
//!   for more than [`LivenessConfig::max_no_retire_cycles`] cycles.
//! * **Starvation**: trips when the oldest queued request's age exceeds
//!   [`LivenessConfig::max_queue_age_cycles`] (scanned every
//!   [`STARVATION_SCAN_INTERVAL`] cycles to keep the hot path cheap).
//!
//! A trip surfaces as a [`LivenessError`] carrying the offending request's
//! address/bank trail, routed through [`TickError`] on the `try_tick` path
//! next to the existing protocol-checker errors.

use core::fmt;

use crate::checker::ProtocolError;

/// How often (in memory cycles) the starvation watchdog scans queue ages.
pub const STARVATION_SCAN_INTERVAL: u64 = 64;

/// Watchdog bounds, in memory cycles. A zero bound disables that watchdog;
/// both default to zero so existing configurations are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LivenessConfig {
    /// Maximum cycles without any request retiring while work is pending.
    pub max_no_retire_cycles: u64,
    /// Maximum age (enqueue-to-now) of any queued request.
    pub max_queue_age_cycles: u64,
}

impl LivenessConfig {
    /// Both watchdogs off.
    pub const fn disabled() -> Self {
        LivenessConfig {
            max_no_retire_cycles: 0,
            max_queue_age_cycles: 0,
        }
    }

    /// `true` if at least one watchdog is armed.
    pub fn enabled(&self) -> bool {
        self.max_no_retire_cycles > 0 || self.max_queue_age_cycles > 0
    }
}

/// Address/bank trail of the request a watchdog singled out: where it maps,
/// how long it has been queued, and what row its bank currently holds open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrail {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row the request wants.
    pub row: u32,
    /// Raw physical byte address.
    pub addr: u64,
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
    /// Memory cycle at which the request entered its queue.
    pub enqueued_at: u64,
    /// Row currently open in the request's bank, if any.
    pub open_row: Option<u32>,
}

impl fmt::Display for RequestTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} 0x{:08x} ch{}/rk{}/bk{} row {} (queued at cycle {}, bank {})",
            if self.is_write { "write" } else { "read" },
            self.addr,
            self.channel,
            self.rank,
            self.bank,
            self.row,
            self.enqueued_at,
            match self.open_row {
                Some(row) => format!("open on row {row}"),
                None => "closed".to_string(),
            }
        )
    }
}

/// Which watchdog tripped, with the measurement that tripped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessKind {
    /// No request retired for `stalled_for` cycles while work was pending.
    NoRetire {
        /// Cycles since the last retirement (or since the queues last
        /// drained).
        stalled_for: u64,
    },
    /// The oldest queued request's age exceeded the starvation bound.
    Starvation {
        /// Age of the starved request, in cycles.
        age: u64,
        /// The configured bound it exceeded.
        bound: u64,
    },
}

/// A liveness watchdog fired: the memory system is making no forward
/// progress (or is starving one request) under a configured bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessError {
    /// Memory cycle at which the watchdog tripped.
    pub cycle: u64,
    /// Which bound was violated and by how much.
    pub kind: LivenessKind,
    /// Trail of the oldest pending request, when one was queued.
    pub victim: Option<RequestTrail>,
}

impl fmt::Display for LivenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LivenessKind::NoRetire { stalled_for } => write!(
                f,
                "cycle {}: no request retired for {} cycles with work pending",
                self.cycle, stalled_for
            )?,
            LivenessKind::Starvation { age, bound } => write!(
                f,
                "cycle {}: queued request aged {} cycles (bound {})",
                self.cycle, age, bound
            )?,
        }
        if let Some(victim) = &self.victim {
            write!(f, "; oldest pending: {victim}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LivenessError {}

/// Error type of the fallible tick path: either the protocol checker
/// rejected a command, or a liveness watchdog tripped.
#[derive(Debug, Clone, PartialEq)]
pub enum TickError {
    /// A DDR3 timing/state rule was violated.
    Protocol(ProtocolError),
    /// A liveness watchdog fired.
    Liveness(LivenessError),
}

impl fmt::Display for TickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TickError::Protocol(e) => write!(f, "protocol violation: {e}"),
            TickError::Liveness(e) => write!(f, "liveness violation: {e}"),
        }
    }
}

impl std::error::Error for TickError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TickError::Protocol(e) => Some(e),
            TickError::Liveness(e) => Some(e),
        }
    }
}

impl From<ProtocolError> for TickError {
    fn from(e: ProtocolError) -> Self {
        TickError::Protocol(e)
    }
}

impl From<LivenessError> for TickError {
    fn from(e: LivenessError) -> Self {
        TickError::Liveness(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_reports_disabled() {
        assert!(!LivenessConfig::disabled().enabled());
        assert!(LivenessConfig {
            max_no_retire_cycles: 1,
            ..LivenessConfig::disabled()
        }
        .enabled());
    }

    #[test]
    fn display_includes_trail() {
        let e = LivenessError {
            cycle: 512,
            kind: LivenessKind::Starvation {
                age: 501,
                bound: 500,
            },
            victim: Some(RequestTrail {
                channel: 0,
                rank: 0,
                bank: 3,
                row: 9,
                addr: 0x1234_5678,
                is_write: true,
                enqueued_at: 11,
                open_row: Some(5),
            }),
        };
        let s = e.to_string();
        assert!(s.contains("cycle 512"), "{s}");
        assert!(s.contains("bk3"), "{s}");
        assert!(s.contains("row 9"), "{s}");
        assert!(s.contains("open on row 5"), "{s}");
        let t: TickError = e.into();
        assert!(t.to_string().starts_with("liveness violation:"));
    }
}
