//! Per-channel memory controller: FR-FCFS scheduling, write drain,
//! refresh, page policies and the PRA command path.

use dram_power::EnergyAccounting;
use mem_model::{Location, MemRequest, ReqKind, RequestId, WordMask};
use sim_fault::{FaultInjector, FaultSite};
use sim_obs::TraceEvent;
use sim_recover::{RecoveryEngine, RecoveryVerdict, RowStanding};

use crate::checker::{DramCommand, ProtocolChecker, ProtocolError};
use crate::config::{DramConfig, PagePolicy};
use crate::liveness::RequestTrail;
use crate::obs::DramObs;
use crate::rank::{Rank, RefreshState};
use crate::scheme::FULL_ROW_MATS;
use crate::stats::DramStats;

/// A queued request together with its decoded coordinates.
#[derive(Debug, Clone)]
pub(crate) struct QueueEntry {
    pub req: MemRequest,
    pub loc: Location,
    pub enqueued_at: u64,
    /// Whether the hit/miss outcome has been recorded (once per request).
    pub classified: bool,
}

/// Data-bus direction, for turnaround penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Read,
    Write,
}

/// Shared data-bus occupancy tracking.
#[derive(Debug, Clone)]
struct DataBus {
    busy_until: u64,
    last_dir: Option<Dir>,
    last_rank: Option<u32>,
}

impl DataBus {
    fn new() -> Self {
        DataBus {
            busy_until: 0,
            last_dir: None,
            last_rank: None,
        }
    }

    /// Earliest cycle a burst of `dir` from `rank` may start.
    fn earliest_start(&self, dir: Dir, rank: u32, turnaround: u64, rank_switch: u64) -> u64 {
        let mut start = self.busy_until;
        if let Some(last) = self.last_dir {
            if last != dir {
                start += turnaround;
            }
        }
        if let Some(last) = self.last_rank {
            if last != rank {
                start += rank_switch;
            }
        }
        start
    }

    fn reserve(&mut self, start: u64, end: u64, dir: Dir, rank: u32) {
        debug_assert!(start >= self.busy_until, "data bus double-booked");
        self.busy_until = end;
        self.last_dir = Some(dir);
        self.last_rank = Some(rank);
    }
}

/// An issued read waiting for its data burst to finish.
#[derive(Debug, Clone, Copy)]
struct InflightRead {
    id: RequestId,
    done_at: u64,
    enqueued_at: u64,
}

/// One channel's controller, ranks and queues.
#[derive(Debug)]
pub(crate) struct Channel {
    /// This channel's index, stamped into every trace event it emits.
    index: u8,
    pub ranks: Vec<Rank>,
    pub read_q: Vec<QueueEntry>,
    pub write_q: Vec<QueueEntry>,
    inflight_reads: Vec<InflightRead>,
    inflight_write_ends: Vec<u64>,
    drain_mode: bool,
    bus: DataBus,
    next_col_allowed: u64,
    checker: Option<ProtocolChecker>,
    /// Age-based starvation escalation: when the oldest queued request's
    /// age exceeds `cfg.starvation_escalation_age`, the scheduler pins the
    /// active queue to that request's queue and stops serving row-buffer
    /// hits that keep its bank occupied until it retires. `(is_write,
    /// location)` of the escalated entry; recomputed every cycle.
    escalated: Option<(bool, Location)>,
    /// Recovery pipeline for detected command faults (C/A parity, replay,
    /// health scoreboard). `None` reproduces the legacy behaviour:
    /// dropped commands are silently lost and mask faults degrade to
    /// full-row activations immediately.
    recovery: Option<RecoveryEngine>,
}

impl Channel {
    pub fn new(cfg: &DramConfig, channel_index: usize) -> Self {
        let nranks = cfg.geometry.ranks_per_channel;
        let stagger = cfg.timing.trefi / (nranks as u64).max(1);
        let ranks = (0..nranks)
            .map(|r| {
                // Stagger refreshes across ranks and channels so they do not
                // all stall the system simultaneously.
                let offset = (r as u64 + channel_index as u64) * stagger / 2 + cfg.timing.trefi;
                Rank::new(cfg.geometry.banks_per_rank, offset)
            })
            .collect();
        Channel {
            index: channel_index as u8,
            ranks,
            read_q: Vec::with_capacity(cfg.queues.read_capacity),
            write_q: Vec::with_capacity(cfg.queues.write_capacity),
            inflight_reads: Vec::new(),
            inflight_write_ends: Vec::new(),
            drain_mode: false,
            bus: DataBus::new(),
            next_col_allowed: 0,
            escalated: None,
            recovery: cfg.recovery.map(RecoveryEngine::new),
            checker: cfg.verify_protocol.then(|| {
                ProtocolChecker::new(
                    cfg.timing,
                    cfg.geometry.ranks_per_channel,
                    cfg.geometry.banks_per_rank,
                    cfg.scheme.relaxed_act_timing,
                    cfg.timing
                        .burst_cycles
                        .saturating_mul(cfg.scheme.burst_multiplier),
                )
            }),
        }
    }

    /// Feeds the protocol checker; a violation is a simulator bug, surfaced
    /// to the caller as an error rather than a panic so embedders (and the
    /// fault-injection harness) can decide how to react.
    fn verify_cmd(
        checker: &mut Option<ProtocolChecker>,
        now: u64,
        command: DramCommand,
    ) -> Result<(), ProtocolError> {
        match checker {
            Some(checker) => {
                let _prof = sim_prof::span!("dram.checker");
                checker.observe(now, command)
            }
            None => Ok(()),
        }
    }

    /// Recovery counters accumulated by this channel's engine (zero when
    /// recovery is disabled).
    pub(crate) fn recovery_counts(&self) -> sim_recover::RecoveryCounts {
        self.recovery
            .as_ref()
            .map(|r| r.counts())
            .unwrap_or_default()
    }

    /// Runs a detected (C/A-parity) command fault at `loc` through the
    /// recovery engine. Returns `true` when a replay was scheduled — the
    /// bank is held closed until the alert window elapses and the queue
    /// entry retries afterwards — and `false` when the retry budget is
    /// exhausted and the caller must take its terminal fallback. Only
    /// called with recovery enabled.
    fn recover_detected_fault(&mut self, now: u64, loc: Location, o: &mut DramObs) -> bool {
        let Some(rec) = self.recovery.as_mut() else {
            return false;
        };
        let ch = self.index;
        match rec.on_fault(now, loc.rank, loc.bank, loc.row) {
            RecoveryVerdict::Replay { until, attempt } => {
                o.obs.emit(|| TraceEvent::ParityAlert {
                    cycle: now,
                    channel: ch,
                    rank: loc.rank as u8,
                    bank: loc.bank as u8,
                });
                o.obs.emit(|| TraceEvent::CommandReplay {
                    cycle: now,
                    channel: ch,
                    rank: loc.rank as u8,
                    bank: loc.bank as u8,
                    attempt,
                });
                // Tell the independent checker about the hold so it can
                // reject a premature replay as a protocol violation.
                if let Some(checker) = self.checker.as_mut() {
                    checker.record_alert(loc.rank, loc.bank, until);
                }
                true
            }
            RecoveryVerdict::Exhausted => {
                o.obs.emit(|| TraceEvent::RecoveryExhausted {
                    cycle: now,
                    channel: ch,
                    rank: loc.rank as u8,
                    bank: loc.bank as u8,
                    row: loc.row,
                });
                false
            }
        }
    }

    /// Whether a request of this kind can currently be accepted.
    pub fn can_accept(&self, kind: ReqKind, cfg: &DramConfig) -> bool {
        match kind {
            ReqKind::Read => self.read_q.len() < cfg.queues.read_capacity,
            ReqKind::Write => self.write_q.len() < cfg.queues.write_capacity,
        }
    }

    /// Enqueues a decoded request; the caller has checked `can_accept`.
    pub fn enqueue(
        &mut self,
        req: MemRequest,
        loc: Location,
        now: u64,
        cfg: &DramConfig,
        o: &mut DramObs,
    ) {
        let ch = self.index;
        // CKE is a dedicated pin: arriving work wakes the rank without
        // consuming a command-bus slot, paying tXP before the first command.
        if self.ranks[loc.rank as usize].powered_down {
            o.obs.emit(|| TraceEvent::PowerUp {
                cycle: now,
                channel: ch,
                rank: loc.rank as u8,
            });
        }
        self.ranks[loc.rank as usize].exit_power_down(now, &cfg.timing);
        let entry = QueueEntry {
            req,
            loc,
            enqueued_at: now,
            classified: false,
        };
        match req.kind {
            ReqKind::Read => {
                self.read_q.push(entry);
                o.obs
                    .registry
                    .observe(o.read_q_occupancy, self.read_q.len() as u64);
            }
            ReqKind::Write => {
                self.write_q.push(entry);
                o.obs
                    .registry
                    .observe(o.write_q_occupancy, self.write_q.len() as u64);
            }
        }
    }

    /// Number of requests queued or in flight (including write bursts still
    /// on the data bus).
    pub fn pending(&self) -> usize {
        self.read_q.len()
            + self.write_q.len()
            + self.inflight_reads.len()
            + self.inflight_write_ends.len()
    }

    /// Advances the channel one memory cycle. Completed read ids are pushed
    /// onto `completed`. `faults` is the optional injector shared by all
    /// channels; `None` (the default) leaves every decision untouched.
    ///
    /// Returns `Err` if the protocol checker (when enabled) rejects a command
    /// the scheduler issued this cycle — always a simulator bug.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        energy: &mut EnergyAccounting,
        o: &mut DramObs,
        completed: &mut Vec<RequestId>,
        faults: &mut Option<FaultInjector>,
    ) -> Result<(), ProtocolError> {
        let ch = self.index;
        // Refresh stress shortens the effective refresh interval.
        let trefi = faults
            .as_ref()
            .map_or(cfg.timing.trefi, |f| f.effective_trefi(cfg.timing.trefi));
        // 1. Housekeeping: refresh expiry, auto-precharges, data completions.
        let fsm_prof = sim_prof::span!("dram.bank_fsm");
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            rank.finish_refresh_if_done(now);
            rank.update_refresh_due(now, trefi);
            for (b, bank) in rank.banks.iter_mut().enumerate() {
                if bank.tick_auto_precharge(now, &cfg.timing) {
                    stats.precharges += 1;
                    o.obs.emit(|| TraceEvent::Precharge {
                        cycle: now,
                        channel: ch,
                        rank: r as u8,
                        bank: b as u8,
                    });
                    Self::verify_cmd(
                        &mut self.checker,
                        now,
                        DramCommand::Precharge {
                            rank: r as u32,
                            bank: b as u32,
                        },
                    )?;
                }
            }
        }
        self.complete_transfers(now, stats, o, completed);
        drop(fsm_prof);

        // 2. Write-drain hysteresis (48/16 watermarks) plus opportunistic
        //    draining when no reads are waiting.
        if !self.drain_mode && self.write_q.len() >= cfg.queues.write_high_watermark {
            self.drain_mode = true;
            stats.drain_entries += 1;
            o.obs.emit(|| TraceEvent::DrainEnter {
                cycle: now,
                channel: ch,
            });
        } else if self.drain_mode && self.write_q.len() <= cfg.queues.write_low_watermark {
            self.drain_mode = false;
        }

        // 2b. Age-based starvation escalation (recomputed every cycle so it
        //     clears as soon as the starved request retires).
        self.update_escalation(now, cfg);

        // 3. One command-bus slot per cycle, in priority order.
        let sched_prof = sim_prof::span!("dram.sched_pick");
        let issued = self.refresh_commands(now, cfg, stats, energy, o)?
            || self.issue_column(now, cfg, stats, energy, o, faults)?
            || self.issue_activate(now, cfg, stats, energy, o, faults)?
            || self.issue_precharge_for_pending(now, cfg, stats, o)?
            || self.issue_idle_close(now, cfg, stats, o)?;
        let _ = issued;
        drop(sched_prof);

        // 4. Power-down entry for idle ranks (relaxed policy only; CKE is
        //    not a command-bus command).
        if matches!(cfg.policy, PagePolicy::RelaxedClosePage) {
            self.enter_power_down_where_idle(now, o);
        }

        // 5. Background energy, attributed to the global (channel-major)
        //    rank index so per-rank residency ledgers line up across
        //    channels.
        let rank_base = self.ranks.len() * self.index as usize;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            let state = rank.tick_power_state();
            energy.background_cycle(rank_base + r, state);
            if o.power_telemetry {
                energy.bank_residency(rank_base + r, rank.open_bank_mask());
            }
        }
        if now < self.bus.busy_until {
            stats.bus_busy_cycles += 1;
        }
        Ok(())
    }

    fn complete_transfers(
        &mut self,
        now: u64,
        stats: &mut DramStats,
        o: &mut DramObs,
        completed: &mut Vec<RequestId>,
    ) {
        let ch = self.index;
        let mut i = 0;
        while i < self.inflight_reads.len() {
            if self.inflight_reads[i].done_at <= now {
                let fin = self.inflight_reads.swap_remove(i);
                let latency = fin.done_at - fin.enqueued_at;
                stats.reads_completed += 1;
                stats.read_latency_sum += latency;
                o.obs.registry.observe(o.read_latency, latency);
                o.obs.emit(|| TraceEvent::ReadComplete {
                    cycle: now,
                    channel: ch,
                    latency,
                });
                completed.push(fin.id);
            } else {
                i += 1;
            }
        }
        let before = self.inflight_write_ends.len();
        self.inflight_write_ends.retain(|&end| end > now);
        stats.writes_completed += (before - self.inflight_write_ends.len()) as u64;
    }

    /// Whether any queued request targets rank `r`.
    fn rank_has_queued_work(&self, r: usize) -> bool {
        self.read_q
            .iter()
            .chain(self.write_q.iter())
            .any(|e| e.loc.rank as usize == r)
    }

    /// Whether outstanding refresh debt must forcibly close rank `r` now
    /// (debt beyond the postpone allowance).
    fn refresh_forced(&self, r: usize, cfg: &DramConfig) -> bool {
        self.ranks[r].refresh_debt > cfg.refresh_postpone_max
    }

    /// Refresh handling. Debt beyond the postpone allowance forcibly closes
    /// the rank; smaller debt is repaid opportunistically whenever the rank
    /// has no queued work.
    fn refresh_commands(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        energy: &mut EnergyAccounting,
        o: &mut DramObs,
    ) -> Result<bool, ProtocolError> {
        let ch = self.index;
        for r in 0..self.ranks.len() {
            if self.ranks[r].refresh_debt == 0
                || !matches!(self.ranks[r].refresh, RefreshState::Idle)
            {
                continue;
            }
            let forced = self.refresh_forced(r, cfg);
            let opportunistic = !forced && !self.rank_has_queued_work(r);
            if !forced && !opportunistic {
                continue;
            }
            let rank = &mut self.ranks[r];
            if rank.powered_down {
                o.obs.emit(|| TraceEvent::PowerUp {
                    cycle: now,
                    channel: ch,
                    rank: r as u8,
                });
            }
            rank.exit_power_down(now, &cfg.timing);
            if now < rank.available_at {
                continue;
            }
            if rank.ready_for_refresh(now) {
                rank.start_refresh(now, &cfg.timing);
                stats.refreshes += 1;
                energy.refresh();
                o.obs.emit(|| TraceEvent::Refresh {
                    cycle: now,
                    channel: ch,
                    rank: r as u8,
                });
                Self::verify_cmd(
                    &mut self.checker,
                    now,
                    DramCommand::Refresh { rank: r as u32 },
                )?;
                return Ok(true);
            }
            if forced {
                // Close one open bank whose precharge is legal.
                for (b, bank) in rank.banks.iter_mut().enumerate() {
                    if bank.is_open() && now >= bank.ready_for_precharge_at {
                        bank.precharge(now, &cfg.timing);
                        stats.precharges += 1;
                        o.obs.emit(|| TraceEvent::Precharge {
                            cycle: now,
                            channel: ch,
                            rank: r as u8,
                            bank: b as u8,
                        });
                        Self::verify_cmd(
                            &mut self.checker,
                            now,
                            DramCommand::Precharge {
                                rank: r as u32,
                                bank: b as u32,
                            },
                        )?;
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// The oldest entry across both queues, if any. Queues are
    /// order-preserving `Vec`s, so each queue's front is its oldest entry.
    fn oldest_entry(&self) -> Option<(bool, &QueueEntry)> {
        match (self.read_q.first(), self.write_q.first()) {
            (Some(r), Some(w)) => {
                if r.enqueued_at <= w.enqueued_at {
                    Some((false, r))
                } else {
                    Some((true, w))
                }
            }
            (Some(r), None) => Some((false, r)),
            (None, Some(w)) => Some((true, w)),
            (None, None) => None,
        }
    }

    /// Address/bank trail of the oldest queued request, for liveness
    /// diagnostics.
    pub(crate) fn oldest_trail(&self, channel: u32) -> Option<RequestTrail> {
        self.oldest_entry().map(|(is_write, e)| {
            let open_row = self.ranks[e.loc.rank as usize].banks[e.loc.bank as usize]
                .open
                .map(|o| o.row);
            RequestTrail {
                channel,
                rank: e.loc.rank,
                bank: e.loc.bank,
                row: e.loc.row,
                addr: e.req.addr.raw(),
                is_write,
                enqueued_at: e.enqueued_at,
                open_row,
            }
        })
    }

    /// Recomputes the escalation slot: the oldest queued request, when its
    /// age exceeds the configured bound. Cleared automatically once the
    /// request retires (it leaves its queue and a younger entry becomes the
    /// oldest).
    fn update_escalation(&mut self, now: u64, cfg: &DramConfig) {
        self.escalated = None;
        let bound = cfg.starvation_escalation_age;
        if bound == 0 {
            return;
        }
        if let Some((is_write, e)) = self.oldest_entry() {
            if now.saturating_sub(e.enqueued_at) > bound {
                self.escalated = Some((is_write, e.loc));
            }
        }
    }

    /// Queue the scheduler currently serves: writes in drain mode or when no
    /// reads wait; reads otherwise. An escalated (starved) request overrides
    /// both rules: its queue stays active until it retires.
    fn active_is_write(&self) -> bool {
        if let Some((is_write, _)) = self.escalated {
            return is_write;
        }
        self.drain_mode || (self.read_q.is_empty() && !self.write_q.is_empty())
    }

    fn active_queue(&self, is_write: bool) -> &[QueueEntry] {
        if is_write {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    /// Whether another request in the *currently served* queue waits for
    /// `bank` with a different row (drives the row-hit fairness cap). Only
    /// the active queue counts: a conflict that cannot be scheduled this
    /// phase must not be able to stall the bank forever.
    fn conflict_waiting(&self, loc: &Location, open_row: u32, in_writes: bool) -> bool {
        let queue = if in_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        queue
            .iter()
            .any(|e| e.loc.rank == loc.rank && e.loc.bank == loc.bank && e.loc.row != open_row)
    }

    /// FR-FCFS step one: serve the oldest request that hits an open row —
    /// from the active queue first, then opportunistically from the other
    /// queue (a row already open for a drained write is cheapest to finish
    /// now rather than re-activate later).
    fn issue_column(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        energy: &mut EnergyAccounting,
        o: &mut DramObs,
        faults: &mut Option<FaultInjector>,
    ) -> Result<bool, ProtocolError> {
        let active_is_write = self.active_is_write();
        Ok(
            self.issue_column_from(now, cfg, stats, energy, o, faults, active_is_write)?
                || self.issue_column_from(now, cfg, stats, energy, o, faults, !active_is_write)?,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_column_from(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        energy: &mut EnergyAccounting,
        o: &mut DramObs,
        faults: &mut Option<FaultInjector>,
        is_write: bool,
    ) -> Result<bool, ProtocolError> {
        if now < self.next_col_allowed {
            return Ok(false);
        }
        let burst = cfg
            .timing
            .burst_cycles
            .saturating_mul(cfg.scheme.burst_multiplier);
        let queue = if is_write {
            &self.write_q
        } else {
            &self.read_q
        };
        let mut chosen: Option<usize> = None;
        for (i, entry) in queue.iter().enumerate() {
            if let Some(rec) = &self.recovery {
                // The bank is parked inside a replay hold-off window.
                if rec.is_blocked(now, entry.loc.rank, entry.loc.bank) {
                    continue;
                }
            }
            let rank = &self.ranks[entry.loc.rank as usize];
            if now < rank.available_at {
                continue;
            }
            let bank = &rank.banks[entry.loc.bank as usize];
            let Some(open) = bank.open else { continue };
            if open.row != entry.loc.row {
                continue;
            }
            let covered = if is_write {
                entry.req.mask.is_subset_of(open.coverage)
            } else {
                open.coverage.is_full()
            };
            if !covered {
                continue;
            }
            if open.hits_served >= cfg.row_hit_cap
                && self.conflict_waiting(&entry.loc, open.row, is_write)
            {
                continue; // fairness cap: let the precharge path reclaim the bank
            }
            // Escalation: a starved request owns its bank — stop feeding it
            // row hits (from either queue) so the precharge path can reclaim
            // it. The row-hit cap alone cannot guarantee this because its
            // conflict check only sees the active queue.
            if let Some((_, starved)) = self.escalated {
                if starved.rank == entry.loc.rank
                    && starved.bank == entry.loc.bank
                    && starved.row != open.row
                {
                    continue;
                }
            }
            if now < bank.ready_for_column_at {
                continue;
            }
            let (dir, lat) = if is_write {
                (Dir::Write, cfg.timing.wl)
            } else {
                (Dir::Read, cfg.timing.tcas)
            };
            let start = now + lat;
            if start
                < self
                    .bus
                    .earliest_start(dir, entry.loc.rank, cfg.timing.twtr, cfg.timing.trtrs)
            {
                continue;
            }
            chosen = Some(i);
            break;
        }
        let Some(i) = chosen else { return Ok(false) };
        let fault_loc = if is_write {
            self.write_q[i].loc
        } else {
            self.read_q[i].loc
        };
        // Injected bus fault: the command is lost. The queue entry survives
        // and retries on a later cycle; the command-bus slot is consumed.
        if let Some(inj) = faults.as_mut() {
            if inj.drop_command() {
                if self.recovery.is_some() {
                    // C/A parity catches the loss: the DRAM blocks the
                    // command and asserts ALERT_n after the alert latency.
                    // Exhausted budgets fall back to a plain reschedule —
                    // the entry stays queued either way.
                    inj.record_fault_detected();
                    let _ = self.recover_detected_fault(now, fault_loc, o);
                }
                return Ok(true);
            }
        }
        let mut entry = if is_write {
            self.write_q.remove(i)
        } else {
            self.read_q.remove(i)
        };
        let rank_idx = entry.loc.rank as usize;
        let bank = &mut self.ranks[rank_idx].banks[entry.loc.bank as usize];
        if !entry.classified {
            entry.classified = true;
            if is_write {
                stats.write.hits += 1;
            } else {
                stats.read.hits += 1;
            }
        }
        let ch = self.index;
        let loc = entry.loc;
        if is_write {
            let end = bank.column_write(now, burst, &cfg.timing);
            self.bus
                .reserve(now + cfg.timing.wl, end, Dir::Write, entry.loc.rank);
            energy.write_line(cfg.scheme.write_io_fraction(entry.req.mask));
            self.inflight_write_ends.push(end);
            o.obs.emit(|| TraceEvent::Write {
                cycle: now,
                channel: ch,
                rank: loc.rank as u8,
                bank: loc.bank as u8,
                row: loc.row,
            });
            Self::verify_cmd(
                &mut self.checker,
                now,
                DramCommand::Write {
                    rank: entry.loc.rank,
                    bank: entry.loc.bank,
                },
            )?;
        } else {
            let end = bank.column_read(now, burst, &cfg.timing);
            self.bus
                .reserve(now + cfg.timing.tcas, end, Dir::Read, entry.loc.rank);
            energy.read_line();
            self.inflight_reads.push(InflightRead {
                id: entry.req.id,
                done_at: end,
                enqueued_at: entry.enqueued_at,
            });
            o.obs.emit(|| TraceEvent::Read {
                cycle: now,
                channel: ch,
                rank: loc.rank as u8,
                bank: loc.bank as u8,
                row: loc.row,
            });
            Self::verify_cmd(
                &mut self.checker,
                now,
                DramCommand::Read {
                    rank: entry.loc.rank,
                    bank: entry.loc.bank,
                },
            )?;
        }
        if matches!(cfg.policy, PagePolicy::RestrictedClosePage) {
            bank.arm_auto_precharge();
        }
        if let Some(rec) = self.recovery.as_mut() {
            rec.on_success(loc.rank, loc.bank, loc.row);
        }
        self.next_col_allowed = now + cfg.timing.tccd.max(burst);
        Ok(true)
    }

    /// The PRA mask for activating `loc.row`: the OR of all queued same-row
    /// write masks, widened to full if any queued read also wants the row.
    fn gather_write_mask(&self, loc: &Location) -> WordMask {
        let same_row = |e: &&QueueEntry| {
            e.loc.rank == loc.rank && e.loc.bank == loc.bank && e.loc.row == loc.row
        };
        if self.read_q.iter().find(same_row).is_some() {
            return WordMask::FULL;
        }
        self.write_q
            .iter()
            .filter(same_row)
            .fold(WordMask::EMPTY, |m, e| m | e.req.mask)
    }

    /// FR-FCFS step two: activate for the oldest request whose bank is closed.
    fn issue_activate(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        energy: &mut EnergyAccounting,
        o: &mut DramObs,
        faults: &mut Option<FaultInjector>,
    ) -> Result<bool, ProtocolError> {
        let is_write = self.active_is_write();
        let queue = if is_write {
            &self.write_q
        } else {
            &self.read_q
        };
        let mut chosen: Option<(usize, WordMask, u32)> = None;
        for (i, entry) in queue.iter().enumerate() {
            if let Some(rec) = &self.recovery {
                // The bank is parked inside a replay hold-off window.
                if rec.is_blocked(now, entry.loc.rank, entry.loc.bank) {
                    continue;
                }
            }
            let rank = &self.ranks[entry.loc.rank as usize];
            if !matches!(rank.refresh, RefreshState::Idle)
                || now < rank.available_at
                || self.refresh_forced(entry.loc.rank as usize, cfg)
            {
                continue;
            }
            let bank = &rank.banks[entry.loc.bank as usize];
            if bank.is_open() || now < bank.ready_for_activate_at {
                continue;
            }
            let (coverage, mats) = if is_write {
                let mask = self.gather_write_mask(&entry.loc);
                debug_assert!(!mask.is_empty());
                if mask.is_full() {
                    // Covers queued reads too; activate at read granularity.
                    (
                        WordMask::FULL,
                        cfg.scheme
                            .read_act_mats
                            .max(cfg.scheme.write_act_mats(mask)),
                    )
                } else {
                    (
                        cfg.scheme.write_coverage(mask),
                        cfg.scheme.write_act_mats(mask),
                    )
                }
            } else {
                (WordMask::FULL, cfg.scheme.read_act_mats)
            };
            let weight = cfg.scheme.act_timing_weight(mats);
            if !rank.can_activate(now, weight, &cfg.timing) {
                continue;
            }
            chosen = Some((i, coverage, mats));
            break;
        }
        let Some((i, mut coverage, mut mats)) = chosen else {
            return Ok(false);
        };
        let loc = self.active_queue(is_write)[i].loc;
        let full_mats = cfg
            .scheme
            .read_act_mats
            .max(cfg.scheme.write_act_mats(WordMask::FULL));
        // Health scoreboard: a demoted row must open the full row (a
        // full-row ACT carries no mask, so there is nothing left to
        // corrupt); an elapsed probation re-promotes the row.
        if !coverage.is_full() && self.recovery.is_some() {
            let standing = self.recovery.as_mut().map_or(RowStanding::Healthy, |rec| {
                rec.row_standing(now, loc.rank, loc.bank, loc.row)
            });
            match standing {
                RowStanding::Demoted => {
                    coverage = WordMask::FULL;
                    mats = full_mats;
                    // The wider activation carries more timing weight; if
                    // it is no longer legal this cycle, give the slot up
                    // and retry.
                    let weight = cfg.scheme.act_timing_weight(mats);
                    if !self.ranks[loc.rank as usize].can_activate(now, weight, &cfg.timing) {
                        return Ok(true);
                    }
                }
                RowStanding::Promoted => {
                    let ch = self.index;
                    o.obs.emit(|| TraceEvent::RowPromote {
                        cycle: now,
                        channel: ch,
                        rank: loc.rank as u8,
                        bank: loc.bank as u8,
                        row: loc.row,
                    });
                }
                RowStanding::Healthy => {}
            }
        }
        // The mask-transfer cycle is paid for the coverage the controller
        // *sent*, before any fault handling — a corrupted transfer still
        // cost its cycle.
        let extra_base = cfg.scheme.act_extra_cycles(coverage);
        if let Some(inj) = faults.as_mut() {
            // Injected bus fault: the ACT is lost; retry on a later cycle.
            if inj.drop_command() {
                if self.recovery.is_some() {
                    // Detected by C/A parity: replay after the alert window
                    // (exhausted budgets reschedule like the legacy path).
                    inj.record_fault_detected();
                    let _ = self.recover_detected_fault(now, loc, o);
                }
                return Ok(true);
            }
            // Injected mask-transfer upset (partial activations only — a
            // full-row ACT carries no mask). A single-bit flip trips the
            // chip's parity check; an even number of flips escapes it.
            if !coverage.is_full() {
                let site = FaultSite {
                    rank: loc.rank,
                    bank: loc.bank,
                    row: loc.row,
                };
                if let Some(fault) = inj.corrupt_mask_at(site, coverage) {
                    if fault.escaped {
                        // Parity still matches: the chip cannot detect the
                        // upset and activates with silently wrong coverage.
                        // (An empty corrupted mask cannot activate at all;
                        // keep the sent coverage but still count the escape.)
                        stats.parity_escapes += 1;
                        let ch = self.index;
                        o.obs.emit(|| TraceEvent::ParityEscape {
                            cycle: now,
                            channel: ch,
                            rank: loc.rank as u8,
                            bank: loc.bank as u8,
                            row: loc.row,
                        });
                        if !fault.mask.is_empty() {
                            coverage = fault.mask;
                            mats = cfg.scheme.write_act_mats(fault.mask);
                            let weight = cfg.scheme.act_timing_weight(mats);
                            if !self.ranks[loc.rank as usize].can_activate(now, weight, &cfg.timing)
                            {
                                return Ok(true);
                            }
                        }
                    } else if self.recovery.is_some() {
                        // Detected: the chip blocks the ACT and alerts. The
                        // engine either schedules a replay (the entry stays
                        // queued and the bank is held) or declares the
                        // budget exhausted.
                        inj.record_fault_detected();
                        if self.recover_detected_fault(now, loc, o) {
                            return Ok(true);
                        }
                        // Terminal fallback: a fail-safe full-row ACT now,
                        // and a scoreboard demotion so later activations of
                        // this row skip the mask transfer entirely.
                        inj.record_fault_degraded();
                        stats.degraded_activations += 1;
                        if let Some(rec) = self.recovery.as_mut() {
                            rec.demote_row(now, loc.rank, loc.bank, loc.row);
                        }
                        let ch = self.index;
                        o.obs.emit(|| TraceEvent::RowDemote {
                            cycle: now,
                            channel: ch,
                            rank: loc.rank as u8,
                            bank: loc.bank as u8,
                            row: loc.row,
                        });
                        coverage = WordMask::FULL;
                        mats = full_mats;
                        let weight = cfg.scheme.act_timing_weight(mats);
                        if !self.ranks[loc.rank as usize].can_activate(now, weight, &cfg.timing) {
                            return Ok(true);
                        }
                    } else {
                        // Legacy pipeline (recovery off): the parity check
                        // catches the flip and the controller degrades to a
                        // fail-safe full-row activation immediately rather
                        // than trusting either mask (see
                        // core::pra::MaskTransfer for the chip-side model).
                        inj.record_mask_fault_handled();
                        stats.degraded_activations += 1;
                        coverage = WordMask::FULL;
                        mats = full_mats;
                        let weight = cfg.scheme.act_timing_weight(mats);
                        if !self.ranks[loc.rank as usize].can_activate(now, weight, &cfg.timing) {
                            return Ok(true);
                        }
                    }
                }
            }
        }
        let queue = if is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        let entry = &mut queue[i];
        if !entry.classified {
            entry.classified = true;
            if is_write {
                stats.write.misses += 1;
            } else {
                stats.read.misses += 1;
            }
        }
        let stretch = faults.as_mut().map_or(0, FaultInjector::stretch_command);
        let extra = extra_base + stretch;
        let weight = cfg.scheme.act_timing_weight(mats);
        let rank = &mut self.ranks[loc.rank as usize];
        rank.banks[loc.bank as usize].activate(now, loc.row, coverage, mats, extra, &cfg.timing);
        rank.record_activation(now, weight, cfg.scheme.relaxed_act_timing, &cfg.timing);
        stats.record_activation(mats, !is_write);
        energy.activation_mats(mats);
        o.obs.registry.observe(o.act_mats, mats as u64);
        let ch = self.index;
        o.obs.emit(|| TraceEvent::Activate {
            cycle: now,
            channel: ch,
            rank: loc.rank as u8,
            bank: loc.bank as u8,
            row: loc.row,
            mats,
            mask: coverage.bits(),
        });
        Self::verify_cmd(
            &mut self.checker,
            now,
            DramCommand::Activate {
                rank: loc.rank,
                bank: loc.bank,
                row: loc.row,
                mats,
                extra_cycles: extra,
            },
        )?;
        if let Some(rec) = self.recovery.as_mut() {
            rec.on_success(loc.rank, loc.bank, loc.row);
        }
        Ok(true)
    }

    /// FR-FCFS step three: precharge a bank blocking the oldest conflicting
    /// or falsely-hitting request.
    fn issue_precharge_for_pending(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        o: &mut DramObs,
    ) -> Result<bool, ProtocolError> {
        let is_write = self.active_is_write();
        let queue = if is_write {
            &self.write_q
        } else {
            &self.read_q
        };
        let mut chosen: Option<(usize, bool, bool)> = None; // (idx, false_hit, capped)
        for (i, entry) in queue.iter().enumerate() {
            let rank = &self.ranks[entry.loc.rank as usize];
            if now < rank.available_at {
                continue;
            }
            let bank = &rank.banks[entry.loc.bank as usize];
            let Some(open) = bank.open else { continue };
            if now < bank.ready_for_precharge_at {
                continue;
            }
            if open.row != entry.loc.row {
                chosen = Some((i, false, open.hits_served >= cfg.row_hit_cap));
                break;
            }
            // Same row: a precharge is only warranted on insufficient
            // coverage (a PRA false row-buffer hit).
            let covered = if is_write {
                entry.req.mask.is_subset_of(open.coverage)
            } else {
                open.coverage.is_full()
            };
            if !covered {
                chosen = Some((i, true, false));
                break;
            }
        }
        let Some((i, false_hit, capped)) = chosen else {
            return Ok(false);
        };
        let queue = if is_write {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        let entry = &mut queue[i];
        if !entry.classified {
            entry.classified = true;
            let counters = if is_write {
                &mut stats.write
            } else {
                &mut stats.read
            };
            counters.misses += 1;
            if false_hit {
                counters.false_hits += 1;
            }
        }
        let loc = entry.loc;
        self.ranks[loc.rank as usize].banks[loc.bank as usize].precharge(now, &cfg.timing);
        stats.precharges += 1;
        if capped {
            stats.hit_cap_precharges += 1;
        }
        let ch = self.index;
        o.obs.emit(|| TraceEvent::Precharge {
            cycle: now,
            channel: ch,
            rank: loc.rank as u8,
            bank: loc.bank as u8,
        });
        Self::verify_cmd(
            &mut self.checker,
            now,
            DramCommand::Precharge {
                rank: loc.rank,
                bank: loc.bank,
            },
        )?;
        Ok(true)
    }

    /// Relaxed close-page: close rows no queued request can still hit.
    fn issue_idle_close(
        &mut self,
        now: u64,
        cfg: &DramConfig,
        stats: &mut DramStats,
        o: &mut DramObs,
    ) -> Result<bool, ProtocolError> {
        if !matches!(cfg.policy, PagePolicy::RelaxedClosePage) {
            return Ok(false);
        }
        let ch = self.index;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if now < rank.available_at {
                continue;
            }
            for (b, bank) in rank.banks.iter_mut().enumerate() {
                let Some(open) = bank.open else { continue };
                if now < bank.ready_for_precharge_at {
                    continue;
                }
                let wanted = self.read_q.iter().chain(self.write_q.iter()).any(|e| {
                    e.loc.rank as usize == r && e.loc.bank as usize == b && e.loc.row == open.row
                });
                if !wanted {
                    bank.precharge(now, &cfg.timing);
                    stats.precharges += 1;
                    o.obs.emit(|| TraceEvent::Precharge {
                        cycle: now,
                        channel: ch,
                        rank: r as u8,
                        bank: b as u8,
                    });
                    Self::verify_cmd(
                        &mut self.checker,
                        now,
                        DramCommand::Precharge {
                            rank: r as u32,
                            bank: b as u32,
                        },
                    )?;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn enter_power_down_where_idle(&mut self, now: u64, o: &mut DramObs) {
        let ch = self.index;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if rank.powered_down
                || rank.any_bank_open()
                || !matches!(rank.refresh, RefreshState::Idle)
                || rank.refresh_debt > 0
            {
                continue;
            }
            let busy = self
                .read_q
                .iter()
                .chain(self.write_q.iter())
                .any(|e| e.loc.rank as usize == r);
            if !busy {
                rank.enter_power_down();
                o.obs.emit(|| TraceEvent::PowerDown {
                    cycle: now,
                    channel: ch,
                    rank: r as u8,
                });
            }
        }
    }

    /// Largest possible activation the current scheme can request, used by
    /// assertions in tests.
    #[allow(dead_code)]
    pub(crate) fn max_mats() -> u32 {
        FULL_ROW_MATS
    }
}

fn save_queue_entry(w: &mut sim_snap::SnapWriter, e: &QueueEntry) {
    w.u64(e.req.id);
    w.bool(e.req.kind.is_read());
    w.u64(e.req.addr.raw());
    w.u8(e.req.mask.bits());
    w.usize(e.req.core);
    w.u32(e.loc.channel);
    w.u32(e.loc.rank);
    w.u32(e.loc.bank);
    w.u32(e.loc.row);
    w.u32(e.loc.column);
    w.u64(e.enqueued_at);
    w.bool(e.classified);
}

fn load_queue_entry(r: &mut sim_snap::SnapReader<'_>) -> Result<QueueEntry, sim_snap::SnapError> {
    let id = r.u64()?;
    let is_read = r.bool()?;
    let addr = mem_model::PhysAddr::new(r.u64()?);
    let mask = WordMask::from_bits(r.u8()?);
    let core = r.usize()?;
    let req = MemRequest {
        id,
        kind: if is_read {
            ReqKind::Read
        } else {
            ReqKind::Write
        },
        addr,
        mask,
        core,
    };
    let loc = Location {
        channel: r.u32()?,
        rank: r.u32()?,
        bank: r.u32()?,
        row: r.u32()?,
        column: r.u32()?,
    };
    Ok(QueueEntry {
        req,
        loc,
        enqueued_at: r.u64()?,
        classified: r.bool()?,
    })
}

impl sim_snap::SnapState for Channel {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("channel");
        w.seq(self.ranks.len());
        for rank in &self.ranks {
            rank.snap_save(w);
        }
        w.seq(self.read_q.len());
        for e in &self.read_q {
            save_queue_entry(w, e);
        }
        w.seq(self.write_q.len());
        for e in &self.write_q {
            save_queue_entry(w, e);
        }
        w.seq(self.inflight_reads.len());
        for f in &self.inflight_reads {
            w.u64(f.id);
            w.u64(f.done_at);
            w.u64(f.enqueued_at);
        }
        w.seq(self.inflight_write_ends.len());
        for &end in &self.inflight_write_ends {
            w.u64(end);
        }
        w.bool(self.drain_mode);
        w.u64(self.bus.busy_until);
        w.u8(match self.bus.last_dir {
            None => 0,
            Some(Dir::Read) => 1,
            Some(Dir::Write) => 2,
        });
        w.bool(self.bus.last_rank.is_some());
        if let Some(rank) = self.bus.last_rank {
            w.u32(rank);
        }
        w.u64(self.next_col_allowed);
        // `escalated` is recomputed at the start of every tick before any
        // scheduling decision reads it, so it is not serialized.
        w.bool(self.checker.is_some());
        if let Some(checker) = &self.checker {
            checker.snap_save(w);
        }
        w.bool(self.recovery.is_some());
        if let Some(rec) = &self.recovery {
            rec.snap_save(w);
        }
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("channel")?;
        let ranks = r.seq()?;
        if ranks != self.ranks.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "channel rank count mismatch: snapshot has {ranks}, config has {}",
                self.ranks.len()
            )));
        }
        for rank in &mut self.ranks {
            rank.snap_load(r)?;
        }
        let reads = r.seq()?;
        self.read_q.clear();
        for _ in 0..reads {
            let e = load_queue_entry(r)?;
            self.read_q.push(e);
        }
        let writes = r.seq()?;
        self.write_q.clear();
        for _ in 0..writes {
            let e = load_queue_entry(r)?;
            self.write_q.push(e);
        }
        let inflight = r.seq()?;
        self.inflight_reads.clear();
        for _ in 0..inflight {
            self.inflight_reads.push(InflightRead {
                id: r.u64()?,
                done_at: r.u64()?,
                enqueued_at: r.u64()?,
            });
        }
        let wends = r.seq()?;
        self.inflight_write_ends.clear();
        for _ in 0..wends {
            let end = r.u64()?;
            self.inflight_write_ends.push(end);
        }
        self.drain_mode = r.bool()?;
        self.bus.busy_until = r.u64()?;
        self.bus.last_dir = match r.u8()? {
            0 => None,
            1 => Some(Dir::Read),
            2 => Some(Dir::Write),
            tag => {
                return Err(sim_snap::SnapError::Decode(format!(
                    "unknown data-bus direction tag {tag}"
                )))
            }
        };
        self.bus.last_rank = if r.bool()? { Some(r.u32()?) } else { None };
        self.next_col_allowed = r.u64()?;
        self.escalated = None;
        let has_checker = r.bool()?;
        if has_checker != self.checker.is_some() {
            return Err(sim_snap::SnapError::Decode(format!(
                "protocol-checker presence mismatch: snapshot has {has_checker}, config has {}",
                self.checker.is_some()
            )));
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.snap_load(r)?;
        }
        let has_recovery = r.bool()?;
        if has_recovery != self.recovery.is_some() {
            return Err(sim_snap::SnapError::Decode(format!(
                "recovery-engine presence mismatch: snapshot has {has_recovery}, config has {}",
                self.recovery.is_some()
            )));
        }
        if let Some(rec) = self.recovery.as_mut() {
            rec.snap_load(r)?;
        }
        Ok(())
    }
}
