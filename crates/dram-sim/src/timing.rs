//! DDR3 timing parameters in memory-controller clock cycles.

use core::fmt;

/// DDR3 timing constraints, in command-clock cycles (1.25 ns at DDR3-1600).
///
/// Defaults ([`TimingParams::ddr3_1600_table3`]) follow the paper's Table 3;
/// parameters the paper does not list (`wl`, `trtp`, `twtr`, `txp`, `trtrs`,
/// `trefi`, `trfc`) use standard DDR3-1600 2 Gb values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Activate to internal read/write delay (tRCD).
    pub trcd: u64,
    /// Precharge period (tRP).
    pub trp: u64,
    /// CAS (read) latency (CL).
    pub tcas: u64,
    /// Write latency (CWL).
    pub wl: u64,
    /// Activate to precharge (tRAS).
    pub tras: u64,
    /// Write recovery time (tWR), end of write burst to precharge.
    pub twr: u64,
    /// Column-to-column delay (tCCD).
    pub tccd: u64,
    /// Activate-to-activate, different banks of a rank (tRRD).
    pub trrd: u64,
    /// Four-activation window (tFAW).
    pub tfaw: u64,
    /// Row cycle (tRC = tRAS + tRP).
    // sim-lint: allow(checker-parity): derived band (tRC = tRAS + tRP) validated by TimingParams::validate; tRAS and tRP are enforced individually
    pub trc: u64,
    /// Read to precharge (tRTP).
    pub trtp: u64,
    /// Write-to-read turnaround (tWTR), end of write burst to read command.
    pub twtr: u64,
    /// Power-down exit latency (tXP).
    // sim-lint: allow(checker-parity): CKE is a dedicated pin, not a command-bus command; rank::exit_power_down folds tXP into rank availability which the per-command rules then cover
    pub txp: u64,
    /// Rank-to-rank switching penalty on the data bus (tRTRS).
    pub trtrs: u64,
    /// Average refresh interval (tREFI).
    // sim-lint: allow(checker-parity): refresh scheduling policy (when to refresh), not per-command legality; the checker verifies tRFC around each REF it does see
    pub trefi: u64,
    /// Refresh cycle time (tRFC).
    pub trfc: u64,
    /// Data-bus cycles one BL8 transfer occupies (burst length 8 at double
    /// data rate = 4 clock cycles).
    pub burst_cycles: u64,
}

/// Error returned by [`TimingParams::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingError(String);

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timing: {}", self.0)
    }
}

impl std::error::Error for TimingError {}

impl TimingParams {
    /// The paper's Table 3 DDR3-1600 timing set.
    ///
    /// ```
    /// use dram_sim::TimingParams;
    /// let t = TimingParams::ddr3_1600_table3();
    /// assert_eq!(t.trc, t.tras + t.trp);
    /// ```
    pub const fn ddr3_1600_table3() -> Self {
        TimingParams {
            trcd: 11,
            trp: 11,
            tcas: 11,
            wl: 8,
            tras: 28,
            twr: 12,
            tccd: 4,
            trrd: 5,
            tfaw: 24,
            trc: 39,
            trtp: 6,
            twtr: 6,
            txp: 3,
            trtrs: 2,
            trefi: 6240, // 7.8 us / 1.25 ns
            trfc: 128,   // 160 ns / 1.25 ns (2 Gb device)
            burst_cycles: 4,
        }
    }

    /// A DDR4-2400 (8 Gb x8) parameter set, for exploring PRA beyond the
    /// paper's DDR3 baseline. Cycle counts at `tCK = 0.833 ns`; bank groups
    /// are not modelled, so the conservative same-group column spacing
    /// (tCCD_L) and activate spacing (tRRD_L) apply throughout.
    pub const fn ddr4_2400() -> Self {
        TimingParams {
            trcd: 16,
            trp: 16,
            tcas: 16,
            wl: 12,
            tras: 39,
            twr: 18,
            tccd: 6,
            trrd: 6,
            tfaw: 26,
            trc: 55,
            trtp: 9,
            twtr: 9,
            txp: 6,
            trtrs: 2,
            trefi: 9363, // 7.8 us / 0.833 ns
            trfc: 420,   // 350 ns / 0.833 ns (8 Gb device)
            burst_cycles: 4,
        }
    }

    /// Checks internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`TimingError`] if `tRC != tRAS + tRP`, any parameter that
    /// must be non-zero is zero, `tFAW < tRRD` (which would make the FAW
    /// window meaningless), or `tRAS < tRCD + CL` (a row could close before
    /// its first read completes).
    pub fn validate(&self) -> Result<(), TimingError> {
        if self.trc != self.tras + self.trp {
            return Err(TimingError(format!(
                "tRC ({}) must equal tRAS ({}) + tRP ({})",
                self.trc, self.tras, self.trp
            )));
        }
        for (name, v) in [
            ("tRCD", self.trcd),
            ("tRP", self.trp),
            ("CL", self.tcas),
            ("WL", self.wl),
            ("tRAS", self.tras),
            ("tWR", self.twr),
            ("tCCD", self.tccd),
            ("tRRD", self.trrd),
            ("tFAW", self.tfaw),
            ("tREFI", self.trefi),
            ("tRFC", self.trfc),
            ("burst", self.burst_cycles),
        ] {
            if v == 0 {
                return Err(TimingError(format!("{name} must be non-zero")));
            }
        }
        if self.tfaw < self.trrd {
            return Err(TimingError(format!(
                "tFAW ({}) must be at least tRRD ({})",
                self.tfaw, self.trrd
            )));
        }
        if self.tras < self.trcd + self.tcas {
            return Err(TimingError(format!(
                "tRAS ({}) must cover tRCD ({}) + CL ({}): a read issued at \
                 tRCD must complete before the row can close",
                self.tras, self.trcd, self.tcas
            )));
        }
        Ok(())
    }

    /// tRRD spacing after an activation of the given weight (fraction of a
    /// full-row activation), when the scheme relaxes activation timing.
    /// Proportional scaling, rounded up, never below one cycle.
    pub fn scaled_trrd(&self, weight: f64) -> u64 {
        debug_assert!(weight > 0.0 && weight <= 1.0);
        ((self.trrd as f64 * weight).ceil() as u64).max(1)
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600_table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_validates() {
        TimingParams::ddr3_1600_table3().validate().unwrap();
    }

    #[test]
    fn ddr4_validates() {
        TimingParams::ddr4_2400().validate().unwrap();
    }

    #[test]
    fn trc_consistency_enforced() {
        let mut t = TimingParams::ddr3_1600_table3();
        t.trc = 40;
        assert!(t.validate().is_err());
    }

    #[test]
    fn zero_param_rejected() {
        let mut t = TimingParams::ddr3_1600_table3();
        t.tccd = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn short_tras_rejected() {
        let mut t = TimingParams::ddr3_1600_table3();
        t.tras = t.trcd + t.tcas - 1; // 21 < 11 + 11
        t.trc = t.tras + t.trp;
        let err = t.validate().unwrap_err();
        assert!(err.to_string().contains("tRAS"), "{err}");
    }

    #[test]
    fn scaled_trrd_bounds() {
        let t = TimingParams::ddr3_1600_table3();
        assert_eq!(t.scaled_trrd(1.0), 5);
        assert_eq!(t.scaled_trrd(0.5), 3); // ceil(2.5)
        assert_eq!(t.scaled_trrd(0.125), 1);
        // Never zero even for vanishing weights.
        assert_eq!(t.scaled_trrd(0.01), 1);
    }
}
