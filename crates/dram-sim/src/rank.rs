//! Per-rank state: banks, weighted tRRD/tFAW tracking, refresh and
//! power-down.

use std::collections::VecDeque;

use dram_power::RankPowerState;

use crate::bank::Bank;
use crate::timing::TimingParams;

/// Refresh progress of a rank.
///
/// Refreshes owed but not yet issued are tracked as *debt*
/// ([`Rank::refresh_debt`]); DDR3/DDR4 allow postponing up to eight
/// refreshes, which the controller exploits via
/// [`crate::DramConfig::refresh_postpone_max`]. Whether outstanding debt
/// *forces* the rank closed is the controller's decision, not the rank's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshState {
    /// No REF command in flight (debt may still be outstanding).
    Idle,
    /// REF issued; the rank is busy until the stored cycle.
    InProgress {
        /// Cycle at which tRFC elapses.
        until: u64,
    },
}

/// One rank: a set of banks plus rank-wide timing and power state.
#[derive(Debug, Clone)]
pub struct Rank {
    /// The rank's banks.
    pub banks: Vec<Bank>,
    /// Sliding window of (cycle, weight) activations for tFAW. Weights are
    /// fractions of a full-row activation; the window constrains the sum to
    /// four, which degenerates to "four activations" for weight-1 schemes.
    faw_window: VecDeque<(u64, f64)>,
    /// Earliest cycle the next activate may issue (tRRD fence).
    pub next_act_allowed_at: u64,
    /// Cycle the next refresh falls due.
    pub next_refresh_at: u64,
    /// Refreshes owed (due but not yet issued).
    pub refresh_debt: u32,
    /// Refresh progress.
    pub refresh: RefreshState,
    /// Whether the rank sits in precharge power-down.
    pub powered_down: bool,
    /// Earliest cycle any command may issue (power-down exit, refresh).
    pub available_at: u64,
    /// Cycles spent in each power state, for cross-checking energy.
    pub state_cycles: [u64; 3],
}

impl Rank {
    /// Creates a rank with `banks` banks; the first refresh falls due at
    /// `first_refresh_at` (staggered across ranks by the caller).
    pub fn new(banks: usize, first_refresh_at: u64) -> Self {
        Rank {
            banks: (0..banks).map(|_| Bank::new()).collect(),
            faw_window: VecDeque::new(),
            next_act_allowed_at: 0,
            next_refresh_at: first_refresh_at,
            refresh_debt: 0,
            refresh: RefreshState::Idle,
            powered_down: false,
            available_at: 0,
            state_cycles: [0; 3],
        }
    }

    /// `true` if any bank holds an open row.
    pub fn any_bank_open(&self) -> bool {
        self.banks.iter().any(Bank::is_open)
    }

    /// Bitmask of banks holding an open row (bit `b` = bank `b` open).
    /// Supported geometries top out at 16 banks per rank, so `u16` covers
    /// every bank.
    pub fn open_bank_mask(&self) -> u16 {
        self.banks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_open())
            .fold(0u16, |mask, (i, _)| mask | (1 << i))
    }

    /// Checks whether an activation of the given weight may issue at `now`
    /// under tRRD and tFAW.
    pub fn can_activate(&self, now: u64, weight: f64, t: &TimingParams) -> bool {
        if now < self.next_act_allowed_at || now < self.available_at {
            return false;
        }
        let in_window: f64 = self
            .faw_window
            .iter()
            .filter(|&&(c, _)| c + t.tfaw > now)
            .map(|&(_, w)| w)
            .sum();
        in_window + weight <= 4.0 + 1e-9
    }

    /// Records an activation issued at `now` with the given weight, updating
    /// tRRD and tFAW bookkeeping. `relaxed` selects granularity-scaled tRRD.
    pub fn record_activation(&mut self, now: u64, weight: f64, relaxed: bool, t: &TimingParams) {
        let spacing = if relaxed {
            t.scaled_trrd(weight)
        } else {
            t.trrd
        };
        self.next_act_allowed_at = now + spacing;
        self.faw_window.push_back((now, weight));
        // Garbage-collect entries that can no longer affect any check.
        while let Some(&(c, _)) = self.faw_window.front() {
            if c + t.tfaw < now {
                self.faw_window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current background power state.
    pub fn power_state(&self) -> RankPowerState {
        if self.powered_down {
            RankPowerState::PowerDown
        } else if self.any_bank_open() || matches!(self.refresh, RefreshState::InProgress { .. }) {
            RankPowerState::ActiveStandby
        } else {
            RankPowerState::PrechargeStandby
        }
    }

    /// Accounts one cycle in the current power state.
    pub fn tick_power_state(&mut self) -> RankPowerState {
        let s = self.power_state();
        let idx = match s {
            RankPowerState::ActiveStandby => 0,
            RankPowerState::PrechargeStandby => 1,
            RankPowerState::PowerDown => 2,
        };
        self.state_cycles[idx] += 1;
        s
    }

    /// Enters precharge power-down. The caller guarantees the rank is idle.
    pub fn enter_power_down(&mut self) {
        debug_assert!(!self.any_bank_open());
        debug_assert!(matches!(self.refresh, RefreshState::Idle));
        self.powered_down = true;
    }

    /// Leaves power-down at `now`; commands become legal after tXP.
    pub fn exit_power_down(&mut self, now: u64, t: &TimingParams) {
        if self.powered_down {
            self.powered_down = false;
            self.available_at = self.available_at.max(now + t.txp);
        }
    }

    /// Accrues refresh debt for every elapsed tREFI interval.
    pub fn update_refresh_due(&mut self, now: u64, trefi: u64) {
        while now >= self.next_refresh_at {
            self.refresh_debt += 1;
            self.next_refresh_at += trefi;
        }
    }

    /// `true` when every bank is closed and ready for the REF command.
    pub fn ready_for_refresh(&self, now: u64) -> bool {
        self.banks
            .iter()
            .all(|b| !b.is_open() && now >= b.ready_for_activate_at)
            && now >= self.available_at
    }

    /// Issues the REF command at `now`, repaying one unit of debt.
    pub fn start_refresh(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(matches!(self.refresh, RefreshState::Idle));
        debug_assert!(self.refresh_debt > 0, "REF without debt");
        debug_assert!(self.ready_for_refresh(now));
        self.refresh = RefreshState::InProgress {
            until: now + t.trfc,
        };
        for bank in &mut self.banks {
            bank.ready_for_activate_at = bank.ready_for_activate_at.max(now + t.trfc);
        }
        self.available_at = self.available_at.max(now + t.trfc);
        self.refresh_debt -= 1;
    }

    /// Completes an in-progress refresh whose tRFC elapsed.
    pub fn finish_refresh_if_done(&mut self, now: u64) {
        if let RefreshState::InProgress { until } = self.refresh {
            if now >= until {
                self.refresh = RefreshState::Idle;
            }
        }
    }
}

impl sim_snap::SnapState for Rank {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("rank");
        w.seq(self.banks.len());
        for b in &self.banks {
            b.snap_save(w);
        }
        w.seq(self.faw_window.len());
        for &(cycle, weight) in &self.faw_window {
            w.u64(cycle);
            w.f64(weight);
        }
        w.u64(self.next_act_allowed_at);
        w.u64(self.next_refresh_at);
        w.u32(self.refresh_debt);
        match self.refresh {
            RefreshState::Idle => w.bool(false),
            RefreshState::InProgress { until } => {
                w.bool(true);
                w.u64(until);
            }
        }
        w.bool(self.powered_down);
        w.u64(self.available_at);
        for c in self.state_cycles {
            w.u64(c);
        }
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("rank")?;
        let banks = r.seq()?;
        if banks != self.banks.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "rank bank count mismatch: snapshot has {banks}, config has {}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.snap_load(r)?;
        }
        let faw = r.seq()?;
        self.faw_window.clear();
        for _ in 0..faw {
            let cycle = r.u64()?;
            let weight = r.f64()?;
            self.faw_window.push_back((cycle, weight));
        }
        self.next_act_allowed_at = r.u64()?;
        self.next_refresh_at = r.u64()?;
        self.refresh_debt = r.u32()?;
        self.refresh = if r.bool()? {
            RefreshState::InProgress { until: r.u64()? }
        } else {
            RefreshState::Idle
        };
        self.powered_down = r.bool()?;
        self.available_at = r.u64()?;
        for c in &mut self.state_cycles {
            *c = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_table3()
    }

    fn rank() -> Rank {
        Rank::new(8, 1000)
    }

    #[test]
    fn trrd_spacing_full_weight() {
        let mut r = rank();
        assert!(r.can_activate(0, 1.0, &t()));
        r.record_activation(0, 1.0, false, &t());
        assert!(!r.can_activate(4, 1.0, &t()));
        assert!(r.can_activate(5, 1.0, &t()));
    }

    #[test]
    fn trrd_relaxed_for_partial() {
        let mut r = rank();
        r.record_activation(0, 0.125, true, &t());
        // ceil(5 * 0.125) = 1 cycle spacing.
        assert!(r.can_activate(1, 0.125, &t()));
    }

    #[test]
    fn tfaw_limits_four_full_activations() {
        let mut r = rank();
        let tp = t();
        for i in 0..4u64 {
            let c = i * tp.trrd;
            assert!(r.can_activate(c, 1.0, &tp), "act {i}");
            r.record_activation(c, 1.0, false, &tp);
        }
        // Fifth full activation must wait for the window to slide.
        assert!(!r.can_activate(4 * tp.trrd, 1.0, &tp));
        assert!(r.can_activate(tp.tfaw + 1, 1.0, &tp));
    }

    #[test]
    fn tfaw_admits_many_partial_activations() {
        let mut r = rank();
        let tp = t();
        // Eight 1/8-weight activations sum to one full activation's worth;
        // all fit in one window.
        for i in 0..8u64 {
            assert!(r.can_activate(i, 0.125, &tp), "partial act {i}");
            r.record_activation(i, 0.125, true, &tp);
        }
        assert!(r.can_activate(8, 1.0, &tp), "still room for a full act");
    }

    #[test]
    fn power_states() {
        let mut r = rank();
        assert_eq!(r.power_state(), RankPowerState::PrechargeStandby);
        r.banks[0].activate(0, 1, mem_model::WordMask::FULL, 16, 0, &t());
        assert_eq!(r.power_state(), RankPowerState::ActiveStandby);
        r.banks[0].precharge(28, &t());
        r.enter_power_down();
        assert_eq!(r.power_state(), RankPowerState::PowerDown);
        r.exit_power_down(100, &t());
        assert_eq!(r.available_at, 103, "tXP exit latency");
        assert_eq!(r.power_state(), RankPowerState::PrechargeStandby);
    }

    #[test]
    fn refresh_cycle() {
        let mut r = rank();
        let tp = t();
        r.update_refresh_due(999, tp.trefi);
        assert_eq!(r.refresh_debt, 0);
        r.update_refresh_due(1000, tp.trefi);
        assert_eq!(r.refresh_debt, 1);
        assert_eq!(r.next_refresh_at, 1000 + tp.trefi);
        assert!(r.ready_for_refresh(1000));
        r.start_refresh(1000, &tp);
        assert_eq!(r.refresh_debt, 0);
        assert!(matches!(r.refresh, RefreshState::InProgress { until } if until == 1000 + tp.trfc));
        assert!(!r.can_activate(1001, 1.0, &tp), "rank busy during tRFC");
        r.finish_refresh_if_done(1000 + tp.trfc);
        assert_eq!(r.refresh, RefreshState::Idle);
    }

    #[test]
    fn debt_accrues_across_missed_intervals() {
        let mut r = rank();
        let tp = t();
        // Three intervals elapse unserviced.
        r.update_refresh_due(1000 + 2 * tp.trefi, tp.trefi);
        assert_eq!(r.refresh_debt, 3);
        // Repaying happens one REF at a time.
        r.start_refresh(1000 + 2 * tp.trefi, &tp);
        assert_eq!(r.refresh_debt, 2);
    }

    #[test]
    fn state_cycle_accounting() {
        let mut r = rank();
        r.tick_power_state();
        r.tick_power_state();
        assert_eq!(r.state_cycles[1], 2, "two precharge-standby cycles");
    }

    #[test]
    fn open_bank_mask_tracks_open_rows() {
        let mut r = rank();
        assert_eq!(r.open_bank_mask(), 0);
        r.banks[0].activate(0, 1, mem_model::WordMask::FULL, 16, 0, &t());
        r.banks[5].activate(0, 2, mem_model::WordMask::FULL, 16, 0, &t());
        assert_eq!(r.open_bank_mask(), 0b10_0001);
        r.banks[0].precharge(28, &t());
        assert_eq!(r.open_bank_mask(), 0b10_0000);
    }
}
