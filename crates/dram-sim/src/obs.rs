//! Wiring between the DRAM simulator and the `sim-obs` observability layer.
//!
//! [`DramObs`] bundles the [`Observer`] with the metric ids the hot path
//! records into, pre-registered at construction so scheduler code pays an
//! index into the registry per sample instead of a name lookup.

use sim_obs::{MetricId, Observer};

/// Observer plus pre-registered metric handles, owned by the memory system
/// and lent to each channel during `tick`/`enqueue`.
#[derive(Debug)]
pub(crate) struct DramObs {
    /// The shared observer: trace sink, metrics registry, epoch machinery.
    pub obs: Observer,
    /// `dram.read_latency` histogram — enqueue-to-data cycles per read.
    pub read_latency: MetricId,
    /// `dram.act_mats` histogram — MATs driven per activation.
    pub act_mats: MetricId,
    /// `dram.read_queue_occupancy` histogram — depth sampled at enqueue.
    pub read_q_occupancy: MetricId,
    /// `dram.write_queue_occupancy` histogram — depth sampled at enqueue.
    pub write_q_occupancy: MetricId,
    /// Whether live power telemetry (per-bank residency tracking plus
    /// `energy.*`/`power.*` publication at epoch close) is enabled.
    pub power_telemetry: bool,
}

impl DramObs {
    pub fn new() -> Self {
        let mut obs = Observer::disabled();
        let reg = &mut obs.registry;
        let read_latency = reg.histogram("dram.read_latency");
        let act_mats = reg.histogram("dram.act_mats");
        let read_q_occupancy = reg.histogram("dram.read_queue_occupancy");
        let write_q_occupancy = reg.histogram("dram.write_queue_occupancy");
        DramObs {
            obs,
            read_latency,
            act_mats,
            read_q_occupancy,
            write_q_occupancy,
            power_telemetry: true,
        }
    }
}

impl sim_snap::SnapState for DramObs {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        // Only the observer carries run state. The pre-registered MetricIds
        // stay valid across a registry reload because `DramObs::new` always
        // registers the same four histograms first, so the restored registry
        // allots them the same slots; `power_telemetry` is configuration.
        self.obs.snap_save(w);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        self.obs.snap_load(r)
    }
}
