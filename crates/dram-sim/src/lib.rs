//! A cycle-level DDR3 memory-system simulator with pluggable activation
//! schemes, built from scratch for the PRA reproduction (the role DRAMSim2
//! plays in the paper's methodology).
//!
//! The simulator models, per channel: FR-FCFS scheduling with a row-hit
//! fairness cap, separate watermarked read/write queues with write-drain
//! hysteresis, per-bank timing fences for every Table 3 constraint
//! (tRCD/tRP/CL/tRAS/tWR/tCCD/tRRD/tFAW), a shared data bus with turnaround
//! and rank-switch penalties, all-bank refresh, relaxed and restricted
//! close-page policies, and precharge power-down.
//!
//! Activation *schemes* — conventional, FGA, Half-DRAM, PRA, and the
//! combined Half-DRAM + PRA — are expressed as [`SchemeBehavior`]
//! descriptors: how many MATs an activation drives, which words the open
//! row then covers, burst-occupancy multipliers, write-I/O scaling, and
//! granularity-proportional tRRD/tFAW weights. PRA-specific mechanics
//! (mask ORing across queued writes, the extra mask-delivery cycle, false
//! row-buffer hits) live in the scheduler itself.
//!
//! Energy is accounted event-by-event into a
//! [`dram_power::EnergyAccounting`], yielding the ACT-PRE / RD / WR /
//! RD I/O / WR I/O / BG / REF breakdown of the paper's Figures 2 and 12.
//!
//! # Example
//!
//! ```
//! use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
//! use mem_model::{MemRequest, PhysAddr, WordMask};
//!
//! let cfg = DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
//! let mut mem = MemorySystem::new(cfg);
//! // A one-word writeback only activates 2 of the row's 16 MATs.
//! mem.try_enqueue(MemRequest::write(1, PhysAddr::new(0x1000), WordMask::single(3)))?;
//! mem.run_until_idle(10_000);
//! assert_eq!(mem.stats().act_histogram[1], 1);
//! # Ok::<(), dram_sim::QueueFull>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod channel;
mod checker;
mod config;
mod liveness;
mod memory_system;
mod obs;
mod rank;
mod scheme;
mod stats;
mod timing;

pub use bank::{Bank, OpenRow};
pub use checker::{DramCommand, ProtocolChecker, ProtocolError};
pub use config::{
    verify_protocol_default, ConfigError, DramConfig, PagePolicy, QueueConfig,
    DEFAULT_ESCALATION_AGE,
};
pub use liveness::{
    LivenessConfig, LivenessError, LivenessKind, RequestTrail, TickError, STARVATION_SCAN_INTERVAL,
};
pub use memory_system::{MemorySystem, QueueFull};
pub use rank::{Rank, RefreshState};
pub use scheme::{SchemeBehavior, WriteActPolicy, FULL_ROW_MATS};
pub use sim_recover::{RecoveryConfig, RecoveryCounts};
pub use stats::{DramStats, HitCounters};
pub use timing::{TimingError, TimingParams};
