//! The memory-system facade: channels, global clock, stats and energy.

use core::fmt;
use std::io::Write;

use dram_power::{EnergyAccounting, EnergyBreakdown, PowerBreakdown, PowerRail, ResidencyLedger};
use mem_model::{MemRequest, RequestId};
use sim_fault::{FaultCounts, FaultInjector};
use sim_obs::{Observer, TraceEvent, TraceSink};

use crate::channel::Channel;
use crate::config::{ConfigError, DramConfig};
use crate::liveness::{
    LivenessError, LivenessKind, RequestTrail, TickError, STARVATION_SCAN_INTERVAL,
};
use crate::obs::DramObs;
use crate::stats::DramStats;

/// Error returned when a request cannot be accepted because its channel's
/// queue is full. The caller should retry on a later cycle (this is the
/// back-pressure path that stalls the cache hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Channel whose queue was full.
    pub channel: u32,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request queue of channel {} is full", self.channel)
    }
}

impl std::error::Error for QueueFull {}

/// A cycle-level DDR3 memory system.
///
/// Drive it by interleaving [`MemorySystem::try_enqueue`] and
/// [`MemorySystem::tick`]; each tick advances one memory-clock cycle
/// (1.25 ns at DDR3-1600) and reports the reads whose data completed.
///
/// # Example
///
/// ```
/// use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
/// use mem_model::{MemRequest, PhysAddr};
///
/// let cfg = DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
/// let mut mem = MemorySystem::new(cfg);
/// mem.try_enqueue(MemRequest::read(1, PhysAddr::new(0x4000)))?;
/// let done = mem.run_until_idle(10_000);
/// assert!(done, "a lone read finishes in well under 10k cycles");
/// assert_eq!(mem.stats().reads_completed, 1);
/// # Ok::<(), dram_sim::QueueFull>(())
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    channels: Vec<Channel>,
    cycle: u64,
    stats: DramStats,
    energy: EnergyAccounting,
    completed_scratch: Vec<RequestId>,
    obs: DramObs,
    /// Streaming energy→power window converter, closed at every epoch
    /// boundary and at finish.
    power_rail: PowerRail,
    faults: Option<FaultInjector>,
    /// Cycle at which a request last retired (or the queues last drained);
    /// drives the no-retire liveness watchdog.
    last_progress_cycle: u64,
    /// reads+writes completed as of `last_progress_cycle`.
    last_completed_total: u64,
}

impl MemorySystem {
    /// Builds a memory system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent; use
    /// [`MemorySystem::try_new`] to handle the error instead.
    pub fn new(config: DramConfig) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented panicking facade; try_new is the fallible API
        Self::try_new(config).unwrap_or_else(|e| panic!("invalid DRAM configuration: {e}"))
    }

    /// Builds a memory system, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] describing the first inconsistency found
    /// by [`DramConfig::validate`].
    pub fn try_new(config: DramConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let channels = (0..config.geometry.channels)
            .map(|i| Channel::new(&config, i))
            .collect();
        let total_ranks = config.geometry.channels * config.geometry.ranks_per_channel;
        let energy = EnergyAccounting::new(config.power, total_ranks);
        Ok(MemorySystem {
            channels,
            cycle: 0,
            stats: DramStats::default(),
            energy,
            completed_scratch: Vec::new(),
            obs: DramObs::new(),
            power_rail: PowerRail::new(),
            faults: None,
            last_progress_cycle: 0,
            last_completed_total: 0,
            config,
        })
    }

    /// Attaches a fault injector (see [`sim_fault`]); every channel consults
    /// it on command issue and refresh scheduling. Without one (the
    /// default), no fault branches are taken and behaviour is bit-identical
    /// to a build without fault support.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Fault-event counters accumulated by the attached injector (zero when
    /// no injector is attached).
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults
            .as_ref()
            .map(FaultInjector::counts)
            .unwrap_or_default()
    }

    /// Recovery-pipeline counters aggregated over every channel's engine
    /// (all zero when [`DramConfig::recovery`] is `None`).
    pub fn recovery_counts(&self) -> sim_recover::RecoveryCounts {
        self.channels
            .iter()
            .map(Channel::recovery_counts)
            .fold(sim_recover::RecoveryCounts::default(), |a, b| a.merged(b))
    }

    /// Attaches a trace sink; every subsequent DRAM command, power
    /// transition and read completion is emitted as a [`sim_obs::TraceEvent`]
    /// stamped with the memory cycle. Pass a `NullSink` (or never call
    /// this) to keep tracing disabled at zero cost.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.obs.obs.set_sink(sink);
    }

    /// Enables epoch metric snapshots: every `cycles` memory cycles the
    /// registry's counters and histograms are captured as a delta record
    /// (written to `out` as JSONL when provided, and retained in memory
    /// either way). `cycles == 0` disables snapshots.
    pub fn set_metrics_epochs(&mut self, cycles: u64, out: Option<Box<dyn Write>>) {
        self.obs.obs.set_epochs(cycles, out);
    }

    /// The observability layer: metrics registry, epoch snapshots, sink.
    pub fn observer(&self) -> &Observer {
        &self.obs.obs
    }

    /// Mutable observer access, used by outer simulation layers (caches,
    /// cores) to register and publish their own metrics into the shared
    /// registry so epoch snapshots cover the whole stack.
    pub fn observer_mut(&mut self) -> &mut Observer {
        &mut self.obs.obs
    }

    /// Whether the next [`MemorySystem::tick`] will close a metrics epoch.
    /// Outer layers that mirror counters into the registry should publish
    /// when this is true, just before ticking, so the closing snapshot sees
    /// fresh values.
    pub fn epoch_closes_next_tick(&self) -> bool {
        self.obs.obs.epoch_due(self.cycle.saturating_add(1))
    }

    /// Publishes final counter values into the registry, closes the last
    /// partial epoch and flushes the sink and metrics writer. Call once
    /// when the simulation ends; safe to call when observability is off.
    pub fn finish_observability(&mut self) {
        self.stats.publish_to(&mut self.obs.obs.registry);
        if let Some(f) = &self.faults {
            f.publish_to(&mut self.obs.obs.registry, "fault");
        }
        if self.config.recovery.is_some() {
            self.recovery_counts()
                .publish_to(&mut self.obs.obs.registry);
        }
        self.publish_power_telemetry();
        self.obs.obs.finish(self.cycle);
    }

    /// Enables or disables live power telemetry (on by default). When off,
    /// per-bank residency tracking and `energy.*`/`power.*` epoch
    /// publication are skipped entirely, leaving the registry and trace
    /// stream exactly as they were before this layer existed.
    pub fn set_power_telemetry(&mut self, enabled: bool) {
        self.obs.power_telemetry = enabled;
    }

    /// The per-rank power-state residency ledger (global channel-major rank
    /// indices).
    pub fn residency(&self) -> &ResidencyLedger {
        self.energy.residency()
    }

    /// Closes the current power window and publishes energy counters, power
    /// gauges, residency counters and `PowerEpoch`/`PowerRank` trace events.
    /// No-op when telemetry is off or no time elapsed since the last close
    /// (e.g. `finish_observability` right after an epoch boundary).
    fn publish_power_telemetry(&mut self) {
        if !self.obs.power_telemetry {
            return;
        }
        let elapsed = self.elapsed_ns();
        if elapsed <= self.power_rail.elapsed_ns() {
            return;
        }
        let cycle = self.cycle;
        let epoch = self.obs.obs.epoch_index();
        let total = self.energy.breakdown();
        let (delta, power) = self.power_rail.close_window(total, elapsed);
        let act_by_mats = *self.energy.act_energy_by_mats();
        let p = self.energy.params();
        let state_mw = [p.act_stby_mw, p.pre_stby_mw, p.pre_pdn_mw];
        let residency: Vec<([u64; 3], u64)> = self
            .energy
            .residency()
            .ranks()
            .iter()
            .map(|r| (r.state_cycles, r.open_bank_cycles()))
            .collect();
        let rank_windows = self.energy.residency_window();

        let reg = &mut self.obs.obs.registry;
        // Cumulative energy, rounded to whole pJ. Rounding a nondecreasing
        // f64 keeps the counter monotonic.
        let id = reg.counter("energy.act_pre_pj");
        reg.set_counter(id, total.act_pre.round() as u64);
        let id = reg.counter("energy.rd_pj");
        reg.set_counter(id, total.rd.round() as u64);
        let id = reg.counter("energy.wr_pj");
        reg.set_counter(id, total.wr.round() as u64);
        let id = reg.counter("energy.rd_io_pj");
        reg.set_counter(id, total.rd_io.round() as u64);
        let id = reg.counter("energy.wr_io_pj");
        reg.set_counter(id, total.wr_io.round() as u64);
        let id = reg.counter("energy.bg_pj");
        reg.set_counter(id, total.bg.round() as u64);
        let id = reg.counter("energy.refresh_pj");
        reg.set_counter(id, total.refresh.round() as u64);
        let id = reg.counter("energy.total_pj");
        reg.set_counter(id, total.total().round() as u64);
        // Per-granularity activation energy; registered lazily so runs
        // that never activate at a given MAT count stay free of its row.
        for (m, pj) in act_by_mats.iter().enumerate() {
            if *pj > 0.0 {
                let name = format!("energy.act.mats{:02}_pj", m + 1);
                let id = reg.counter(&name);
                reg.set_counter(id, pj.round() as u64);
            }
        }
        // Epoch-average power rails (mW over the window just closed).
        let id = reg.gauge("power.act_pre_mw");
        reg.set_gauge(id, power.act_pre);
        let id = reg.gauge("power.rd_mw");
        reg.set_gauge(id, power.rd);
        let id = reg.gauge("power.wr_mw");
        reg.set_gauge(id, power.wr);
        let id = reg.gauge("power.rd_io_mw");
        reg.set_gauge(id, power.rd_io);
        let id = reg.gauge("power.wr_io_mw");
        reg.set_gauge(id, power.wr_io);
        let id = reg.gauge("power.bg_mw");
        reg.set_gauge(id, power.bg);
        let id = reg.gauge("power.refresh_mw");
        reg.set_gauge(id, power.refresh);
        let id = reg.gauge("power.total_mw");
        reg.set_gauge(id, power.total());
        // Cumulative per-rank residency counters.
        for (r, (states, bank_open)) in residency.iter().enumerate() {
            for (s, label) in ResidencyLedger::state_labels().iter().enumerate() {
                let name = format!("power.residency.r{r}.{label}");
                let id = reg.counter(&name);
                reg.set_counter(id, states[s]);
            }
            let name = format!("power.residency.r{r}.bank_open");
            let id = reg.counter(&name);
            reg.set_counter(id, *bank_open);
        }

        self.obs.obs.emit(|| TraceEvent::PowerEpoch {
            cycle,
            epoch: epoch as u32,
            act_pre_pj: delta.act_pre.round() as u64,
            rd_pj: delta.rd.round() as u64,
            wr_pj: delta.wr.round() as u64,
            rd_io_pj: delta.rd_io.round() as u64,
            wr_io_pj: delta.wr_io.round() as u64,
            bg_pj: delta.bg.round() as u64,
            refresh_pj: delta.refresh.round() as u64,
            total_uw: (power.total() * 1000.0).round() as u64,
        });
        let tck_ns = self.config.power.timings.tck_ns;
        for (r, d) in rank_windows.iter().enumerate() {
            let window_cycles = d[0] + d[1] + d[2];
            let bg_uw = if window_cycles > 0 {
                let bg_pj = (d[0] as f64 * state_mw[0]
                    + d[1] as f64 * state_mw[1]
                    + d[2] as f64 * state_mw[2])
                    * tck_ns;
                (bg_pj / (window_cycles as f64 * tck_ns) * 1000.0).round() as u64
            } else {
                0
            };
            self.obs.obs.emit(|| TraceEvent::PowerRank {
                cycle,
                rank: r as u8,
                act_stby: d[0],
                pre_stby: d[1],
                pdn: d[2],
                bg_uw,
            });
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current memory-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a request of this kind would currently be accepted.
    pub fn can_accept(&self, req: &MemRequest) -> bool {
        let loc = self.config.mapping.decode(req.addr, &self.config.geometry);
        self.channels[loc.channel as usize].can_accept(req.kind, &self.config)
    }

    /// Enqueues a request into its channel's read or write queue.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the target queue has no free entry; the
    /// caller must hold the request and retry after ticking.
    pub fn try_enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        let loc = self.config.mapping.decode(req.addr, &self.config.geometry);
        let channel = &mut self.channels[loc.channel as usize];
        if !channel.can_accept(req.kind, &self.config) {
            return Err(QueueFull {
                channel: loc.channel,
            });
        }
        channel.enqueue(req, loc, self.cycle, &self.config, &mut self.obs);
        Ok(())
    }

    /// Advances one memory cycle; returns the ids of reads whose data
    /// completed during this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`TickError::Protocol`] when the protocol checker (enabled
    /// via [`DramConfig::verify_protocol`]) rejects a command the scheduler
    /// issued — always a simulator bug, never a workload property — and
    /// [`TickError::Liveness`] when a watchdog armed via
    /// [`DramConfig::liveness`] detects no forward progress.
    pub fn try_tick(&mut self) -> Result<&[RequestId], TickError> {
        let _prof = sim_prof::span!("dram.tick");
        self.completed_scratch.clear();
        for channel in &mut self.channels {
            channel.tick(
                self.cycle,
                &self.config,
                &mut self.stats,
                &mut self.energy,
                &mut self.obs,
                &mut self.completed_scratch,
                &mut self.faults,
            )?;
        }
        self.cycle += 1;
        self.check_liveness()?;
        self.stats.cycles = self.cycle;
        if self.obs.obs.epoch_due(self.cycle) {
            self.stats.publish_to(&mut self.obs.obs.registry);
            if let Some(f) = &self.faults {
                f.publish_to(&mut self.obs.obs.registry, "fault");
            }
            if self.config.recovery.is_some() {
                let counts = self.recovery_counts();
                counts.publish_to(&mut self.obs.obs.registry);
            }
            self.publish_power_telemetry();
            self.obs.obs.end_epoch(self.cycle);
        }
        Ok(&self.completed_scratch)
    }

    /// Advances one memory cycle; returns the ids of reads whose data
    /// completed during this cycle.
    ///
    /// # Panics
    ///
    /// Panics if the protocol checker rejects a scheduled command; use
    /// [`Self::try_tick`] to observe the violation as an error instead.
    pub fn tick(&mut self) -> &[RequestId] {
        self.try_tick()
            // sim-lint: allow(no-panic-hot-path): documented panicking facade; a checker rejection is a simulator bug and try_tick is the fallible API
            .unwrap_or_else(|e| panic!("DRAM {e}"))
    }

    /// Cycle-domain liveness watchdogs (see [`crate::liveness`]). Called
    /// after every tick; a cheap early-out keeps the disabled case free.
    fn check_liveness(&mut self) -> Result<(), LivenessError> {
        let live = self.config.liveness;
        if !live.enabled() {
            return Ok(());
        }
        let completed = self.stats.reads_completed + self.stats.writes_completed;
        let progressed = completed != self.last_completed_total || self.pending() == 0;
        if progressed {
            self.last_completed_total = completed;
            self.last_progress_cycle = self.cycle;
        }
        // Progress resets the no-retire watchdog, but not the starvation
        // scan: a stream that retires plenty of requests can still starve
        // one queued victim indefinitely.
        if !progressed && live.max_no_retire_cycles > 0 {
            let stalled_for = self.cycle - self.last_progress_cycle;
            if stalled_for > live.max_no_retire_cycles {
                return Err(LivenessError {
                    cycle: self.cycle,
                    kind: LivenessKind::NoRetire { stalled_for },
                    victim: self.oldest_trail(),
                });
            }
        }
        if live.max_queue_age_cycles > 0 && self.cycle.is_multiple_of(STARVATION_SCAN_INTERVAL) {
            if let Some(victim) = self.oldest_trail() {
                let age = self.cycle.saturating_sub(victim.enqueued_at);
                if age > live.max_queue_age_cycles {
                    return Err(LivenessError {
                        cycle: self.cycle,
                        kind: LivenessKind::Starvation {
                            age,
                            bound: live.max_queue_age_cycles,
                        },
                        victim: Some(victim),
                    });
                }
            }
        }
        Ok(())
    }

    /// Trail of the oldest queued request across all channels.
    fn oldest_trail(&self) -> Option<RequestTrail> {
        self.channels
            .iter()
            .enumerate()
            .filter_map(|(i, ch)| ch.oldest_trail(i as u32))
            .min_by_key(|t| t.enqueued_at)
    }

    /// Requests queued or in flight across all channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(Channel::pending).sum()
    }

    /// Ticks until no work remains or `max_cycles` elapse; returns `true`
    /// if the system drained completely.
    ///
    /// # Panics
    ///
    /// Panics on a protocol or liveness violation; use
    /// [`Self::try_run_until_idle`] to observe it as an error instead.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.pending() == 0 {
                return true;
            }
            self.tick();
        }
        self.pending() == 0
    }

    /// Fallible variant of [`Self::run_until_idle`].
    ///
    /// # Errors
    ///
    /// Returns the first [`TickError`] raised while draining.
    pub fn try_run_until_idle(&mut self, max_cycles: u64) -> Result<bool, TickError> {
        for _ in 0..max_cycles {
            if self.pending() == 0 {
                return Ok(true);
            }
            self.try_tick()?;
        }
        Ok(self.pending() == 0)
    }

    /// Collected statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Accumulated energy breakdown (pJ).
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy.breakdown()
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.cycle as f64 * self.config.power.timings.tck_ns
    }

    /// Average power breakdown over the run so far (mW).
    ///
    /// # Panics
    ///
    /// Panics if no cycles have been simulated yet.
    pub fn power(&self) -> PowerBreakdown {
        self.energy.breakdown().to_power(self.elapsed_ns())
    }
}

impl sim_snap::SnapState for MemorySystem {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("memory-system");
        // `config` is not serialized: restore rebuilds the system from the
        // run configuration and the snapshot header's config digest guards
        // against overlaying state onto a differently-shaped system.
        w.u64(self.cycle);
        self.stats.snap_save(w);
        self.energy.snap_save(w);
        w.seq(self.channels.len());
        for ch in &self.channels {
            ch.snap_save(w);
        }
        self.obs.snap_save(w);
        self.power_rail.snap_save(w);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap_save(w);
        }
        w.u64(self.last_progress_cycle);
        w.u64(self.last_completed_total);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("memory-system")?;
        self.cycle = r.u64()?;
        self.stats.snap_load(r)?;
        self.energy.snap_load(r)?;
        let channels = r.seq()?;
        if channels != self.channels.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "channel count mismatch: snapshot has {channels}, config has {}",
                self.channels.len()
            )));
        }
        for ch in &mut self.channels {
            ch.snap_load(r)?;
        }
        self.obs.snap_load(r)?;
        self.power_rail.snap_load(r)?;
        let has_faults = r.bool()?;
        if has_faults != self.faults.is_some() {
            return Err(sim_snap::SnapError::Decode(format!(
                "fault-injector presence mismatch: snapshot has {has_faults}, config has {}",
                self.faults.is_some()
            )));
        }
        if let Some(f) = self.faults.as_mut() {
            f.snap_load(r)?;
        }
        self.last_progress_cycle = r.u64()?;
        self.last_completed_total = r.u64()?;
        // Scratch is rebuilt from scratch every tick; never carried across.
        self.completed_scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PagePolicy;
    use crate::scheme::SchemeBehavior;
    use mem_model::{AddressMapping, DramGeometry, Location, PhysAddr, WordMask};

    fn system(policy: PagePolicy, scheme: SchemeBehavior) -> MemorySystem {
        MemorySystem::new(DramConfig::paper_baseline(policy, scheme))
    }

    fn addr_for(loc: Location, mapping: AddressMapping) -> PhysAddr {
        mapping.encode(loc, &DramGeometry::baseline_ddr3())
    }

    fn loc(row: u32, column: u32) -> Location {
        Location {
            channel: 0,
            rank: 0,
            bank: 0,
            row,
            column,
        }
    }

    #[test]
    fn single_read_latency_is_act_plus_cas_plus_burst() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        mem.try_enqueue(MemRequest::read(1, PhysAddr::new(0)))
            .unwrap();
        let mut done_cycle = None;
        for _ in 0..200 {
            if !mem.tick().is_empty() {
                done_cycle = Some(mem.cycle() - 1);
                break;
            }
        }
        // ACT at cycle 0, column at tRCD=11, data done at 11+CL+burst=26.
        assert_eq!(done_cycle, Some(26));
        assert_eq!(mem.stats().read.misses, 1);
        assert_eq!(mem.stats().activations, 1);
    }

    #[test]
    fn second_read_to_same_row_hits() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::read(1, addr_for(loc(5, 0), mapping)))
            .unwrap();
        mem.try_enqueue(MemRequest::read(2, addr_for(loc(5, 1), mapping)))
            .unwrap();
        assert!(mem.run_until_idle(1000));
        assert_eq!(mem.stats().read.hits, 1);
        assert_eq!(mem.stats().read.misses, 1);
        assert_eq!(mem.stats().activations, 1, "one activation serves both");
    }

    #[test]
    fn row_conflict_precharges_and_reactivates() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::read(1, addr_for(loc(5, 0), mapping)))
            .unwrap();
        mem.try_enqueue(MemRequest::read(2, addr_for(loc(9, 0), mapping)))
            .unwrap();
        assert!(mem.run_until_idle(1000));
        assert_eq!(mem.stats().read.misses, 2);
        assert_eq!(mem.stats().activations, 2);
        assert!(mem.stats().precharges >= 1);
    }

    #[test]
    fn restricted_policy_activates_per_request() {
        let mut mem = system(PagePolicy::RestrictedClosePage, SchemeBehavior::baseline());
        let mapping = mem.config().mapping;
        // Same row twice: restricted close-page still pays two ACT/PRE pairs
        // because every column access auto-precharges.
        mem.try_enqueue(MemRequest::read(1, addr_for(loc(5, 0), mapping)))
            .unwrap();
        assert!(mem.run_until_idle(1000));
        // Let the armed auto-precharge fire (tRAS after the activate) before
        // the second request arrives.
        for _ in 0..64 {
            mem.tick();
        }
        mem.try_enqueue(MemRequest::read(2, addr_for(loc(5, 1), mapping)))
            .unwrap();
        assert!(mem.run_until_idle(1000));
        for _ in 0..64 {
            mem.tick(); // let the second auto-precharge fire
        }
        assert_eq!(mem.stats().activations, 2);
        assert_eq!(mem.stats().read.misses, 2);
        assert_eq!(mem.stats().precharges, 2, "both were auto-precharges");
    }

    #[test]
    fn pra_write_activates_partially() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let mapping = mem.config().mapping;
        let a = addr_for(loc(3, 0), mapping);
        mem.try_enqueue(MemRequest::write(1, a, WordMask::single(0)))
            .unwrap();
        assert!(mem.run_until_idle(1000));
        assert_eq!(mem.stats().activations, 1);
        assert_eq!(mem.stats().act_histogram[1], 1, "2 MATs for a 1-word mask");
        // Energy: the activation must be charged at the 1/8 rate.
        let act_pj = mem.energy().act_pre;
        assert!((act_pj - 3.7 * 48.75).abs() < 1e-6, "got {act_pj}");
    }

    #[test]
    fn pra_masks_are_ored_across_queued_writes() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::write(
            1,
            addr_for(loc(3, 0), mapping),
            WordMask::single(0),
        ))
        .unwrap();
        mem.try_enqueue(MemRequest::write(
            2,
            addr_for(loc(3, 1), mapping),
            WordMask::single(5),
        ))
        .unwrap();
        assert!(mem.run_until_idle(2000));
        // One activation with both groups selected; the second write hits.
        assert_eq!(mem.stats().activations, 1);
        assert_eq!(
            mem.stats().act_histogram[3],
            1,
            "4 MATs for the ORed 2-word mask"
        );
        assert_eq!(mem.stats().write.hits, 1);
        assert_eq!(mem.stats().write.misses, 1);
    }

    #[test]
    fn pra_false_hit_on_read_after_partial_write() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let mapping = mem.config().mapping;
        let wa = addr_for(loc(3, 0), mapping);
        mem.try_enqueue(MemRequest::write(1, wa, WordMask::single(0)))
            .unwrap();
        // Let the write open its partial row and be served.
        for _ in 0..60 {
            mem.tick();
        }
        assert_eq!(mem.stats().write.misses, 1);
        // The row is still open partially (relaxed policy would close it as
        // unwanted — enqueue the read before that can happen is exercised by
        // the drain ordering below; if already closed this is a plain miss).
        let partially_open = {
            // Peek through stats: a false hit can only occur if no precharge
            // has closed the row yet.
            mem.stats().precharges == 0
        };
        mem.try_enqueue(MemRequest::read(2, addr_for(loc(3, 1), mapping)))
            .unwrap();
        assert!(mem.run_until_idle(2000));
        if partially_open {
            assert_eq!(
                mem.stats().read.false_hits,
                1,
                "read to a partial row is a false hit"
            );
            assert_eq!(mem.stats().read.misses, 1);
        }
        assert_eq!(mem.stats().reads_completed, 1);
    }

    #[test]
    fn pra_false_hit_on_uncovered_write() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::write(
            1,
            addr_for(loc(3, 0), mapping),
            WordMask::single(0),
        ))
        .unwrap();
        for _ in 0..60 {
            mem.tick();
        }
        let still_open = mem.stats().precharges == 0;
        mem.try_enqueue(MemRequest::write(
            2,
            addr_for(loc(3, 1), mapping),
            WordMask::single(7),
        ))
        .unwrap();
        assert!(mem.run_until_idle(2000));
        if still_open {
            assert_eq!(mem.stats().write.false_hits, 1);
        }
        assert_eq!(mem.stats().writes_completed, 2);
    }

    #[test]
    fn covered_write_hits_partial_row() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::write(
            1,
            addr_for(loc(3, 0), mapping),
            WordMask::from_words([0, 7]),
        ))
        .unwrap();
        for _ in 0..60 {
            mem.tick();
        }
        let still_open = mem.stats().precharges == 0;
        mem.try_enqueue(MemRequest::write(
            2,
            addr_for(loc(3, 1), mapping),
            WordMask::single(7),
        ))
        .unwrap();
        assert!(mem.run_until_idle(2000));
        if still_open {
            assert_eq!(
                mem.stats().write.hits,
                1,
                "subset mask hits the partial row"
            );
            assert_eq!(mem.stats().write.false_hits, 0);
        }
    }

    #[test]
    fn open_page_keeps_rows_open_across_idle_gaps() {
        let mut open = system(PagePolicy::OpenPage, SchemeBehavior::baseline());
        let mut relaxed = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        for mem in [&mut open, &mut relaxed] {
            let mapping = mem.config().mapping;
            mem.try_enqueue(MemRequest::read(1, addr_for(loc(5, 0), mapping)))
                .unwrap();
            assert!(mem.run_until_idle(1000));
            for _ in 0..200 {
                mem.tick(); // idle gap: relaxed closes the row, open-page keeps it
            }
            mem.try_enqueue(MemRequest::read(2, addr_for(loc(5, 1), mapping)))
                .unwrap();
            assert!(mem.run_until_idle(1000));
        }
        assert_eq!(open.stats().read.hits, 1, "open page retains the row");
        assert_eq!(open.stats().activations, 1);
        assert_eq!(relaxed.stats().read.hits, 0, "relaxed closed the idle row");
        assert_eq!(relaxed.stats().activations, 2);
        // Open page never powers down, so its background energy is higher.
        assert!(open.energy().bg > relaxed.energy().bg);
    }

    #[test]
    fn refresh_happens_periodically() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        for _ in 0..20_000 {
            mem.tick();
        }
        // Each of the 4 ranks refreshes every tREFI = 6240 cycles, with
        // staggered first refreshes between 6240 and ~11k cycles; in 20k
        // cycles every rank completes 2-3 refreshes.
        assert!(
            (8..=12).contains(&mem.stats().refreshes),
            "refreshes {} outside the 8..=12 envelope",
            mem.stats().refreshes,
        );
        assert!(mem.energy().refresh > 0.0);
    }

    #[test]
    fn refresh_postponing_defers_under_load_and_repays() {
        let mut cfg =
            DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        cfg.refresh_postpone_max = 8;
        let mut mem = MemorySystem::new(cfg);
        let mapping = mem.config().mapping;
        // Keep every rank busy across several tREFI intervals.
        let mut id = 0u64;
        for _ in 0..30_000u64 {
            if mem.pending() < 32 {
                id += 1;
                let a = addr_for(loc((id % 1024) as u32, (id % 64) as u32), mapping);
                let _ = mem.try_enqueue(MemRequest::read(id, a));
            }
            mem.tick();
        }
        // Debt may have accumulated but is bounded by the allowance (+1 for
        // the interval that just elapsed).
        // Drain and idle: all debt must be repaid opportunistically.
        assert!(mem.run_until_idle(100_000));
        for _ in 0..20_000 {
            mem.tick();
        }
        // Refresh conservation: over ~50k cycles each of the 4 ranks owes
        // roughly cycles/tREFI refreshes; everything owed was serviced.
        let elapsed = mem.cycle();
        let expected = elapsed / 6240 * 4;
        let refreshes = mem.stats().refreshes;
        assert!(
            refreshes + 4 * 9 >= expected && refreshes <= expected + 8,
            "refreshes {refreshes} vs owed ~{expected}"
        );
    }

    #[test]
    fn idle_system_powers_down() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        for _ in 0..1000 {
            mem.tick();
        }
        // All background energy in the pre-refresh window must be at the
        // power-down rate: 4 ranks x 1000 cycles x 18 mW x 1.25 ns.
        let bg = mem.energy().bg;
        let expected = 4.0 * 1000.0 * 18.0 * 1.25;
        assert!(
            (bg - expected).abs() / expected < 0.01,
            "bg {bg} vs {expected}"
        );
    }

    #[test]
    fn queue_full_backpressure() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        let mapping = mem.config().mapping;
        let mut rejected = false;
        for i in 0..200u64 {
            let a = addr_for(loc((i % 64) as u32, 0), mapping);
            if mem.try_enqueue(MemRequest::read(i, a)).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "64-entry read queue must eventually refuse");
        assert!(mem.run_until_idle(100_000));
    }

    #[test]
    fn write_drain_triggers_at_watermark() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        let mapping = mem.config().mapping;
        for i in 0..48u64 {
            let a = addr_for(loc(i as u32, 0), mapping);
            mem.try_enqueue(MemRequest::write(i, a, WordMask::FULL))
                .unwrap();
        }
        mem.tick();
        assert_eq!(mem.stats().drain_entries, 1);
        assert!(mem.run_until_idle(100_000));
        assert_eq!(mem.stats().writes_completed, 48);
    }

    #[test]
    fn fga_reads_occupy_bus_twice_as_long() {
        let mut base = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        let mut fga = system(PagePolicy::RelaxedClosePage, SchemeBehavior::fga_half());
        let mapping = base.config().mapping;
        for mem in [&mut base, &mut fga] {
            for i in 0..16u64 {
                let a = addr_for(loc(2, i as u32), mapping);
                mem.try_enqueue(MemRequest::read(i, a)).unwrap();
            }
        }
        let mut base_done = 0;
        let mut fga_done = 0;
        for c in 1..100_000u64 {
            if base.pending() > 0 {
                base.tick();
                if base.pending() == 0 {
                    base_done = c;
                }
            }
            if fga.pending() > 0 {
                fga.tick();
                if fga.pending() == 0 {
                    fga_done = c;
                }
            }
            if base.pending() == 0 && fga.pending() == 0 {
                break;
            }
        }
        assert!(
            fga_done > base_done,
            "FGA ({fga_done}) must be slower than baseline ({base_done})"
        );
        // I/O energy identical per line (the paper: FGA pays in runtime, not
        // energy per bit).
        assert!((base.energy().rd_io - fga.energy().rd_io).abs() < 1e-9);
    }

    #[test]
    fn half_dram_charges_half_row_activations() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::half_dram());
        mem.try_enqueue(MemRequest::read(1, PhysAddr::new(0)))
            .unwrap();
        assert!(mem.run_until_idle(1000));
        assert_eq!(mem.stats().act_histogram[7], 1, "8 MATs");
        let act = mem.energy().act_pre;
        assert!((act - 11.6 * 48.75).abs() < 1e-6);
    }

    /// Drives a continuous stream of row-buffer hits (bank 0, row 5) past a
    /// single older write to the same bank's row 9. The write queue stays far
    /// below the drain watermark and the hit stream never conflicts inside
    /// the read queue, so nothing in plain FR-FCFS ever closes the row for
    /// the write. Returns the memory system after `cycles` ticks.
    fn run_hit_stream_against_lone_write(escalation_age: u64, cycles: u64) -> MemorySystem {
        let mut cfg =
            DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        cfg.starvation_escalation_age = escalation_age;
        let mut mem = MemorySystem::new(cfg);
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::write(
            0,
            addr_for(loc(9, 0), mapping),
            WordMask::FULL,
        ))
        .unwrap();
        let mut id = 1u64;
        for _ in 0..cycles {
            if mem.pending() < 8 {
                id += 1;
                let a = addr_for(loc(5, (id % 64) as u32), mapping);
                let _ = mem.try_enqueue(MemRequest::read(id, a));
            }
            mem.tick();
        }
        mem
    }

    #[test]
    fn row_hit_stream_starves_cross_queue_write_without_escalation() {
        // Keep the run under the first refresh (~6240) so only the scheduler
        // decides; the hit stream holds row 5 open for the entire run.
        let mem = run_hit_stream_against_lone_write(0, 5_000);
        assert_eq!(
            mem.stats().writes_completed,
            0,
            "documents the starvation hole escalation exists to close"
        );
        assert!(mem.stats().reads_completed > 100);
    }

    #[test]
    fn escalation_retires_starved_write_within_bound() {
        let mut cfg =
            DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        cfg.starvation_escalation_age = 300;
        let mut mem = MemorySystem::new(cfg);
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::write(
            0,
            addr_for(loc(9, 0), mapping),
            WordMask::FULL,
        ))
        .unwrap();
        let mut id = 1u64;
        let mut write_done_at = None;
        for _ in 0..5_000u64 {
            if mem.pending() < 8 {
                id += 1;
                let a = addr_for(loc(5, (id % 64) as u32), mapping);
                let _ = mem.try_enqueue(MemRequest::read(id, a));
            }
            mem.tick();
            if write_done_at.is_none() && mem.stats().writes_completed == 1 {
                write_done_at = Some(mem.cycle());
            }
        }
        let done = write_done_at.expect("escalation must retire the starved write");
        assert!(
            done <= 300 + 200,
            "write retired at {done}, expected within the 300-cycle bound plus service slack"
        );
        // The hit stream resumes after the escalated write retires.
        assert!(mem.stats().reads_completed > 100);
    }

    #[test]
    fn no_retire_watchdog_trips_with_trail() {
        let mut cfg =
            DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        cfg.liveness.max_no_retire_cycles = 10;
        let mut mem = MemorySystem::new(cfg);
        let mapping = mem.config().mapping;
        // A lone read legitimately takes 26 cycles, so an absurd 10-cycle
        // bound trips deterministically at cycle 11.
        mem.try_enqueue(MemRequest::read(1, addr_for(loc(5, 3), mapping)))
            .unwrap();
        let err = loop {
            match mem.try_tick() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        let TickError::Liveness(live) = err else {
            panic!("expected a liveness error, got {err}");
        };
        assert_eq!(live.cycle, 11);
        assert!(matches!(
            live.kind,
            LivenessKind::NoRetire { stalled_for: 11 }
        ));
        let victim = live.victim.expect("the queued read is the victim");
        assert_eq!((victim.bank, victim.row), (0, 5));
        assert!(!victim.is_write);
        assert_eq!(victim.enqueued_at, 0);
    }

    #[test]
    fn queue_age_watchdog_trips_on_starved_write() {
        let mut cfg =
            DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        cfg.liveness.max_queue_age_cycles = 500;
        cfg.starvation_escalation_age = 0; // watchdog observes the raw hole
        let mut mem = MemorySystem::new(cfg);
        let mapping = mem.config().mapping;
        mem.try_enqueue(MemRequest::write(
            0,
            addr_for(loc(9, 0), mapping),
            WordMask::FULL,
        ))
        .unwrap();
        let mut id = 1u64;
        let err = loop {
            if mem.pending() < 8 {
                id += 1;
                let a = addr_for(loc(5, (id % 64) as u32), mapping);
                let _ = mem.try_enqueue(MemRequest::read(id, a));
            }
            match mem.try_tick() {
                Ok(_) => {
                    assert!(mem.cycle() < 2_000, "watchdog never tripped");
                }
                Err(e) => break e,
            }
        };
        let TickError::Liveness(live) = err else {
            panic!("expected a liveness error, got {err}");
        };
        let LivenessKind::Starvation { age, bound } = live.kind else {
            panic!("expected starvation, got {:?}", live.kind);
        };
        assert_eq!(bound, 500);
        assert!(age > 500);
        assert!(live.cycle.is_multiple_of(STARVATION_SCAN_INTERVAL));
        let victim = live.victim.expect("starvation always names a victim");
        assert!(victim.is_write);
        assert_eq!((victim.bank, victim.row), (0, 9));
        assert_eq!(victim.open_row, Some(5), "the hit stream holds row 5 open");
    }

    #[test]
    fn disabled_watchdogs_change_nothing() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        assert!(!mem.config().liveness.enabled());
        mem.try_enqueue(MemRequest::read(1, PhysAddr::new(0)))
            .unwrap();
        assert!(mem.try_run_until_idle(10_000).unwrap());
        assert_eq!(mem.stats().reads_completed, 1);
    }

    /// One deterministic traffic step: mixed reads and partial writes
    /// spread over rows, banks and channels.
    fn feed_step(mem: &mut MemorySystem, n: u64) {
        let mapping = mem.config().mapping;
        let l = Location {
            channel: 0,
            rank: (n % 4) as u32,
            bank: (n % 8) as u32,
            row: (n % 32) as u32,
            column: (n % 64) as u32,
        };
        let a = mapping.encode(l, &mem.config().geometry);
        if mem.pending() < 16 {
            let req = if n.is_multiple_of(3) {
                MemRequest::write(n, a, WordMask::single((n % 8) as u8))
            } else {
                MemRequest::read(n, a)
            };
            let _ = mem.try_enqueue(req);
        }
    }

    fn roundtrip_resumes_identically(mut live: MemorySystem, mut fresh: MemorySystem) {
        use sim_snap::SnapState;
        // Warm up: leave open rows, queued work and inflight bursts behind.
        for n in 0..400u64 {
            feed_step(&mut live, n);
            live.tick();
        }
        assert!(live.pending() > 0, "snapshot must capture in-flight state");
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut r = sim_snap::SnapReader::new(&bytes);
        fresh.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.cycle(), live.cycle());

        // Continue both in lockstep: every completion, counter and energy
        // figure must stay bit-identical.
        for n in 400..1200u64 {
            feed_step(&mut live, n);
            feed_step(&mut fresh, n);
            let a: Vec<RequestId> = live.tick().to_vec();
            let b: Vec<RequestId> = fresh.tick().to_vec();
            assert_eq!(a, b, "completions diverged at cycle {}", live.cycle());
        }
        assert_eq!(live.stats().reads_completed, fresh.stats().reads_completed);
        assert_eq!(
            live.stats().writes_completed,
            fresh.stats().writes_completed
        );
        assert_eq!(live.stats().activations, fresh.stats().activations);
        assert_eq!(live.stats().precharges, fresh.stats().precharges);
        assert_eq!(live.stats().refreshes, fresh.stats().refreshes);
        assert_eq!(
            live.stats().read_latency_sum,
            fresh.stats().read_latency_sum
        );
        assert_eq!(
            live.energy().total().to_bits(),
            fresh.energy().total().to_bits()
        );
        assert_eq!(live.fault_counts(), fresh.fault_counts());
        assert_eq!(live.recovery_counts(), fresh.recovery_counts());
    }

    #[test]
    fn snapshot_roundtrip_resumes_identically_pra() {
        let live = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let fresh = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        roundtrip_resumes_identically(live, fresh);
    }

    #[test]
    fn snapshot_roundtrip_resumes_identically_under_chaos() {
        use sim_fault::{Domain, FaultPlan};
        let cfg = || {
            let mut c =
                DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
            c.recovery = Some(sim_recover::RecoveryConfig::default());
            c
        };
        let plan = FaultPlan {
            seed: 0xDEC0DE,
            mask_corrupt_rate: 0.05,
            command_drop_rate: 0.02,
            command_stretch_rate: 0.05,
            command_stretch_cycles: 2,
            ..FaultPlan::disabled()
        };
        let mut live = MemorySystem::new(cfg());
        live.set_fault_injector(plan.injector(Domain::Dram));
        let mut fresh = MemorySystem::new(cfg());
        // A differently-seeded injector: the overlay must replace its RNG
        // position so both streams draw identical fault decisions.
        fresh.set_fault_injector(FaultPlan { seed: 999, ..plan }.injector(Domain::Dram));
        roundtrip_resumes_identically(live, fresh);
    }

    #[test]
    fn snapshot_shape_mismatch_rejected() {
        use sim_snap::SnapState;
        let live = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save(&mut w);
        let bytes = w.into_bytes();

        // Recovery armed on the restore side but absent in the snapshot.
        let mut cfg =
            DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        cfg.recovery = Some(sim_recover::RecoveryConfig::default());
        let mut other = MemorySystem::new(cfg);
        let mut r = sim_snap::SnapReader::new(&bytes);
        let err = other.snap_load(&mut r).unwrap_err();
        assert!(
            err.to_string().contains("presence mismatch"),
            "unexpected error: {err}"
        );

        // Fault injector attached on the restore side but not snapshotted.
        let mut other = system(PagePolicy::RelaxedClosePage, SchemeBehavior::pra());
        other
            .set_fault_injector(sim_fault::FaultPlan::disabled().injector(sim_fault::Domain::Dram));
        let mut r = sim_snap::SnapReader::new(&bytes);
        let err = other.snap_load(&mut r).unwrap_err();
        assert!(
            err.to_string().contains("fault-injector presence mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn power_breakdown_totals_positive_under_load() {
        let mut mem = system(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline());
        let mapping = mem.config().mapping;
        for i in 0..32u64 {
            let a = addr_for(loc(i as u32, 0), mapping);
            mem.try_enqueue(MemRequest::read(i, a)).unwrap();
        }
        assert!(mem.run_until_idle(100_000));
        let p = mem.power();
        assert!(p.act_pre > 0.0 && p.rd > 0.0 && p.bg > 0.0);
        assert!(p.total() > 0.0);
    }
}
