//! Per-bank state: open row, partial coverage, and timing fences.

use mem_model::WordMask;

use crate::timing::TimingParams;

/// The row a bank currently holds in its sense amplifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRow {
    /// Row index.
    pub row: u32,
    /// Words of any line in this row that the (possibly partial) activation
    /// made accessible. [`WordMask::FULL`] for conventional activations.
    pub coverage: WordMask,
    /// MATs the activation drove (for statistics).
    pub mats: u32,
    /// Column accesses served from this open row so far (fairness cap).
    pub hits_served: u32,
}

/// One DRAM bank, modelled as an open-row record plus timing fences.
///
/// Instead of an explicit state machine, the bank tracks the earliest cycle
/// each command class becomes legal; the scheduler compares fences against
/// the current cycle. `open == None` with `ready_for_activate_at` in the
/// future represents "precharging"; `open == Some` with
/// `ready_for_column_at` in the future represents "activating".
#[derive(Debug, Clone)]
pub struct Bank {
    /// Open row, if any.
    pub open: Option<OpenRow>,
    /// Earliest cycle a column command may issue (set by ACT + tRCD, plus
    /// PRA's extra mask-delivery cycle for partial activations).
    pub ready_for_column_at: u64,
    /// Earliest cycle a precharge may issue (tRAS after ACT, raised by
    /// column accesses: tRTP after reads, WL+burst+tWR after writes).
    pub ready_for_precharge_at: u64,
    /// Earliest cycle an activate may issue (tRP after the last precharge).
    pub ready_for_activate_at: u64,
    /// If set, the bank auto-precharges itself at this cycle (restricted
    /// close-page issues every column command with auto-precharge).
    pub auto_precharge_at: Option<u64>,
}

impl Bank {
    /// A bank with no open row and every command legal immediately.
    pub fn new() -> Self {
        Bank {
            open: None,
            ready_for_column_at: 0,
            ready_for_precharge_at: 0,
            ready_for_activate_at: 0,
            auto_precharge_at: None,
        }
    }

    /// `true` if the bank has an open row (including one still activating).
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// Applies an activate command issued at `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is already open or still precharging —
    /// the scheduler must never issue an illegal ACT.
    pub fn activate(
        &mut self,
        now: u64,
        row: u32,
        coverage: WordMask,
        mats: u32,
        extra_cycles: u64,
        t: &TimingParams,
    ) {
        debug_assert!(self.open.is_none(), "ACT to an open bank");
        debug_assert!(now >= self.ready_for_activate_at, "ACT during precharge");
        self.open = Some(OpenRow {
            row,
            coverage,
            mats,
            hits_served: 0,
        });
        self.ready_for_column_at = now.saturating_add(t.trcd).saturating_add(extra_cycles);
        self.ready_for_precharge_at = now + t.tras;
        self.auto_precharge_at = None;
    }

    /// Applies a read column command issued at `now`; returns the cycle the
    /// data burst completes.
    pub fn column_read(&mut self, now: u64, burst_cycles: u64, t: &TimingParams) -> u64 {
        debug_assert!(now >= self.ready_for_column_at);
        // sim-lint: allow(no-panic-hot-path): the scheduler selects only open banks and the protocol checker independently rejects columns to closed banks
        let open = self.open.as_mut().expect("column to a closed bank");
        open.hits_served += 1;
        let done = now.saturating_add(t.tcas).saturating_add(burst_cycles);
        self.ready_for_precharge_at = self.ready_for_precharge_at.max(now + t.trtp);
        done
    }

    /// Applies a write column command issued at `now`; returns the cycle the
    /// data burst completes on the bus.
    pub fn column_write(&mut self, now: u64, burst_cycles: u64, t: &TimingParams) -> u64 {
        debug_assert!(now >= self.ready_for_column_at);
        // sim-lint: allow(no-panic-hot-path): the scheduler selects only open banks and the protocol checker independently rejects columns to closed banks
        let open = self.open.as_mut().expect("column to a closed bank");
        open.hits_served += 1;
        let burst_end = now.saturating_add(t.wl).saturating_add(burst_cycles);
        self.ready_for_precharge_at = self.ready_for_precharge_at.max(burst_end + t.twr);
        burst_end
    }

    /// Schedules an auto-precharge to fire as soon as it becomes legal after
    /// this column access (restricted close-page).
    pub fn arm_auto_precharge(&mut self) {
        self.auto_precharge_at = Some(self.ready_for_precharge_at);
    }

    /// Applies a precharge at `now` (explicit command or auto-precharge).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is closed or precharge timing is not met.
    pub fn precharge(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(self.open.is_some(), "PRE to a closed bank");
        debug_assert!(now >= self.ready_for_precharge_at, "PRE too early");
        self.open = None;
        self.auto_precharge_at = None;
        self.ready_for_activate_at = now + t.trp;
    }

    /// Fires a pending auto-precharge if its time has come. Returns `true`
    /// if the bank closed this cycle.
    pub fn tick_auto_precharge(&mut self, now: u64, t: &TimingParams) -> bool {
        if let Some(at) = self.auto_precharge_at {
            if now >= at && now >= self.ready_for_precharge_at {
                self.precharge(now, t);
                return true;
            }
        }
        false
    }

    /// Widens the coverage of the open row (used when a later same-row write
    /// needs more MAT groups and the controller reopens wider; the bank
    /// model itself only stores the result).
    pub fn widen_coverage(&mut self, extra: WordMask) {
        if let Some(open) = self.open.as_mut() {
            open.coverage |= extra;
        }
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl sim_snap::SnapState for Bank {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.bool(self.open.is_some());
        if let Some(open) = &self.open {
            w.u32(open.row);
            w.u8(open.coverage.bits());
            w.u32(open.mats);
            w.u32(open.hits_served);
        }
        w.u64(self.ready_for_column_at);
        w.u64(self.ready_for_precharge_at);
        w.u64(self.ready_for_activate_at);
        w.opt_u64(self.auto_precharge_at);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        self.open = if r.bool()? {
            Some(OpenRow {
                row: r.u32()?,
                coverage: WordMask::from_bits(r.u8()?),
                mats: r.u32()?,
                hits_served: r.u32()?,
            })
        } else {
            None
        };
        self.ready_for_column_at = r.u64()?;
        self.ready_for_precharge_at = r.u64()?;
        self.ready_for_activate_at = r.u64()?;
        self.auto_precharge_at = r.opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_table3()
    }

    #[test]
    fn activate_sets_fences() {
        let mut b = Bank::new();
        b.activate(100, 7, WordMask::FULL, 16, 0, &t());
        assert!(b.is_open());
        assert_eq!(b.ready_for_column_at, 111);
        assert_eq!(b.ready_for_precharge_at, 128);
        // PRA partial activation pays the extra mask cycle.
        let mut p = Bank::new();
        p.activate(100, 7, WordMask::single(0), 2, 1, &t());
        assert_eq!(p.ready_for_column_at, 112);
    }

    #[test]
    fn read_then_precharge_honours_trtp() {
        let mut b = Bank::new();
        b.activate(0, 1, WordMask::FULL, 16, 0, &t());
        let done = b.column_read(11, 4, &t());
        assert_eq!(done, 11 + 11 + 4);
        // tRAS (28) still dominates tRTP here.
        assert_eq!(b.ready_for_precharge_at, 28);
        // A late read pushes the precharge fence.
        b.column_read(40, 4, &t());
        assert_eq!(b.ready_for_precharge_at, 46);
    }

    #[test]
    fn write_recovery_blocks_precharge() {
        let mut b = Bank::new();
        b.activate(0, 1, WordMask::FULL, 16, 0, &t());
        let burst_end = b.column_write(11, 4, &t());
        assert_eq!(burst_end, 11 + 8 + 4);
        assert_eq!(b.ready_for_precharge_at, burst_end + 12);
    }

    #[test]
    fn precharge_closes_and_fences_activate() {
        let mut b = Bank::new();
        b.activate(0, 1, WordMask::FULL, 16, 0, &t());
        b.precharge(28, &t());
        assert!(!b.is_open());
        assert_eq!(b.ready_for_activate_at, 39, "tRC = tRAS + tRP");
    }

    #[test]
    fn auto_precharge_fires_on_time() {
        let mut b = Bank::new();
        b.activate(0, 1, WordMask::FULL, 16, 0, &t());
        b.column_read(11, 4, &t());
        b.arm_auto_precharge();
        assert!(!b.tick_auto_precharge(27, &t()), "tRAS not yet satisfied");
        assert!(b.tick_auto_precharge(28, &t()));
        assert!(!b.is_open());
    }

    #[test]
    fn hits_served_increments() {
        let mut b = Bank::new();
        b.activate(0, 1, WordMask::FULL, 16, 0, &t());
        b.column_read(11, 4, &t());
        b.column_read(15, 4, &t());
        assert_eq!(b.open.unwrap().hits_served, 2);
    }

    #[test]
    fn widen_coverage_ors() {
        let mut b = Bank::new();
        b.activate(0, 1, WordMask::single(0), 2, 1, &t());
        b.widen_coverage(WordMask::single(5));
        assert_eq!(b.open.unwrap().coverage, WordMask::from_words([0, 5]));
    }
}
