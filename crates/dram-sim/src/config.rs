//! Top-level memory-system configuration.

use core::fmt;

use dram_power::PowerParams;
use mem_model::{AddressMapping, DramGeometry};

use crate::liveness::LivenessConfig;
use crate::scheme::SchemeBehavior;
use crate::timing::{TimingError, TimingParams};
use sim_recover::RecoveryConfig;

/// A configuration inconsistency, reported with enough context to fix the
/// offending field. Returned by the `validate()` family; the legacy
/// `assert_valid()` wrappers panic with the same message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// DRAM geometry is inconsistent (see [`mem_model::GeometryError`]).
    Geometry(String),
    /// Timing parameters are inconsistent.
    Timing(TimingError),
    /// Queue capacities or watermarks are inconsistent.
    Queues(String),
    /// The row-hit cap would starve every row hit.
    RowHitCap,
    /// Liveness watchdog bounds are mutually inconsistent.
    Liveness(String),
    /// Recovery-pipeline parameters are inconsistent.
    Recovery(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Geometry(msg) => write!(f, "geometry: {msg}"),
            ConfigError::Timing(err) => write!(f, "timing: {err}"),
            ConfigError::Queues(msg) => write!(f, "queues: {msg}"),
            ConfigError::RowHitCap => {
                write!(f, "row hit cap must allow at least one access")
            }
            ConfigError::Liveness(msg) => write!(f, "liveness: {msg}"),
            ConfigError::Recovery(msg) => write!(f, "recovery: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Whether new configurations verify every issued command against the
/// independent protocol checker: on in debug builds, and forced on in any
/// build when the `PRA_VERIFY_PROTOCOL` environment variable is set (the
/// release-mode CI job uses this).
pub fn verify_protocol_default() -> bool {
    cfg!(debug_assertions) || std::env::var_os("PRA_VERIFY_PROTOCOL").is_some()
}

/// Default starvation-escalation age, in memory cycles. Orders of magnitude
/// above the worst queue residency a full 64-entry queue produces under
/// refresh and write-drain pressure, so only genuinely pathological streams
/// engage escalation.
pub const DEFAULT_ESCALATION_AGE: u64 = 20_000;

/// Row-buffer management policy (Section 5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Keep rows open while any queued request can still hit them; close
    /// otherwise and enter precharge power-down when idle. Paired with
    /// row-interleaved mapping in the paper.
    #[default]
    RelaxedClosePage,
    /// Auto-precharge after every column access (every request pays a full
    /// ACT/PRE pair). Paired with line-interleaved mapping in the paper.
    RestrictedClosePage,
    /// Keep rows open until a conflicting request or refresh forces them
    /// closed (no idle close, no precharge power-down). Not evaluated by
    /// the paper; provided as the conventional third point of comparison.
    OpenPage,
}

impl PagePolicy {
    /// The address mapping the paper pairs with this policy.
    pub fn paper_mapping(self) -> AddressMapping {
        match self {
            PagePolicy::RelaxedClosePage | PagePolicy::OpenPage => AddressMapping::RowInterleaved,
            PagePolicy::RestrictedClosePage => AddressMapping::LineInterleaved,
        }
    }
}

/// Request queue sizing (Table 3: 64/64 entries, 48/16 watermarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueConfig {
    /// Read queue capacity per channel.
    pub read_capacity: usize,
    /// Write queue capacity per channel.
    pub write_capacity: usize,
    /// Entering write-drain mode at or above this occupancy.
    pub write_high_watermark: usize,
    /// Leaving write-drain mode at or below this occupancy.
    pub write_low_watermark: usize,
}

impl QueueConfig {
    /// The paper's Table 3 queue configuration.
    pub const fn paper_table3() -> Self {
        QueueConfig {
            read_capacity: 64,
            write_capacity: 64,
            write_high_watermark: 48,
            write_low_watermark: 16,
        }
    }

    /// Checks watermark ordering and capacity sanity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Queues`] naming the inconsistent field pair.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.read_capacity == 0 || self.write_capacity == 0 {
            return Err(ConfigError::Queues("queues must be non-empty".into()));
        }
        if self.write_low_watermark >= self.write_high_watermark {
            return Err(ConfigError::Queues(format!(
                "low watermark {} must be below high {}",
                self.write_low_watermark, self.write_high_watermark
            )));
        }
        if self.write_high_watermark > self.write_capacity {
            return Err(ConfigError::Queues(format!(
                "high watermark {} exceeds capacity {}",
                self.write_high_watermark, self.write_capacity
            )));
        }
        Ok(())
    }

    /// Panicking wrapper around [`QueueConfig::validate`] for call sites
    /// where a bad configuration is a construction-time bug.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on any inconsistency.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            // sim-lint: allow(no-panic-hot-path): documented panicking facade over validate(), runs once before simulation
            panic!("{e}");
        }
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig::paper_table3()
    }
}

/// Complete configuration of the simulated memory system.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// Physical address mapping.
    pub mapping: AddressMapping,
    /// Timing parameter set.
    pub timing: TimingParams,
    /// Queue sizing and watermarks.
    pub queues: QueueConfig,
    /// Row-buffer management policy.
    pub policy: PagePolicy,
    /// Maximum consecutive row-buffer hits served while other requests wait
    /// (the paper restricts this to four, citing fairness [15]).
    pub row_hit_cap: u32,
    /// Activation scheme under evaluation.
    pub scheme: SchemeBehavior,
    /// Power parameters for energy accounting.
    pub power: PowerParams,
    /// Re-verify every issued command against the independent
    /// [`ProtocolChecker`](crate::ProtocolChecker) (panics on violation).
    /// Defaults to [`verify_protocol_default`]: on in debug builds — the
    /// whole test suite runs verified — and off in release builds unless
    /// `PRA_VERIFY_PROTOCOL` is set in the environment.
    pub verify_protocol: bool,
    /// Refreshes the controller may postpone while a rank is busy (DDR3/4
    /// permit up to 8). While debt stays at or below this bound, refresh
    /// only happens opportunistically on idle ranks; beyond it the rank is
    /// forcibly closed. 0 (default) reproduces the paper's strict
    /// refresh-on-schedule behaviour.
    pub refresh_postpone_max: u32,
    /// Cycle-domain liveness watchdog bounds (both disabled by default).
    /// See [`LivenessConfig`]; violations surface as
    /// [`LivenessError`](crate::LivenessError) on the `try_tick` path.
    pub liveness: LivenessConfig,
    /// Age (in memory cycles) past which the oldest queued request is
    /// escalated: the scheduler stops serving row-buffer hits that keep its
    /// bank occupied and switches to its queue until it retires, so a
    /// continuous hit stream cannot starve it indefinitely. 0 disables
    /// escalation. The default (20 000 cycles) is far above any age a
    /// healthy FR-FCFS schedule produces, so it only engages on
    /// pathological streams.
    pub starvation_escalation_age: u64,
    /// Optional recovery pipeline for faulted commands: DDR4-style C/A
    /// parity with a delayed ALERT_n signal, bounded command replay with
    /// per-row retry budgets, and a health scoreboard that demotes rows
    /// with persistent mask faults to full-row activation. `None` (the
    /// default) disables detection entirely, reproducing the legacy
    /// inject-and-degrade behaviour.
    pub recovery: Option<RecoveryConfig>,
}

impl DramConfig {
    /// The paper's baseline configuration under the given policy and scheme.
    pub fn paper_baseline(policy: PagePolicy, scheme: SchemeBehavior) -> Self {
        DramConfig {
            geometry: DramGeometry::baseline_ddr3(),
            mapping: policy.paper_mapping(),
            timing: TimingParams::ddr3_1600_table3(),
            queues: QueueConfig::paper_table3(),
            policy,
            row_hit_cap: 4,
            scheme,
            power: PowerParams::paper_table3(),
            verify_protocol: verify_protocol_default(),
            refresh_postpone_max: 0,
            liveness: LivenessConfig::disabled(),
            starvation_escalation_age: DEFAULT_ESCALATION_AGE,
            recovery: None,
        }
    }

    /// A DDR4-2400 configuration (8 Gb x8 chips, 16 banks/rank, 32 GB) with
    /// estimated power parameters — an exploration target beyond the
    /// paper's DDR3 baseline. Bank groups are not modelled; conservative
    /// same-group timings apply (see `TimingParams::ddr4_2400`).
    pub fn ddr4_2400(policy: PagePolicy, scheme: SchemeBehavior) -> Self {
        DramConfig {
            geometry: DramGeometry::ddr4_8gb_x8(),
            mapping: policy.paper_mapping(),
            timing: TimingParams::ddr4_2400(),
            queues: QueueConfig::paper_table3(),
            policy,
            row_hit_cap: 4,
            scheme,
            power: PowerParams::ddr4_2400_estimate(),
            verify_protocol: verify_protocol_default(),
            refresh_postpone_max: 0,
            liveness: LivenessConfig::disabled(),
            starvation_escalation_age: DEFAULT_ESCALATION_AGE,
            recovery: None,
        }
    }

    /// Validates geometry, timing and queues together.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: inconsistent geometry
    /// (zero or non-power-of-two banks/ranks, bad MAT pairing), timing
    /// (e.g. tRAS < tRCD + CL), queue watermarks above capacity, or a
    /// zero row-hit cap.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.geometry
            .validate()
            .map_err(|e| ConfigError::Geometry(e.to_string()))?;
        self.timing.validate().map_err(ConfigError::Timing)?;
        self.queues.validate()?;
        if self.row_hit_cap < 1 {
            return Err(ConfigError::RowHitCap);
        }
        if self.liveness.max_queue_age_cycles > 0
            && self.starvation_escalation_age > 0
            && self.liveness.max_queue_age_cycles <= self.starvation_escalation_age
        {
            return Err(ConfigError::Liveness(format!(
                "starvation watchdog bound {} must exceed the escalation age {} \
                 (otherwise the watchdog kills runs escalation would have rescued)",
                self.liveness.max_queue_age_cycles, self.starvation_escalation_age
            )));
        }
        if let Some(rec) = &self.recovery {
            rec.validate()
                .map_err(|e| ConfigError::Recovery(e.to_string()))?;
            // A faulted command can legally sit in the queue for the whole
            // replay ladder; if that window reaches the starvation bound,
            // the watchdog kills exactly the runs recovery exists to save.
            let replay_window = u64::from(rec.max_retries).saturating_mul(rec.backoff_cycles);
            if self.liveness.max_queue_age_cycles > 0
                && replay_window >= self.liveness.max_queue_age_cycles
            {
                return Err(ConfigError::Recovery(format!(
                    "recovery replay window (max_retries {} x backoff_cycles {} = {} cycles) \
                     must stay below the starvation watchdog bound \
                     liveness.max_queue_age_cycles {} — the watchdog would classify a \
                     still-replaying request as starved",
                    rec.max_retries,
                    rec.backoff_cycles,
                    replay_window,
                    self.liveness.max_queue_age_cycles
                )));
            }
        }
        Ok(())
    }

    /// Panicking wrapper around [`DramConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on any inconsistency.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            // sim-lint: allow(no-panic-hot-path): documented panicking facade over validate(), runs once before simulation
            panic!("invalid DRAM configuration: {e}");
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_valid() {
        DramConfig::default().assert_valid();
        DramConfig::paper_baseline(PagePolicy::RestrictedClosePage, SchemeBehavior::pra())
            .assert_valid();
    }

    #[test]
    fn ddr4_config_is_valid() {
        DramConfig::ddr4_2400(PagePolicy::RelaxedClosePage, SchemeBehavior::pra()).assert_valid();
    }

    #[test]
    fn policy_mappings_follow_paper() {
        assert_eq!(
            PagePolicy::RelaxedClosePage.paper_mapping(),
            AddressMapping::RowInterleaved
        );
        assert_eq!(
            PagePolicy::RestrictedClosePage.paper_mapping(),
            AddressMapping::LineInterleaved
        );
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn bad_watermarks_rejected() {
        let q = QueueConfig {
            read_capacity: 64,
            write_capacity: 64,
            write_high_watermark: 16,
            write_low_watermark: 48,
        };
        q.assert_valid();
    }

    #[test]
    fn validate_rejects_watermark_above_capacity() {
        let mut cfg = DramConfig::default();
        cfg.queues.write_high_watermark = cfg.queues.write_capacity + 1;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Queues(_)));
        assert!(err.to_string().contains("exceeds capacity"), "{err}");
    }

    #[test]
    fn validate_rejects_inverted_watermarks() {
        let mut cfg = DramConfig::default();
        cfg.queues.write_low_watermark = 48;
        cfg.queues.write_high_watermark = 16;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("low watermark"), "{err}");
    }

    #[test]
    fn validate_rejects_empty_queues() {
        let mut cfg = DramConfig::default();
        cfg.queues.read_capacity = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("non-empty"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_banks() {
        let mut cfg = DramConfig::default();
        cfg.geometry.banks_per_rank = 0;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Geometry(_)));
        assert!(err.to_string().contains("bank"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_ranks() {
        let mut cfg = DramConfig::default();
        cfg.geometry.ranks_per_channel = 0;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Geometry(_)));
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn validate_rejects_short_tras() {
        let mut cfg = DramConfig::default();
        cfg.timing.tras = cfg.timing.trcd + cfg.timing.tcas - 1;
        cfg.timing.trc = cfg.timing.tras + cfg.timing.trp;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Timing(_)));
        assert!(err.to_string().contains("tRAS"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_row_hit_cap() {
        let cfg = DramConfig {
            row_hit_cap: 0,
            ..DramConfig::default()
        };
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::RowHitCap);
    }

    #[test]
    fn validate_rejects_watchdog_bound_below_escalation_age() {
        let mut cfg = DramConfig {
            starvation_escalation_age: 500,
            ..DramConfig::default()
        };
        cfg.liveness.max_queue_age_cycles = 400;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Liveness(_)));
        assert!(err.to_string().contains("escalation age"), "{err}");
        // Disabling escalation (or raising the bound) makes it valid again.
        cfg.starvation_escalation_age = 0;
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_recovery_config() {
        let mut cfg = DramConfig {
            recovery: Some(RecoveryConfig {
                alert_latency: 0,
                ..RecoveryConfig::default()
            }),
            ..DramConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Recovery(_)));
        assert!(err.to_string().contains("alert_latency"), "{err}");
        cfg.recovery = Some(RecoveryConfig::default());
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_replay_window_at_or_above_starvation_bound() {
        // 5 retries x 200 backoff = 1000 >= a 1000-cycle starvation bound:
        // the watchdog would kill a request that is still mid-replay.
        let mut cfg = DramConfig {
            recovery: Some(RecoveryConfig {
                max_retries: 5,
                backoff_cycles: 200,
                ..RecoveryConfig::default()
            }),
            // Disable escalation so its own (stricter) bound check does not
            // fire first — this test isolates the replay-window rule.
            starvation_escalation_age: 0,
            ..DramConfig::default()
        };
        cfg.liveness.max_queue_age_cycles = 1_000;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Recovery(_)));
        assert!(err.to_string().contains("max_retries 5"), "{err}");
        assert!(err.to_string().contains("backoff_cycles 200"), "{err}");
        assert!(
            err.to_string().contains("max_queue_age_cycles 1000"),
            "{err}"
        );
        // Either disarming the watchdog or shrinking the ladder fixes it.
        cfg.liveness.max_queue_age_cycles = 0;
        cfg.validate().unwrap();
        cfg.liveness.max_queue_age_cycles = 1_000;
        cfg.recovery = Some(RecoveryConfig {
            max_retries: 3,
            backoff_cycles: 8,
            ..RecoveryConfig::default()
        });
        cfg.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn assert_valid_panics_with_readable_message() {
        let cfg = DramConfig {
            row_hit_cap: 0,
            ..DramConfig::default()
        };
        cfg.assert_valid();
    }
}
