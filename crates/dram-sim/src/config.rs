//! Top-level memory-system configuration.

use dram_power::PowerParams;
use mem_model::{AddressMapping, DramGeometry};

use crate::scheme::SchemeBehavior;
use crate::timing::TimingParams;

/// Row-buffer management policy (Section 5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Keep rows open while any queued request can still hit them; close
    /// otherwise and enter precharge power-down when idle. Paired with
    /// row-interleaved mapping in the paper.
    #[default]
    RelaxedClosePage,
    /// Auto-precharge after every column access (every request pays a full
    /// ACT/PRE pair). Paired with line-interleaved mapping in the paper.
    RestrictedClosePage,
    /// Keep rows open until a conflicting request or refresh forces them
    /// closed (no idle close, no precharge power-down). Not evaluated by
    /// the paper; provided as the conventional third point of comparison.
    OpenPage,
}

impl PagePolicy {
    /// The address mapping the paper pairs with this policy.
    pub fn paper_mapping(self) -> AddressMapping {
        match self {
            PagePolicy::RelaxedClosePage | PagePolicy::OpenPage => AddressMapping::RowInterleaved,
            PagePolicy::RestrictedClosePage => AddressMapping::LineInterleaved,
        }
    }
}

/// Request queue sizing (Table 3: 64/64 entries, 48/16 watermarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueConfig {
    /// Read queue capacity per channel.
    pub read_capacity: usize,
    /// Write queue capacity per channel.
    pub write_capacity: usize,
    /// Entering write-drain mode at or above this occupancy.
    pub write_high_watermark: usize,
    /// Leaving write-drain mode at or below this occupancy.
    pub write_low_watermark: usize,
}

impl QueueConfig {
    /// The paper's Table 3 queue configuration.
    pub const fn paper_table3() -> Self {
        QueueConfig {
            read_capacity: 64,
            write_capacity: 64,
            write_high_watermark: 48,
            write_low_watermark: 16,
        }
    }

    /// Checks watermark ordering and capacity sanity.
    ///
    /// # Panics
    ///
    /// Panics if watermarks are inconsistent with capacities; configuration
    /// errors are construction-time bugs.
    pub fn assert_valid(&self) {
        assert!(
            self.read_capacity > 0 && self.write_capacity > 0,
            "queues must be non-empty"
        );
        assert!(
            self.write_low_watermark < self.write_high_watermark,
            "low watermark {} must be below high {}",
            self.write_low_watermark,
            self.write_high_watermark
        );
        assert!(
            self.write_high_watermark <= self.write_capacity,
            "high watermark {} exceeds capacity {}",
            self.write_high_watermark,
            self.write_capacity
        );
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig::paper_table3()
    }
}

/// Complete configuration of the simulated memory system.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// Physical address mapping.
    pub mapping: AddressMapping,
    /// Timing parameter set.
    pub timing: TimingParams,
    /// Queue sizing and watermarks.
    pub queues: QueueConfig,
    /// Row-buffer management policy.
    pub policy: PagePolicy,
    /// Maximum consecutive row-buffer hits served while other requests wait
    /// (the paper restricts this to four, citing fairness [15]).
    pub row_hit_cap: u32,
    /// Activation scheme under evaluation.
    pub scheme: SchemeBehavior,
    /// Power parameters for energy accounting.
    pub power: PowerParams,
    /// Re-verify every issued command against the independent
    /// [`ProtocolChecker`](crate::ProtocolChecker) (panics on violation).
    /// Defaults to on in debug builds — the whole test suite runs verified —
    /// and off in release builds.
    pub verify_protocol: bool,
    /// Refreshes the controller may postpone while a rank is busy (DDR3/4
    /// permit up to 8). While debt stays at or below this bound, refresh
    /// only happens opportunistically on idle ranks; beyond it the rank is
    /// forcibly closed. 0 (default) reproduces the paper's strict
    /// refresh-on-schedule behaviour.
    pub refresh_postpone_max: u32,
}

impl DramConfig {
    /// The paper's baseline configuration under the given policy and scheme.
    pub fn paper_baseline(policy: PagePolicy, scheme: SchemeBehavior) -> Self {
        DramConfig {
            geometry: DramGeometry::baseline_ddr3(),
            mapping: policy.paper_mapping(),
            timing: TimingParams::ddr3_1600_table3(),
            queues: QueueConfig::paper_table3(),
            policy,
            row_hit_cap: 4,
            scheme,
            power: PowerParams::paper_table3(),
            verify_protocol: cfg!(debug_assertions),
            refresh_postpone_max: 0,
        }
    }

    /// A DDR4-2400 configuration (8 Gb x8 chips, 16 banks/rank, 32 GB) with
    /// estimated power parameters — an exploration target beyond the
    /// paper's DDR3 baseline. Bank groups are not modelled; conservative
    /// same-group timings apply (see `TimingParams::ddr4_2400`).
    pub fn ddr4_2400(policy: PagePolicy, scheme: SchemeBehavior) -> Self {
        DramConfig {
            geometry: DramGeometry::ddr4_8gb_x8(),
            mapping: policy.paper_mapping(),
            timing: TimingParams::ddr4_2400(),
            queues: QueueConfig::paper_table3(),
            policy,
            row_hit_cap: 4,
            scheme,
            power: PowerParams::ddr4_2400_estimate(),
            verify_protocol: cfg!(debug_assertions),
            refresh_postpone_max: 0,
        }
    }

    /// Validates geometry, timing and queues together.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency; configurations are static inputs and a
    /// bad one is a programming error.
    pub fn assert_valid(&self) {
        self.geometry.validate().expect("geometry");
        self.timing.validate().expect("timing");
        self.queues.assert_valid();
        assert!(
            self.row_hit_cap >= 1,
            "row hit cap must allow at least one access"
        );
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_baseline(PagePolicy::RelaxedClosePage, SchemeBehavior::baseline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_valid() {
        DramConfig::default().assert_valid();
        DramConfig::paper_baseline(PagePolicy::RestrictedClosePage, SchemeBehavior::pra())
            .assert_valid();
    }

    #[test]
    fn ddr4_config_is_valid() {
        DramConfig::ddr4_2400(PagePolicy::RelaxedClosePage, SchemeBehavior::pra()).assert_valid();
    }

    #[test]
    fn policy_mappings_follow_paper() {
        assert_eq!(
            PagePolicy::RelaxedClosePage.paper_mapping(),
            AddressMapping::RowInterleaved
        );
        assert_eq!(
            PagePolicy::RestrictedClosePage.paper_mapping(),
            AddressMapping::LineInterleaved
        );
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn bad_watermarks_rejected() {
        let q = QueueConfig {
            read_capacity: 64,
            write_capacity: 64,
            write_high_watermark: 16,
            write_low_watermark: 48,
        };
        q.assert_valid();
    }
}
