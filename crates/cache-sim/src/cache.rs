//! A set-associative writeback cache tracking fine-grained dirty bits.

use mem_model::{PhysAddr, WordMask, LINE_BYTES};

/// Static shape of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access latency in CPU cycles (used by the core model, carried here
    /// for convenience).
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// The paper's 32 KB, 4-way, 2-cycle L1 data cache.
    pub const fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            latency_cycles: 2,
        }
    }

    /// The paper's 4 MB, 8-way, 20-cycle shared L2.
    pub const fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024 * 1024,
            ways: 8,
            latency_cycles: 20,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (LINE_BYTES as usize) / self.ways
    }

    /// Checks the shape is usable.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a whole power-of-two number of sets of
    /// whole lines.
    pub fn assert_valid(&self) {
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — construction-time config validation, runs once before simulation
        assert!(self.ways > 0, "cache needs at least one way");
        let lines = self.size_bytes / LINE_BYTES as usize;
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — construction-time config validation, runs once before simulation
        assert!(
            lines * LINE_BYTES as usize == self.size_bytes,
            "capacity must be a whole number of lines"
        );
        let sets = self.sets();
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — construction-time config validation, runs once before simulation
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
    }
}

/// One resident line's metadata (the simulator tracks no data payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Full line number (tag and index combined; sets re-derive the index).
    pub line: u64,
    /// Fine-grained dirty bits: one per 8 B word, [`WordMask::EMPTY`] when
    /// clean.
    pub dirty: WordMask,
    lru_stamp: u64,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub addr: PhysAddr,
    /// Its dirty mask; [`WordMask::EMPTY`] means no writeback needed.
    pub dirty: WordMask,
}

/// A set-associative, true-LRU, writeback cache with FGD dirty bits.
///
/// The cache stores only metadata — tags, valid bits and the 8 fine-grained
/// dirty bits per line that PRA's cache support adds (Section 4.1.4).
///
/// # Example
///
/// ```
/// use cache_sim::{Cache, CacheConfig};
/// use mem_model::{PhysAddr, WordMask};
///
/// let mut c = Cache::new(CacheConfig::paper_l1());
/// let a = PhysAddr::new(0x1000);
/// assert!(!c.contains(a));
/// assert_eq!(c.fill(a), None);
/// c.mark_dirty(a, WordMask::single(2));
/// assert_eq!(c.dirty_mask(a), Some(WordMask::single(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<LineMeta>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::assert_valid`]).
    pub fn new(config: CacheConfig) -> Self {
        config.assert_valid();
        Cache {
            sets: vec![Vec::with_capacity(config.ways); config.sets()],
            config,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// `true` if the line containing `addr` is resident. Does not touch LRU
    /// state or hit/miss counters.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let line = addr.line_number();
        self.sets[self.set_index(line)]
            .iter()
            .any(|l| l.line == line)
    }

    /// Looks the line up as a demand access: updates LRU and hit/miss
    /// counters, returns `true` on hit.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let line = addr.line_number();
        self.clock += 1;
        let set = self.set_index(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.line == line) {
            l.lru_stamp = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts the line (clean), evicting the LRU line of its set if full.
    /// Returns the victim, if any. No-op returning `None` if already
    /// resident.
    pub fn fill(&mut self, addr: PhysAddr) -> Option<Evicted> {
        let line = addr.line_number();
        self.clock += 1;
        let set_idx = self.set_index(line);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(l) = set.iter_mut().find(|l| l.line == line) {
            l.lru_stamp = self.clock;
            return None;
        }
        let victim = if set.len() == ways {
            // A full set is non-empty (ways >= 1 is config-validated), so the
            // LRU scan always finds a victim; fall back to way 0 regardless.
            let pos = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru_stamp)
                .map_or(0, |(pos, _)| pos);
            let v = set.swap_remove(pos);
            Some(Evicted {
                addr: PhysAddr::from_line_number(v.line),
                dirty: v.dirty,
            })
        } else {
            None
        };
        set.push(LineMeta {
            line,
            dirty: WordMask::EMPTY,
            lru_stamp: self.clock,
        });
        victim
    }

    /// ORs `mask` into the line's dirty bits. Returns `true` if the line was
    /// resident. (L1 stores dirty a single word; L1-to-L2 writebacks OR the
    /// whole evicted mask, per Section 4.1.4.)
    pub fn mark_dirty(&mut self, addr: PhysAddr, mask: WordMask) -> bool {
        let line = addr.line_number();
        let set = self.set_index(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.line == line) {
            l.dirty |= mask;
            true
        } else {
            false
        }
    }

    /// The line's dirty mask, if resident.
    pub fn dirty_mask(&self, addr: PhysAddr) -> Option<WordMask> {
        let line = addr.line_number();
        self.sets[self.set_index(line)]
            .iter()
            .find(|l| l.line == line)
            .map(|l| l.dirty)
    }

    /// Clears the line's dirty bits without evicting it (DBI's proactive
    /// writeback leaves lines valid but clean). Returns the previous mask.
    pub fn clean(&mut self, addr: PhysAddr) -> Option<WordMask> {
        let line = addr.line_number();
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|l| l.line == line).map(|l| {
            let prev = l.dirty;
            l.dirty = WordMask::EMPTY;
            prev
        })
    }

    /// Removes the line, returning its eviction record if it was resident.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<Evicted> {
        let line = addr.line_number();
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|l| l.line == line)?;
        let v = self.sets[set].swap_remove(pos);
        Some(Evicted {
            addr: PhysAddr::from_line_number(v.line),
            dirty: v.dirty,
        })
    }

    /// (hits, misses) counted by [`Cache::access`].
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Resident lines, in no particular order.
    pub fn iter_lines(&self) -> impl Iterator<Item = &LineMeta> {
        self.sets.iter().flatten()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl sim_snap::SnapState for Cache {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("cache");
        // Per-set Vec order is load-bearing: `fill`/`invalidate` use
        // `swap_remove`, so a restored cache must replay the exact layout,
        // not just the resident-line set.
        w.seq(self.sets.len());
        for set in &self.sets {
            w.seq(set.len());
            for l in set {
                w.u64(l.line);
                w.u8(l.dirty.bits());
                w.u64(l.lru_stamp);
            }
        }
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("cache")?;
        let sets = r.seq()?;
        if sets != self.sets.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "cache set count mismatch: snapshot has {sets}, config has {}",
                self.sets.len()
            )));
        }
        for set in &mut self.sets {
            set.clear();
            let ways = r.seq()?;
            for _ in 0..ways {
                let line = r.u64()?;
                let dirty = WordMask::from_bits(r.u8()?);
                let lru_stamp = r.u64()?;
                set.push(LineMeta {
                    line,
                    dirty,
                    lru_stamp,
                });
            }
        }
        self.clock = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency_cycles: 1,
        })
    }

    fn line(set: u64, n: u64) -> PhysAddr {
        PhysAddr::from_line_number(set + n * 4)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        let a = line(0, 0);
        assert!(!c.access(a));
        c.fill(a);
        assert!(c.access(a));
        assert_eq!(c.hit_miss_counts(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        let (a, b, d) = (line(1, 0), line(1, 1), line(1, 2));
        c.fill(a);
        c.fill(b);
        c.access(a); // a most recent
        let victim = c.fill(d).expect("set full");
        assert_eq!(victim.addr, b, "b was least recently used");
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn eviction_carries_dirty_mask() {
        let mut c = tiny();
        let (a, b, d) = (line(2, 0), line(2, 1), line(2, 2));
        c.fill(a);
        c.mark_dirty(a, WordMask::from_words([0, 3]));
        c.fill(b);
        c.access(b);
        let victim = c.fill(d).expect("evicts a");
        assert_eq!(victim.addr, a);
        assert_eq!(victim.dirty, WordMask::from_words([0, 3]));
    }

    #[test]
    fn dirty_bits_accumulate() {
        let mut c = tiny();
        let a = line(0, 1);
        c.fill(a);
        c.mark_dirty(a, WordMask::single(1));
        c.mark_dirty(a, WordMask::single(6));
        assert_eq!(c.dirty_mask(a), Some(WordMask::from_words([1, 6])));
    }

    #[test]
    fn clean_keeps_line_resident() {
        let mut c = tiny();
        let a = line(3, 0);
        c.fill(a);
        c.mark_dirty(a, WordMask::FULL);
        assert_eq!(c.clean(a), Some(WordMask::FULL));
        assert!(c.contains(a));
        assert_eq!(c.dirty_mask(a), Some(WordMask::EMPTY));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let a = line(0, 2);
        c.fill(a);
        c.mark_dirty(a, WordMask::single(0));
        let v = c.invalidate(a).unwrap();
        assert_eq!(v.dirty, WordMask::single(0));
        assert!(!c.contains(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn refill_of_resident_line_is_noop() {
        let mut c = tiny();
        let a = line(1, 0);
        c.fill(a);
        c.mark_dirty(a, WordMask::single(4));
        assert_eq!(c.fill(a), None);
        assert_eq!(
            c.dirty_mask(a),
            Some(WordMask::single(4)),
            "dirty bits survive"
        );
    }

    #[test]
    fn paper_configs_validate() {
        Cache::new(CacheConfig::paper_l1());
        Cache::new(CacheConfig::paper_l2());
        assert_eq!(CacheConfig::paper_l1().sets(), 128);
        assert_eq!(CacheConfig::paper_l2().sets(), 8192);
    }

    #[test]
    fn snapshot_roundtrip_preserves_layout_and_lru() {
        use sim_snap::SnapState;
        let mut c = tiny();
        // Build non-trivial state: evictions exercise swap_remove, so the
        // per-set order differs from insertion order.
        for n in 0..12u64 {
            c.fill(line(n % 4, n));
            if n % 3 == 0 {
                c.mark_dirty(line(n % 4, n), WordMask::single((n % 8) as u8));
            }
            c.access(line(n % 4, n / 2));
        }
        let mut w = sim_snap::SnapWriter::new();
        c.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut restored = tiny();
        let mut r = sim_snap::SnapReader::new(&bytes);
        restored.snap_load(&mut r).unwrap();
        r.finish().unwrap();

        // Continue both identically: LRU decisions and counters must match.
        for n in 12..24u64 {
            assert_eq!(c.fill(line(n % 4, n)), restored.fill(line(n % 4, n)));
            assert_eq!(
                c.access(line(n % 4, n / 2)),
                restored.access(line(n % 4, n / 2))
            );
        }
        assert_eq!(c.hit_miss_counts(), restored.hit_miss_counts());
    }

    #[test]
    fn snapshot_geometry_mismatch_is_an_error() {
        use sim_snap::SnapState;
        let c = tiny();
        let mut w = sim_snap::SnapWriter::new();
        c.snap_save(&mut w);
        let bytes = w.into_bytes();
        // An 8-set cache cannot absorb a 4-set snapshot.
        let mut other = Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            latency_cycles: 1,
        });
        let mut r = sim_snap::SnapReader::new(&bytes);
        assert!(other.snap_load(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 3 * 64,
            ways: 1,
            latency_cycles: 1,
        });
    }
}
