//! The Dirty-Block Index (DBI): row-grouped dirty-line tracking enabling
//! DRAM-aware proactive writeback (Seshadri et al., the paper's Section
//! 5.2.3 case study).

use std::collections::HashMap;

use mem_model::PhysAddr;

/// Tracks which LLC lines are dirty, grouped by the DRAM row they map to.
///
/// When a dirty line is evicted, [`Dbi::take_row_siblings`] returns every
/// *other* dirty line of the same DRAM row so the hierarchy can write them
/// back proactively (cleaning them in place), concentrating write row-buffer
/// hits.
///
/// Keys are opaque row identifiers; callers derive them from
/// [`mem_model::Location::row_key`] so the index needs no geometry
/// knowledge.
#[derive(Debug, Clone, Default)]
pub struct Dbi {
    rows: HashMap<u64, Vec<PhysAddr>>,
    tracked: u64,
}

impl Dbi {
    /// An empty index.
    pub fn new() -> Self {
        Dbi::default()
    }

    /// Records that `line` (line-aligned) in DRAM row `row_key` became
    /// dirty. Idempotent.
    pub fn mark_dirty(&mut self, row_key: u64, line: PhysAddr) {
        let lines = self.rows.entry(row_key).or_default();
        if !lines.contains(&line) {
            lines.push(line);
            self.tracked += 1;
        }
    }

    /// Records that `line` was cleaned or evicted.
    pub fn mark_clean(&mut self, row_key: u64, line: PhysAddr) {
        if let Some(lines) = self.rows.get_mut(&row_key) {
            if let Some(pos) = lines.iter().position(|&l| l == line) {
                lines.swap_remove(pos);
                self.tracked -= 1;
            }
            if lines.is_empty() {
                self.rows.remove(&row_key);
            }
        }
    }

    /// Removes and returns all dirty lines of `row_key` except `trigger`
    /// (which is being evicted anyway). The returned lines are no longer
    /// tracked; the caller cleans them in the LLC and emits writebacks.
    pub fn take_row_siblings(&mut self, row_key: u64, trigger: PhysAddr) -> Vec<PhysAddr> {
        let Some(mut lines) = self.rows.remove(&row_key) else {
            return Vec::new();
        };
        if let Some(pos) = lines.iter().position(|&l| l == trigger) {
            lines.swap_remove(pos);
            self.tracked -= 1;
        }
        self.tracked -= lines.len() as u64;
        lines
    }

    /// Dirty lines currently tracked.
    pub fn tracked_lines(&self) -> u64 {
        self.tracked
    }

    /// Dirty lines tracked for one row.
    pub fn row_len(&self, row_key: u64) -> usize {
        self.rows.get(&row_key).map_or(0, Vec::len)
    }
}

impl sim_snap::SnapState for Dbi {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("dbi");
        // Rows live in a HashMap whose iteration order is not deterministic;
        // serialize sorted by row key. The inner Vec order IS deterministic
        // (push/swap_remove driven by the access stream) and is preserved.
        let mut keys: Vec<u64> = self.rows.keys().copied().collect();
        keys.sort_unstable();
        w.seq(keys.len());
        for key in keys {
            let lines = &self.rows[&key];
            w.u64(key);
            w.seq(lines.len());
            for l in lines {
                w.u64(l.line_number());
            }
        }
        w.u64(self.tracked);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("dbi")?;
        self.rows.clear();
        let n_rows = r.seq()?;
        for _ in 0..n_rows {
            let key = r.u64()?;
            let n_lines = r.seq()?;
            let mut lines = Vec::with_capacity(n_lines);
            for _ in 0..n_lines {
                lines.push(PhysAddr::from_line_number(r.u64()?));
            }
            self.rows.insert(key, lines);
        }
        self.tracked = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> PhysAddr {
        PhysAddr::from_line_number(n)
    }

    #[test]
    fn marks_are_idempotent() {
        let mut dbi = Dbi::new();
        dbi.mark_dirty(7, a(1));
        dbi.mark_dirty(7, a(1));
        assert_eq!(dbi.tracked_lines(), 1);
        assert_eq!(dbi.row_len(7), 1);
    }

    #[test]
    fn clean_removes() {
        let mut dbi = Dbi::new();
        dbi.mark_dirty(7, a(1));
        dbi.mark_dirty(7, a(2));
        dbi.mark_clean(7, a(1));
        assert_eq!(dbi.tracked_lines(), 1);
        dbi.mark_clean(7, a(2));
        assert_eq!(dbi.row_len(7), 0);
        // Cleaning an untracked line is a no-op.
        dbi.mark_clean(7, a(3));
        assert_eq!(dbi.tracked_lines(), 0);
    }

    #[test]
    fn siblings_exclude_trigger_and_empty_the_row() {
        let mut dbi = Dbi::new();
        for n in 1..=4 {
            dbi.mark_dirty(9, a(n));
        }
        dbi.mark_dirty(10, a(100));
        let mut sibs = dbi.take_row_siblings(9, a(2));
        sibs.sort();
        assert_eq!(sibs, vec![a(1), a(3), a(4)]);
        assert_eq!(dbi.row_len(9), 0);
        assert_eq!(dbi.tracked_lines(), 1, "other rows untouched");
    }

    #[test]
    fn snapshot_roundtrip_preserves_rows_and_order() {
        use sim_snap::SnapState;
        let mut dbi = Dbi::new();
        for n in 1..=4 {
            dbi.mark_dirty(9, a(n));
        }
        dbi.mark_dirty(10, a(100));
        dbi.mark_clean(9, a(2)); // swap_remove scrambles the inner order
        let mut w = sim_snap::SnapWriter::new();
        dbi.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Dbi::new();
        restored.mark_dirty(99, a(7)); // stale state must be cleared
        let mut r = sim_snap::SnapReader::new(&bytes);
        restored.snap_load(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.tracked_lines(), dbi.tracked_lines());
        assert_eq!(restored.row_len(9), dbi.row_len(9));
        assert_eq!(restored.row_len(99), 0);
        // Inner order is preserved: sibling extraction matches exactly.
        assert_eq!(
            dbi.take_row_siblings(9, a(1)),
            restored.take_row_siblings(9, a(1))
        );
    }

    #[test]
    fn siblings_of_unknown_row_is_empty() {
        let mut dbi = Dbi::new();
        assert!(dbi.take_row_siblings(42, a(0)).is_empty());
    }
}
