//! Cache hierarchy with fine-grained dirty bits (FGD) for the PRA
//! reproduction.
//!
//! Implements the cache support PRA needs (paper Section 4.1.4):
//!
//! * [`Cache`] — a set-associative, true-LRU, writeback cache whose lines
//!   carry an 8-bit per-word dirty mask instead of a single dirty bit.
//! * [`CacheHierarchy`] — per-core L1 data caches over a shared inclusive
//!   L2. Stores dirty individual words in L1; evicted L1 lines OR their
//!   masks into L2; evicted dirty L2 lines surface as writebacks carrying
//!   the accumulated mask, which the memory controller uses as the PRA
//!   mask. The hierarchy also records the dirty-word distribution of LLC
//!   evictions (the paper's Figure 3).
//! * [`Dbi`] — the Dirty-Block Index used in the Section 5.2.3 case study:
//!   when a dirty line leaves the LLC, all other dirty lines of the same
//!   DRAM row are proactively written back (cleaned in place).
//!
//! # Example
//!
//! ```
//! use cache_sim::{CacheHierarchy, HierarchyConfig};
//! use mem_model::{PhysAddr, WordMask};
//!
//! let mut caches = CacheHierarchy::new(HierarchyConfig::paper(4));
//! caches.access(0, PhysAddr::new(0x1000), Some(WordMask::single(0)));
//! let writebacks = caches.flush();
//! assert_eq!(writebacks[0].1, WordMask::single(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dbi;
mod hierarchy;

pub use cache::{Cache, CacheConfig, Evicted, LineMeta};
pub use dbi::Dbi;
pub use hierarchy::{Access, CacheHierarchy, HierarchyConfig, HierarchyStats, HitLevel};
