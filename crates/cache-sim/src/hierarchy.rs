//! Two-level cache hierarchy with fine-grained dirty bits and optional DBI.

use mem_model::{AddressMapping, DramGeometry, PhysAddr, WordMask, WORDS_PER_LINE};
use sim_fault::{FaultCounts, FaultInjector};
use sim_obs::{SinkHandle, TraceEvent, TraceSink};

use crate::cache::{Cache, CacheConfig, Evicted};
use crate::dbi::Dbi;

/// Shape of the hierarchy: per-core L1s over a shared L2.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 (the LLC).
    pub l2: CacheConfig,
    /// Number of cores (each gets a private L1).
    pub cores: usize,
    /// Enables the Dirty-Block Index proactive writeback.
    pub dbi: bool,
    /// Enables a next-line prefetcher: each demand L2 miss also allocates
    /// and fetches the following line (sequential prefetching; an extension
    /// beyond the paper's configuration, off by default).
    pub prefetch_next_line: bool,
}

impl HierarchyConfig {
    /// The paper's hierarchy (Table 3): 32 KB L1s, one shared 4 MB L2.
    pub const fn paper(cores: usize) -> Self {
        HierarchyConfig {
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            cores,
            dbi: false,
            prefetch_next_line: false,
        }
    }

    /// Same hierarchy with DBI enabled.
    pub const fn paper_with_dbi(cores: usize) -> Self {
        HierarchyConfig {
            dbi: true,
            ..Self::paper(cores)
        }
    }
}

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Miss in both levels; DRAM must be read.
    Memory,
}

/// Result of one access: where it hit and the DRAM traffic it generated.
#[derive(Debug, Clone)]
pub struct Access {
    /// Serving level.
    pub level: HitLevel,
    /// Demand line to fetch from DRAM (present iff `level == Memory`).
    pub fill_read: Option<PhysAddr>,
    /// Prefetched line to fetch from DRAM (next-line prefetcher; the line
    /// is already allocated in the L2, the fetch is non-blocking).
    pub prefetch_read: Option<PhysAddr>,
    /// Writebacks to send to DRAM: `(line address, FGD dirty mask)`.
    pub writebacks: Vec<(PhysAddr, WordMask)>,
}

/// Counters the hierarchy collects.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// L1 hits across all cores.
    pub l1_hits: u64,
    /// L1 misses across all cores.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Dirty LLC evictions by dirty-word count: `hist[k]` counts evictions
    /// with `k+1` dirty words (the paper's Figure 3 distribution).
    pub evict_dirty_hist: [u64; WORDS_PER_LINE],
    /// Demand writebacks issued (dirty LLC evictions).
    pub writebacks: u64,
    /// Additional proactive writebacks issued by DBI.
    pub dbi_writebacks: u64,
    /// Next-line prefetches issued.
    pub prefetches: u64,
}

impl HierarchyStats {
    /// Mirrors every counter into `reg` under canonical `cache.*` names so
    /// epoch snapshots cover the hierarchy alongside the DRAM metrics.
    /// Registration is idempotent; call whenever the registry should be
    /// brought up to date.
    pub fn publish_to(&self, reg: &mut sim_obs::MetricsRegistry) {
        let mut set = |name: &str, value: u64| {
            let id = reg.counter(name);
            reg.set_counter(id, value);
        };
        set("cache.l1.hits", self.l1_hits);
        set("cache.l1.misses", self.l1_misses);
        set("cache.l2.hits", self.l2_hits);
        set("cache.l2.misses", self.l2_misses);
        set("cache.writebacks", self.writebacks);
        set("cache.writebacks.dbi", self.dbi_writebacks);
        set("cache.prefetches", self.prefetches);
        set("cache.evictions.dirty", self.evict_dirty_hist.iter().sum());
    }

    /// Figure 3: proportion of evicted dirty lines with `k+1` dirty words.
    pub fn dirty_word_proportions(&self) -> [f64; WORDS_PER_LINE] {
        let total: u64 = self.evict_dirty_hist.iter().sum();
        let mut out = [0.0; WORDS_PER_LINE];
        if total == 0 {
            return out;
        }
        for (o, &c) in out.iter_mut().zip(self.evict_dirty_hist.iter()) {
            *o = c as f64 / total as f64;
        }
        out
    }

    /// Mean dirty words per dirty LLC eviction.
    pub fn avg_dirty_words(&self) -> f64 {
        let total: u64 = self.evict_dirty_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .evict_dirty_hist
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Per-core L1 data caches over a shared, inclusive L2, maintaining PRA's
/// fine-grained dirty bits end to end (Section 4.1.4): stores set per-word
/// dirty bits in L1; L1 evictions OR their bits into L2; L2 evictions hand
/// the accumulated mask to the memory controller as the PRA mask.
///
/// # Example
///
/// ```
/// use cache_sim::{CacheHierarchy, HierarchyConfig, HitLevel};
/// use mem_model::{PhysAddr, WordMask};
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::paper(1));
/// let a = PhysAddr::new(0x4000);
/// let first = h.access(0, a, Some(WordMask::single(0)));
/// assert_eq!(first.level, HitLevel::Memory); // cold store misses, allocates
/// let again = h.access(0, a, None);
/// assert_eq!(again.level, HitLevel::L1);
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1s: Vec<Cache>,
    l2: Cache,
    dbi: Option<Dbi>,
    geometry: DramGeometry,
    mapping: AddressMapping,
    stats: HierarchyStats,
    sink: SinkHandle,
    /// CPU cycle stamped onto emitted trace events; the driving system
    /// keeps it current via [`CacheHierarchy::set_now`].
    now: u64,
    /// Optional FGD dirty-bit fault source (see [`sim_fault`]); `None`
    /// leaves eviction masks untouched.
    faults: Option<FaultInjector>,
}

impl CacheHierarchy {
    /// Builds the hierarchy with the baseline DRAM geometry/mapping for DBI
    /// row grouping.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores == 0` or a cache shape is invalid.
    pub fn new(config: HierarchyConfig) -> Self {
        Self::with_dram_view(
            config,
            DramGeometry::baseline_ddr3(),
            AddressMapping::RowInterleaved,
        )
    }

    /// Builds the hierarchy with an explicit DRAM view (geometry + mapping),
    /// which DBI uses to group lines into rows.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores == 0` or a cache shape is invalid.
    pub fn with_dram_view(
        config: HierarchyConfig,
        geometry: DramGeometry,
        mapping: AddressMapping,
    ) -> Self {
        // sim-lint: allow(no-panic-hot-path): constructor argument contract, runs once before simulation
        assert!(config.cores > 0, "need at least one core");
        CacheHierarchy {
            l1s: (0..config.cores).map(|_| Cache::new(config.l1)).collect(),
            l2: Cache::new(config.l2),
            dbi: config.dbi.then(Dbi::new),
            geometry,
            mapping,
            stats: HierarchyStats::default(),
            sink: SinkHandle::disabled(),
            now: 0,
            faults: None,
            config,
        }
    }

    /// Attaches a fault injector that can set spurious FGD dirty bits on L2
    /// evictions (fail-safe direction only: a flipped bit widens the
    /// writeback mask, it never drops dirty data). Without one, eviction
    /// masks are exactly the merged L1/L2 dirty bits.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Fault-event counters accumulated by the attached injector (zero when
    /// no injector is attached).
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults
            .as_ref()
            .map(FaultInjector::counts)
            .unwrap_or_default()
    }

    /// Publishes cache counters and (when an injector is attached) fault
    /// counters into `reg`. Outer layers should call this instead of
    /// `stats().publish_to` so fault metrics reach epoch snapshots too.
    pub fn publish_metrics(&self, reg: &mut sim_obs::MetricsRegistry) {
        self.stats.publish_to(reg);
        if let Some(f) = &self.faults {
            f.publish_to(reg, "fault.cache");
        }
    }

    /// Attaches a trace sink; subsequent fills and writebacks are emitted
    /// as [`TraceEvent`]s stamped with the cycle set via
    /// [`CacheHierarchy::set_now`].
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = SinkHandle::new(sink);
    }

    /// Updates the CPU cycle stamped onto trace events.
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Collected statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zeroes the statistics, keeping cache contents. Called after a
    /// functional warmup phase so measurements reflect steady state only.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// L1/L2 access latencies in CPU cycles, for the core model.
    pub fn latencies(&self) -> (u64, u64) {
        (self.config.l1.latency_cycles, self.config.l2.latency_cycles)
    }

    /// Performs one load (`store == None`) or store (`store == Some(mask)`)
    /// by core `core` at `addr`. Cache state updates immediately; the caller
    /// handles the timing of any returned DRAM traffic.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or a store mask is empty.
    pub fn access(&mut self, core: usize, addr: PhysAddr, store: Option<WordMask>) -> Access {
        let _prof = sim_prof::span!("cache.access");
        let a = addr.line_aligned();
        if let Some(mask) = store {
            // sim-lint: allow(no-panic-hot-path): documented # Panics contract — an empty store mask is a caller bug, not a workload property
            assert!(!mask.is_empty(), "a store must dirty at least one word");
        }
        let mut writebacks = Vec::new();

        // L1.
        if self.l1s[core].access(a) {
            self.stats.l1_hits += 1;
            if let Some(mask) = store {
                self.l1s[core].mark_dirty(a, mask);
            }
            return Access {
                level: HitLevel::L1,
                fill_read: None,
                prefetch_read: None,
                writebacks,
            };
        }
        self.stats.l1_misses += 1;

        // L2.
        let l2_hit = self.l2.access(a);
        let mut prefetch_read = None;
        let level = if l2_hit {
            self.stats.l2_hits += 1;
            HitLevel::L2
        } else {
            self.stats.l2_misses += 1;
            if let Some(victim) = self.l2.fill(a) {
                self.handle_l2_eviction(victim, &mut writebacks);
            }
            if self.config.prefetch_next_line {
                let next = a.offset(mem_model::LINE_BYTES);
                if !self.l2.contains(next) {
                    if let Some(victim) = self.l2.fill(next) {
                        self.handle_l2_eviction(victim, &mut writebacks);
                    }
                    self.stats.prefetches += 1;
                    prefetch_read = Some(next);
                }
            }
            HitLevel::Memory
        };

        // Fill L1 (write-allocate) and apply the store's dirty bits.
        if let Some(victim) = self.l1s[core].fill(a) {
            self.handle_l1_eviction(victim, &mut writebacks);
        }
        if let Some(mask) = store {
            self.l1s[core].mark_dirty(a, mask);
        }

        let (now, from_memory) = (self.now, level == HitLevel::Memory);
        self.sink.emit(|| TraceEvent::CacheFill {
            cycle: now,
            core: core as u8,
            line: a.line_number(),
            from_memory,
        });

        Access {
            level,
            fill_read: (level == HitLevel::Memory).then_some(a),
            prefetch_read,
            writebacks,
        }
    }

    /// An L1 victim writes its FGD bits back into L2 (ORed, Section 4.1.4).
    fn handle_l1_eviction(&mut self, victim: Evicted, writebacks: &mut Vec<(PhysAddr, WordMask)>) {
        if victim.dirty.is_empty() {
            return;
        }
        if self.l2.contains(victim.addr) {
            self.l2.mark_dirty(victim.addr, victim.dirty);
        } else {
            // Inclusion slipped (the L2 victimised this line earlier this
            // very access); allocate and dirty it.
            if let Some(l2_victim) = self.l2.fill(victim.addr) {
                self.handle_l2_eviction(l2_victim, writebacks);
            }
            self.l2.mark_dirty(victim.addr, victim.dirty);
        }
        if let Some(dbi) = self.dbi.as_mut() {
            dbi.mark_dirty(
                self.mapping
                    .decode(victim.addr, &self.geometry)
                    .row_key(&self.geometry),
                victim.addr,
            );
        }
    }

    /// An L2 victim: back-invalidate L1 copies (inclusive hierarchy), merge
    /// their dirty bits, emit the writeback, and let DBI proactively clean
    /// the victim's row siblings.
    fn handle_l2_eviction(&mut self, victim: Evicted, writebacks: &mut Vec<(PhysAddr, WordMask)>) {
        let mut mask = victim.dirty;
        for l1 in &mut self.l1s {
            if let Some(copy) = l1.invalidate(victim.addr) {
                mask |= copy.dirty;
            }
        }
        // Injected FGD upset: a spurious dirty bit widens the mask (a clean
        // eviction can become a one-word spurious writeback). Bits are only
        // ever set — clearing one would silently lose data.
        if let Some(inj) = self.faults.as_mut() {
            if let Some(widened) = inj.flip_dirty_bit(mask) {
                mask = widened;
            }
        }
        if mask.is_empty() {
            return;
        }
        self.stats.evict_dirty_hist[(mask.count_words() - 1) as usize] += 1;
        self.stats.writebacks += 1;
        writebacks.push((victim.addr, mask));
        let now = self.now;
        self.sink.emit(|| TraceEvent::CacheWriteback {
            cycle: now,
            line: victim.addr.line_number(),
            mask: mask.bits(),
            dbi: false,
        });

        if let Some(dbi) = self.dbi.as_mut() {
            let row = self
                .mapping
                .decode(victim.addr, &self.geometry)
                .row_key(&self.geometry);
            dbi.mark_clean(row, victim.addr);
            for sibling in dbi.take_row_siblings(row, victim.addr) {
                if let Some(sib_mask) = self.l2.clean(sibling) {
                    if !sib_mask.is_empty() {
                        self.stats.dbi_writebacks += 1;
                        writebacks.push((sibling, sib_mask));
                        self.sink.emit(|| TraceEvent::CacheWriteback {
                            cycle: now,
                            line: sibling.line_number(),
                            mask: sib_mask.bits(),
                            dbi: true,
                        });
                    }
                }
            }
        }
    }

    /// Flushes every dirty line out of the hierarchy (end-of-run drain),
    /// returning the writebacks. Leaves the caches empty.
    pub fn flush(&mut self) -> Vec<(PhysAddr, WordMask)> {
        let mut writebacks = Vec::new();
        // L1s first so their bits merge into L2.
        for core in 0..self.l1s.len() {
            let lines: Vec<PhysAddr> = self.l1s[core]
                .iter_lines()
                .map(|l| PhysAddr::from_line_number(l.line))
                .collect();
            for a in lines {
                if let Some(v) = self.l1s[core].invalidate(a) {
                    self.handle_l1_eviction(v, &mut writebacks);
                }
            }
        }
        let lines: Vec<PhysAddr> = self
            .l2
            .iter_lines()
            .map(|l| PhysAddr::from_line_number(l.line))
            .collect();
        for a in lines {
            if let Some(v) = self.l2.invalidate(a) {
                self.handle_l2_eviction(v, &mut writebacks);
            }
        }
        writebacks
    }
}

impl sim_snap::SnapState for HierarchyStats {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.u64(self.l1_hits);
        w.u64(self.l1_misses);
        w.u64(self.l2_hits);
        w.u64(self.l2_misses);
        for &c in &self.evict_dirty_hist {
            w.u64(c);
        }
        w.u64(self.writebacks);
        w.u64(self.dbi_writebacks);
        w.u64(self.prefetches);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        self.l1_hits = r.u64()?;
        self.l1_misses = r.u64()?;
        self.l2_hits = r.u64()?;
        self.l2_misses = r.u64()?;
        for c in &mut self.evict_dirty_hist {
            *c = r.u64()?;
        }
        self.writebacks = r.u64()?;
        self.dbi_writebacks = r.u64()?;
        self.prefetches = r.u64()?;
        Ok(())
    }
}

impl sim_snap::SnapState for CacheHierarchy {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("cache-hierarchy");
        // config/geometry/mapping are rebuilt from the run configuration and
        // covered by the snapshot header's config digest; the trace sink is
        // deliberately not snapshotted (output restarts at the restore
        // point).
        w.seq(self.l1s.len());
        for l1 in &self.l1s {
            l1.snap_save(w);
        }
        self.l2.snap_save(w);
        w.bool(self.dbi.is_some());
        if let Some(dbi) = &self.dbi {
            dbi.snap_save(w);
        }
        self.stats.snap_save(w);
        w.u64(self.now);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap_save(w);
        }
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("cache-hierarchy")?;
        let cores = r.seq()?;
        if cores != self.l1s.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "core count mismatch: snapshot has {cores}, config has {}",
                self.l1s.len()
            )));
        }
        for l1 in &mut self.l1s {
            l1.snap_load(r)?;
        }
        self.l2.snap_load(r)?;
        let has_dbi = r.bool()?;
        if has_dbi != self.dbi.is_some() {
            return Err(sim_snap::SnapError::Decode(format!(
                "DBI mismatch: snapshot {}, config {}",
                has_dbi,
                self.dbi.is_some()
            )));
        }
        if let Some(dbi) = self.dbi.as_mut() {
            dbi.snap_load(r)?;
        }
        self.stats.snap_load(r)?;
        self.now = r.u64()?;
        let has_faults = r.bool()?;
        if has_faults != self.faults.is_some() {
            return Err(sim_snap::SnapError::Decode(format!(
                "fault injector mismatch: snapshot {}, config {}",
                has_faults,
                self.faults.is_some()
            )));
        }
        if let Some(f) = self.faults.as_mut() {
            f.snap_load(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(cores: usize, dbi: bool) -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 512,
                ways: 2,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                size_bytes: 2048,
                ways: 2,
                latency_cycles: 20,
            },
            cores,
            dbi,
            prefetch_next_line: false,
        }
    }

    fn h(cores: usize, dbi: bool) -> CacheHierarchy {
        CacheHierarchy::new(tiny_config(cores, dbi))
    }

    #[test]
    fn miss_then_l1_hit_then_l2_hit() {
        let mut h = h(1, false);
        let a = PhysAddr::new(0x1000);
        assert_eq!(h.access(0, a, None).level, HitLevel::Memory);
        assert_eq!(h.access(0, a, None).level, HitLevel::L1);
        // Thrash L1 set (2 ways) with two conflicting lines; L1 sets = 4,
        // lines conflicting with 0x1000 are 0x1000 + k*4*64.
        let b = PhysAddr::new(0x1000 + 4 * 64);
        let c = PhysAddr::new(0x1000 + 8 * 64);
        h.access(0, b, None);
        h.access(0, c, None);
        assert_eq!(
            h.access(0, a, None).level,
            HitLevel::L2,
            "evicted from L1, still in L2"
        );
    }

    #[test]
    fn store_sets_word_dirty_and_mask_propagates_to_writeback() {
        let mut h = h(1, false);
        let a = PhysAddr::new(0x2000);
        h.access(0, a, Some(WordMask::single(3)));
        h.access(0, a.offset(8 * 5), Some(WordMask::single(5)));
        let wbs = h.flush();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].0, a);
        assert_eq!(wbs[0].1, WordMask::from_words([3, 5]));
        assert_eq!(h.stats().evict_dirty_hist[1], 1, "two dirty words");
    }

    #[test]
    fn l1_eviction_ors_bits_into_l2() {
        let mut h = h(1, false);
        let a = PhysAddr::new(0x1000);
        h.access(0, a, Some(WordMask::single(0)));
        // Force a out of L1 (same L1 set: stride 4 lines).
        h.access(0, PhysAddr::new(0x1000 + 4 * 64), Some(WordMask::single(1)));
        h.access(0, PhysAddr::new(0x1000 + 8 * 64), Some(WordMask::single(2)));
        // a still lives in L2 and must carry word 0's dirty bit.
        let wbs = h.flush();
        let entry = wbs
            .iter()
            .find(|(addr, _)| *addr == a)
            .expect("a written back");
        assert_eq!(entry.1, WordMask::single(0));
    }

    #[test]
    fn clean_evictions_are_silent() {
        let mut h = h(1, false);
        // Read-only traffic: no writebacks ever.
        for i in 0..64u64 {
            h.access(0, PhysAddr::new(i * 64 * 37), None);
        }
        assert_eq!(h.stats().writebacks, 0);
        assert!(h.flush().is_empty());
    }

    #[test]
    fn back_invalidation_merges_l1_bits() {
        let mut h = h(1, false);
        let a = PhysAddr::new(0x0);
        h.access(0, a, Some(WordMask::single(7)));
        // Evict a from L2 (L2: 16 sets, 2 ways; conflict stride 16*64).
        let mut wbs = Vec::new();
        for k in 1..=2u64 {
            wbs.extend(h.access(0, PhysAddr::new(k * 16 * 64), None).writebacks);
        }
        let entry = wbs
            .iter()
            .find(|(addr, _)| *addr == a)
            .expect("back-invalidated writeback");
        assert_eq!(
            entry.1,
            WordMask::single(7),
            "dirty bits came from the L1 copy"
        );
    }

    #[test]
    fn dbi_proactively_writes_back_row_siblings() {
        // Tiny caches: L1 has 4 sets (line % 4), L2 has 16 sets (line % 16).
        // Row-interleaved mapping keeps consecutive lines in one 128-line
        // DRAM row, so lines 1024..=1027 share a row.
        let mut h = h(1, true);
        let line = |n: u64| PhysAddr::from_line_number(n);
        // Dirty four same-row lines (L1 sets 0..=3, L2 sets 0..=3).
        for i in 0..4u64 {
            h.access(0, line(1024 + i), Some(WordMask::single(0)));
        }
        // Evict them from L1 into L2 via lines that share their L1 sets but
        // use L2 sets 4..=7 (no L2 pressure on the dirty lines).
        for i in 0..4u64 {
            h.access(0, line(1024 + i + 4), None);
            h.access(0, line(1024 + i + 4 + 16), None);
        }
        assert_eq!(h.stats().writebacks, 0, "nothing left the LLC yet");
        // Evict line 1024 from L2 set 0 using different-row lines ≡ 0 mod 16.
        let mut wbs = Vec::new();
        wbs.extend(h.access(0, line(1024 + 160), None).writebacks);
        wbs.extend(h.access(0, line(1024 + 320), None).writebacks);
        let trigger = wbs
            .iter()
            .find(|(a, _)| *a == line(1024))
            .expect("trigger eviction");
        assert_eq!(trigger.1, WordMask::single(0));
        assert_eq!(
            h.stats().dbi_writebacks,
            3,
            "DBI cleans the three dirty row siblings: {wbs:?}"
        );
        assert_eq!(wbs.len(), 4, "trigger plus three proactive writebacks");
        // The siblings stay resident but clean.
        for i in 1..4u64 {
            assert_eq!(h.l2.dirty_mask(line(1024 + i)), Some(WordMask::EMPTY));
        }
    }

    #[test]
    fn next_line_prefetcher_fetches_ahead() {
        let mut config = tiny_config(1, false);
        config.prefetch_next_line = true;
        let mut h = CacheHierarchy::new(config);
        let a = PhysAddr::new(0x8000);
        let first = h.access(0, a, None);
        assert_eq!(first.level, HitLevel::Memory);
        assert_eq!(first.prefetch_read, Some(a.offset(64)));
        assert_eq!(h.stats().prefetches, 1);
        // The prefetched line is resident: the next sequential access hits.
        let second = h.access(0, a.offset(64), None);
        assert_eq!(
            second.level,
            HitLevel::L2,
            "prefetch turned the miss into an L2 hit"
        );
        assert_eq!(second.prefetch_read, None, "L2 hits do not prefetch");
        // A re-miss on an already-prefetched line does not double-issue.
        let third = h.access(0, a, None);
        assert_eq!(third.level, HitLevel::L1);
    }

    #[test]
    fn prefetcher_off_by_default() {
        let mut h = h(1, false);
        let first = h.access(0, PhysAddr::new(0x8000), None);
        assert_eq!(first.prefetch_read, None);
        assert_eq!(h.stats().prefetches, 0);
    }

    #[test]
    fn multicore_l1s_are_private() {
        let mut h = h(2, false);
        let a = PhysAddr::new(0x3000);
        h.access(0, a, None);
        assert_eq!(
            h.access(1, a, None).level,
            HitLevel::L2,
            "core 1's L1 is cold"
        );
        assert_eq!(h.access(0, a, None).level, HitLevel::L1);
    }

    #[test]
    fn figure3_proportions_sum_to_one() {
        let mut h = h(1, false);
        for i in 0..256u64 {
            let words = WordMask::first_n(((i % 8) + 1) as usize);
            h.access(0, PhysAddr::new(i * 64 * 17), Some(words));
        }
        h.flush();
        let p = h.stats().dirty_word_proportions();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(h.stats().avg_dirty_words() >= 1.0);
    }

    #[test]
    fn hierarchy_snapshot_roundtrip_resumes_identically() {
        use sim_fault::{Domain, FaultPlan};
        use sim_snap::SnapState;
        let flippy = |seed: u64| {
            let mut plan = FaultPlan::disabled();
            plan.seed = seed;
            plan.dirty_flip_rate = 0.2;
            plan.injector(Domain::Cache)
        };
        let mut live = h(2, true);
        live.set_fault_injector(flippy(0xC0FFEE));
        // Mixed multi-core traffic with DBI and fault-widened masks.
        for i in 0..400u64 {
            let core = (i % 2) as usize;
            let addr = PhysAddr::from_line_number((i * 7) % 96);
            let store = (i % 3 == 0).then(|| WordMask::single((i % 8) as u8));
            live.access(core, addr, store);
        }
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut restored = h(2, true);
        // Overlay replaces the RNG stream position, so the seed here is moot.
        restored.set_fault_injector(flippy(0xBAD5EED));
        let mut r = sim_snap::SnapReader::new(&bytes);
        restored.snap_load(&mut r).unwrap();
        r.finish().unwrap();

        // Both must now produce identical traffic, including fault-injected
        // mask widenings (the injector RNG stream was restored too).
        for i in 400..800u64 {
            let core = (i % 2) as usize;
            let addr = PhysAddr::from_line_number((i * 7) % 96);
            let store = (i % 3 == 0).then(|| WordMask::single((i % 8) as u8));
            let a = live.access(core, addr, store);
            let b = restored.access(core, addr, store);
            assert_eq!(a.level, b.level, "access {i}");
            assert_eq!(a.writebacks, b.writebacks, "access {i}");
        }
        assert_eq!(live.stats().writebacks, restored.stats().writebacks);
        assert_eq!(live.stats().dbi_writebacks, restored.stats().dbi_writebacks);
        assert_eq!(live.fault_counts(), restored.fault_counts());
        // Drains agree too: resident lines and dirty masks match exactly.
        assert_eq!(live.flush(), restored.flush());
    }

    #[test]
    fn hierarchy_snapshot_shape_mismatch_rejected() {
        use sim_snap::SnapState;
        let live = h(2, true);
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save(&mut w);
        let bytes = w.into_bytes();
        // Wrong core count.
        let mut r = sim_snap::SnapReader::new(&bytes);
        assert!(h(1, true).snap_load(&mut r).is_err());
        // Wrong DBI setting.
        let mut r = sim_snap::SnapReader::new(&bytes);
        assert!(h(2, false).snap_load(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_store_mask_rejected() {
        h(1, false).access(0, PhysAddr::new(0), Some(WordMask::EMPTY));
    }
}
