//! Randomized property tests of the cache hierarchy: dirty-word
//! conservation against a flat reference model, inclusion maintenance, and
//! histogram consistency.
//!
//! Formerly driven by proptest; now deterministic seeded sweeps over the
//! in-repo [`mem_model::rng`] PRNG so the suite builds and runs offline.

use std::collections::HashMap;

use cache_sim::{CacheConfig, CacheHierarchy, HierarchyConfig};
use mem_model::rng::Rng;
use mem_model::{PhysAddr, WordMask};

#[derive(Debug, Clone)]
struct AccessSpec {
    line: u64,
    store_bits: Option<u8>,
}

fn random_accesses(rng: &mut Rng) -> Vec<AccessSpec> {
    let len = rng.random_range(1usize..400);
    (0..len)
        .map(|_| AccessSpec {
            line: rng.random_range(0u64..4096),
            store_bits: rng
                .random_bool(0.5)
                .then(|| rng.random_range(1u16..256) as u8),
        })
        .collect()
}

fn tiny_hierarchy(cores: usize, dbi: bool) -> CacheHierarchy {
    CacheHierarchy::new(HierarchyConfig {
        l1: CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency_cycles: 2,
        },
        l2: CacheConfig {
            size_bytes: 4096,
            ways: 4,
            latency_cycles: 20,
        },
        cores,
        dbi,
        prefetch_next_line: false,
    })
}

/// Dirty-word conservation: every word ever dirtied is accounted for by
/// exactly the union of (a) words written back to memory and (b) words
/// still dirty somewhere in the hierarchy at flush time. No dirty word is
/// lost, none is invented.
#[test]
fn dirty_words_are_conserved() {
    let mut rng = Rng::seed_from_u64(0x6469_7274);
    for case in 0..64 {
        let stream = random_accesses(&mut rng);
        let dbi = case % 2 == 0;
        let mut h = tiny_hierarchy(1, dbi);
        // Ground truth: union of all dirty masks per line.
        let mut truth: HashMap<u64, WordMask> = HashMap::new();
        // Observed: accumulated writeback masks per line.
        let mut written_back: HashMap<u64, WordMask> = HashMap::new();

        let record = |wbs: &[(PhysAddr, WordMask)], written_back: &mut HashMap<u64, WordMask>| {
            for (addr, mask) in wbs {
                let entry = written_back
                    .entry(addr.line_number())
                    .or_insert(WordMask::EMPTY);
                *entry |= *mask;
            }
        };

        for spec in &stream {
            let addr = PhysAddr::from_line_number(spec.line);
            let store = spec.store_bits.map(WordMask::from_bits);
            if let Some(mask) = store {
                let entry = truth.entry(spec.line).or_insert(WordMask::EMPTY);
                *entry |= mask;
            }
            let access = h.access(0, addr, store);
            record(&access.writebacks, &mut written_back);
        }
        let final_wbs = h.flush();
        record(&final_wbs, &mut written_back);

        for (line, mask) in &truth {
            let observed = written_back.get(line).copied().unwrap_or(WordMask::EMPTY);
            assert!(
                mask.is_subset_of(observed),
                "line {line}: dirtied {mask} but only {observed} written back"
            );
        }
        // Nothing written back that was never dirtied.
        for (line, observed) in &written_back {
            let truth_mask = truth.get(line).copied().unwrap_or(WordMask::EMPTY);
            assert!(
                observed.is_subset_of(truth_mask),
                "line {line}: wrote back {observed}, only {truth_mask} was dirtied"
            );
        }
    }
}

/// The Figure 3 histogram counts exactly the demand (non-DBI) dirty
/// writebacks, and its buckets match the emitted mask widths.
#[test]
fn eviction_histogram_is_consistent() {
    let mut rng = Rng::seed_from_u64(0x6869_7374);
    for _ in 0..64 {
        let stream = random_accesses(&mut rng);
        let mut h = tiny_hierarchy(1, false);
        let mut emitted = 0u64;
        for spec in &stream {
            let addr = PhysAddr::from_line_number(spec.line);
            let access = h.access(0, addr, spec.store_bits.map(WordMask::from_bits));
            emitted += access.writebacks.len() as u64;
        }
        let hist_total: u64 = h.stats().evict_dirty_hist.iter().sum();
        assert_eq!(hist_total, emitted);
        assert_eq!(h.stats().writebacks, emitted);
    }
}

/// The cache agrees with a straightforward reference LRU model on
/// residency after any access/fill sequence.
#[test]
fn lru_matches_reference_model() {
    use cache_sim::{Cache, CacheConfig};
    let mut rng = Rng::seed_from_u64(0x6c72_7531);
    for _ in 0..64 {
        let stream = random_accesses(&mut rng);
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 4,
            latency_cycles: 1,
        };
        let sets = config.sets() as u64;
        let mut cache = Cache::new(config);
        // Reference: per-set vector ordered least- to most-recently used.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for spec in &stream {
            let line = spec.line;
            let set = (line % sets) as usize;
            let addr = PhysAddr::from_line_number(line);
            let hit = cache.access(addr);
            let model_hit = model[set].contains(&line);
            assert_eq!(hit, model_hit, "hit status diverged for line {line}");
            if model_hit {
                // Move to MRU position.
                model[set].retain(|&l| l != line);
                model[set].push(line);
            } else {
                let victim = cache.fill(addr);
                if model[set].len() == 4 {
                    let expected_victim = model[set].remove(0);
                    assert_eq!(
                        victim.map(|v| v.addr.line_number()),
                        Some(expected_victim),
                        "victim diverged"
                    );
                } else {
                    assert!(victim.is_none(), "unexpected eviction from non-full set");
                }
                model[set].push(line);
            }
        }
        // Final residency agrees exactly.
        for (set, lines) in model.iter().enumerate() {
            for &line in lines {
                assert!(
                    cache.contains(PhysAddr::from_line_number(line)),
                    "set {set}"
                );
            }
        }
        assert_eq!(cache.len(), model.iter().map(Vec::len).sum::<usize>());
    }
}

/// Multi-core accesses to disjoint address ranges never interfere with
/// each other's dirty state.
#[test]
fn disjoint_cores_do_not_interfere() {
    let mut rng = Rng::seed_from_u64(0x636f_7265);
    for _ in 0..32 {
        let stream_a = random_accesses(&mut rng);
        let stream_b = random_accesses(&mut rng);
        let mut shared = tiny_hierarchy(2, false);
        let mut solo = tiny_hierarchy(1, false);
        // Core 1's lines are offset far away from core 0's.
        const OFFSET: u64 = 1 << 40;
        let mut shared_wbs: Vec<(PhysAddr, WordMask)> = Vec::new();
        let mut solo_wbs: Vec<(PhysAddr, WordMask)> = Vec::new();
        let max_len = stream_a.len().max(stream_b.len());
        for i in 0..max_len {
            if let Some(spec) = stream_a.get(i) {
                let addr = PhysAddr::from_line_number(spec.line);
                let store = spec.store_bits.map(WordMask::from_bits);
                shared_wbs.extend(shared.access(0, addr, store).writebacks);
                solo_wbs.extend(solo.access(0, addr, store).writebacks);
            }
            if let Some(spec) = stream_b.get(i) {
                let addr = PhysAddr::from_line_number(spec.line + OFFSET);
                // Core 1's fills can evict core 0's lines from the shared
                // L2; those writebacks surface here and must be kept.
                shared_wbs.extend(
                    shared
                        .access(1, addr, spec.store_bits.map(WordMask::from_bits))
                        .writebacks,
                );
            }
        }
        shared_wbs.extend(shared.flush());
        solo_wbs.extend(solo.flush());
        // Core 0's writebacks in the shared system (restricted to its range)
        // carry exactly the masks the solo system produced per line: the L2
        // is shared so eviction *timing* differs, but no dirty word of core
        // 0 may leak or be lost.
        let collapse = |wbs: &[(PhysAddr, WordMask)], below: u64| {
            let mut m: HashMap<u64, WordMask> = HashMap::new();
            for (a, w) in wbs {
                if a.line_number() < below {
                    let e = m.entry(a.line_number()).or_insert(WordMask::EMPTY);
                    *e |= *w;
                }
            }
            m
        };
        let shared_map = collapse(&shared_wbs, OFFSET / 2);
        let solo_map = collapse(&solo_wbs, OFFSET / 2);
        assert_eq!(shared_map, solo_map);
    }
}
