//! Property-based tests of the core model: any bounded random instruction
//! mix must run to completion with resource limits respected and
//! instruction accounting exact.

use cache_sim::{CacheConfig, CacheHierarchy, HierarchyConfig};
use cpu_sim::{CpuSystem, InstructionSource, Op, SystemConfig};
use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::{PhysAddr, WordMask};
use proptest::prelude::*;

/// A deterministic source parameterised by a small script of op templates,
/// cycled forever.
struct ScriptSource {
    script: Vec<Op>,
    pos: usize,
}

impl InstructionSource for ScriptSource {
    fn next_op(&mut self) -> Op {
        let op = self.script[self.pos % self.script.len()];
        self.pos += 1;
        op
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..40).prop_map(Op::Compute),
        (0u64..1 << 22).prop_map(|l| Op::Load(PhysAddr::from_line_number(l))),
        (0u64..1 << 22, 1u8..=255).prop_map(|(l, bits)| Op::Store(
            PhysAddr::from_line_number(l),
            WordMask::from_bits(bits)
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scripted mix retires its target and respects LDQ/STQ bounds.
    #[test]
    fn scripted_mixes_complete(script in prop::collection::vec(op_strategy(), 1..24),
                               cores in 1usize..=2) {
        let hierarchy = CacheHierarchy::new(HierarchyConfig {
            l1: CacheConfig { size_bytes: 1024, ways: 2, latency_cycles: 2 },
            l2: CacheConfig { size_bytes: 16 * 1024, ways: 4, latency_cycles: 20 },
            cores,
            dbi: false,
            prefetch_next_line: false,
        });
        let mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::pra(),
        ));
        let sources: Vec<Box<dyn InstructionSource>> = (0..cores)
            .map(|core| {
                // Offset each core's addresses so streams do not alias.
                let script: Vec<Op> = script
                    .iter()
                    .map(|op| match *op {
                        Op::Load(a) => {
                            Op::Load(PhysAddr::new(a.raw() + ((core as u64) << 30)))
                        }
                        Op::Store(a, m) => {
                            Op::Store(PhysAddr::new(a.raw() + ((core as u64) << 30)), m)
                        }
                        other => other,
                    })
                    .collect();
                Box::new(ScriptSource { script, pos: 0 }) as Box<dyn InstructionSource>
            })
            .collect();
        let target = 3_000u64;
        let mut system = CpuSystem::new(SystemConfig::paper(), hierarchy, mem, sources, target);
        let outcome = system.run(80_000_000);
        prop_assert!(!outcome.timed_out, "mix failed to finish");
        for (i, core) in system.cores().iter().enumerate() {
            prop_assert!(core.stats.retired >= target, "core {i} under-retired");
            prop_assert!(
                core.loads_in_flight() <= core.config.ldq,
                "core {i} LDQ overflow at exit"
            );
            prop_assert!(
                core.pending_writebacks.len() <= core.config.stq + 8,
                "core {i} runaway writeback backlog"
            );
        }
        // Per-core result cycles are consistent with the global clock.
        for result in &outcome.per_core {
            prop_assert!(result.cycles <= outcome.cpu_cycles.max(1));
            prop_assert!(result.ipc() > 0.0);
        }
    }
}
