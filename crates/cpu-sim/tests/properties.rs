//! Randomized property tests of the core model: any bounded random
//! instruction mix must run to completion with resource limits respected
//! and instruction accounting exact.
//!
//! Formerly driven by proptest; now deterministic seeded sweeps over the
//! in-repo [`mem_model::rng`] PRNG so the suite builds and runs offline.

use cache_sim::{CacheConfig, CacheHierarchy, HierarchyConfig};
use cpu_sim::{CpuSystem, InstructionSource, Op, SystemConfig};
use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
use mem_model::rng::Rng;
use mem_model::{PhysAddr, WordMask};

/// A deterministic source parameterised by a small script of op templates,
/// cycled forever.
struct ScriptSource {
    script: Vec<Op>,
    pos: usize,
}

impl InstructionSource for ScriptSource {
    fn next_op(&mut self) -> Op {
        let op = self.script[self.pos % self.script.len()];
        self.pos += 1;
        op
    }
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.random_range(0u8..3) {
        0 => Op::Compute(rng.random_range(0u32..40)),
        1 => Op::Load(PhysAddr::from_line_number(rng.random_range(0u64..1 << 22))),
        _ => Op::Store(
            PhysAddr::from_line_number(rng.random_range(0u64..1 << 22)),
            WordMask::from_bits(rng.random_range(1u16..256) as u8),
        ),
    }
}

/// Every scripted mix retires its target and respects LDQ/STQ bounds.
#[test]
fn scripted_mixes_complete() {
    let mut rng = Rng::seed_from_u64(0x6d69_7865);
    for case in 0..24 {
        let script: Vec<Op> = (0..rng.random_range(1usize..24))
            .map(|_| random_op(&mut rng))
            .collect();
        let cores = 1 + case % 2;
        let hierarchy = CacheHierarchy::new(HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                size_bytes: 16 * 1024,
                ways: 4,
                latency_cycles: 20,
            },
            cores,
            dbi: false,
            prefetch_next_line: false,
        });
        let mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::pra(),
        ));
        let sources: Vec<Box<dyn InstructionSource>> = (0..cores)
            .map(|core| {
                // Offset each core's addresses so streams do not alias.
                let script: Vec<Op> = script
                    .iter()
                    .map(|op| match *op {
                        Op::Load(a) => Op::Load(PhysAddr::new(a.raw() + ((core as u64) << 30))),
                        Op::Store(a, m) => {
                            Op::Store(PhysAddr::new(a.raw() + ((core as u64) << 30)), m)
                        }
                        other => other,
                    })
                    .collect();
                Box::new(ScriptSource { script, pos: 0 }) as Box<dyn InstructionSource>
            })
            .collect();
        let target = 3_000u64;
        let mut system = CpuSystem::new(SystemConfig::paper(), hierarchy, mem, sources, target);
        let outcome = system.run(80_000_000);
        assert!(!outcome.timed_out, "case {case}: mix failed to finish");
        for (i, core) in system.cores().iter().enumerate() {
            assert!(core.stats.retired >= target, "core {i} under-retired");
            assert!(
                core.loads_in_flight() <= core.config.ldq,
                "core {i} LDQ overflow at exit"
            );
            assert!(
                core.pending_writebacks.len() <= core.config.stq + 8,
                "core {i} runaway writeback backlog"
            );
        }
        // Per-core result cycles are consistent with the global clock.
        for result in &outcome.per_core {
            assert!(result.cycles <= outcome.cpu_cycles.max(1));
            assert!(result.ipc() > 0.0);
        }
    }
}
