//! Performance metrics: IPC and the paper's weighted speedup (Equation 3).

/// Instructions and cycles of one core's run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreResult {
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles taken to retire them.
    pub cycles: u64,
}

impl CoreResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Why a weighted-speedup computation was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedupError {
    /// The shared and alone IPC lists have different lengths.
    LengthMismatch {
        /// Entries in the shared-run list.
        shared: usize,
        /// Entries in the alone-run list.
        alone: usize,
    },
    /// An alone-run IPC was zero, negative, or not finite, which would
    /// make the per-core ratio meaningless.
    BadAloneIpc {
        /// Offending core index.
        core: usize,
        /// The rejected IPC value.
        ipc: f64,
    },
}

impl core::fmt::Display for SpeedupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            SpeedupError::LengthMismatch { shared, alone } => {
                write!(
                    f,
                    "per-core IPC lists must align: {shared} shared vs {alone} alone"
                )
            }
            SpeedupError::BadAloneIpc { core, ipc } => {
                write!(
                    f,
                    "alone IPC of core {core} must be positive and finite, got {ipc}"
                )
            }
        }
    }
}

impl std::error::Error for SpeedupError {}

/// Equation (3): `WS = sum_i IPC_i^shared / IPC_i^alone`.
///
/// # Errors
///
/// Returns [`SpeedupError`] if the slices differ in length or an alone-IPC
/// is non-positive or non-finite.
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> Result<f64, SpeedupError> {
    if shared_ipc.len() != alone_ipc.len() {
        return Err(SpeedupError::LengthMismatch {
            shared: shared_ipc.len(),
            alone: alone_ipc.len(),
        });
    }
    let mut ws = 0.0;
    for (core, (&s, &a)) in shared_ipc.iter().zip(alone_ipc).enumerate() {
        if !(a > 0.0 && a.is_finite()) {
            return Err(SpeedupError::BadAloneIpc { core, ipc: a });
        }
        ws += s / a;
    }
    Ok(ws)
}

/// Energy-delay product from a total-energy and runtime pair; the paper
/// reports EDP normalized to a baseline, which divides out the units.
pub fn energy_delay_product(energy_mj: f64, runtime_ns: f64) -> f64 {
    energy_mj * runtime_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_basic() {
        let r = CoreResult {
            instructions: 400,
            cycles: 100,
        };
        assert!((r.ipc() - 4.0).abs() < 1e-12);
        assert_eq!(
            CoreResult {
                instructions: 1,
                cycles: 0
            }
            .ipc(),
            0.0
        );
    }

    #[test]
    fn ws_equals_core_count_when_unaffected() {
        let shared = [1.0, 2.0, 0.5, 3.0];
        let ws = weighted_speedup(&shared, &shared).unwrap();
        assert!((ws - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ws_reflects_slowdown() {
        let shared = [0.5, 1.0];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ws_rejects_mismatched_lengths() {
        assert_eq!(
            weighted_speedup(&[1.0], &[1.0, 2.0]),
            Err(SpeedupError::LengthMismatch {
                shared: 1,
                alone: 2
            })
        );
    }

    #[test]
    fn ws_rejects_degenerate_alone_ipc() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = weighted_speedup(&[1.0, 1.0], &[1.0, bad]).unwrap_err();
            assert!(
                matches!(err, SpeedupError::BadAloneIpc { core: 1, .. }),
                "{bad}: {err}"
            );
        }
        // The error formats without panicking.
        let msg = weighted_speedup(&[1.0], &[0.0]).unwrap_err().to_string();
        assert!(msg.contains("core 0"));
    }

    #[test]
    fn edp_multiplies() {
        assert!((energy_delay_product(2.0, 3.0) - 6.0).abs() < 1e-12);
    }
}
