//! Performance metrics: IPC and the paper's weighted speedup (Equation 3).

/// Instructions and cycles of one core's run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreResult {
    /// Instructions retired.
    pub instructions: u64,
    /// CPU cycles taken to retire them.
    pub cycles: u64,
}

impl CoreResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Equation (3): `WS = sum_i IPC_i^shared / IPC_i^alone`.
///
/// # Panics
///
/// Panics if the slices differ in length or an alone-IPC is non-positive.
pub fn weighted_speedup(shared_ipc: &[f64], alone_ipc: &[f64]) -> f64 {
    assert_eq!(shared_ipc.len(), alone_ipc.len(), "per-core IPC lists must align");
    shared_ipc
        .iter()
        .zip(alone_ipc)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive, got {a}");
            s / a
        })
        .sum()
}

/// Energy-delay product from a total-energy and runtime pair; the paper
/// reports EDP normalized to a baseline, which divides out the units.
pub fn energy_delay_product(energy_mj: f64, runtime_ns: f64) -> f64 {
    energy_mj * runtime_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_basic() {
        let r = CoreResult { instructions: 400, cycles: 100 };
        assert!((r.ipc() - 4.0).abs() < 1e-12);
        assert_eq!(CoreResult { instructions: 1, cycles: 0 }.ipc(), 0.0);
    }

    #[test]
    fn ws_equals_core_count_when_unaffected() {
        let shared = [1.0, 2.0, 0.5, 3.0];
        let ws = weighted_speedup(&shared, &shared);
        assert!((ws - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ws_reflects_slowdown() {
        let shared = [0.5, 1.0];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn ws_rejects_mismatched_lengths() {
        weighted_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn edp_multiplies() {
        assert!((energy_delay_product(2.0, 3.0) - 6.0).abs() < 1e-12);
    }
}
