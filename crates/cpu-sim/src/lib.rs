//! Simplified multi-core CPU model driving the cache hierarchy and DRAM
//! simulator.
//!
//! This crate stands in for gem5 in the paper's methodology (the
//! substitution is documented in DESIGN.md). Each [`Core`] consumes an
//! [`InstructionSource`] — a dynamic stream of compute blocks, loads and
//! stores — under the resource limits that shape memory behaviour:
//!
//! * a **ROB window** (192 instructions) bounding how far execution runs
//!   ahead of the oldest outstanding load,
//! * a **load queue** (32) bounding memory-level parallelism,
//! * a **store buffer** (32) that makes stores non-blocking but applies
//!   back-pressure when DRAM write queues fill.
//!
//! [`CpuSystem`] couples N cores to a shared [`cache_sim::CacheHierarchy`]
//! and a [`dram_sim::MemorySystem`] at the paper's 4:1 CPU:DRAM clock ratio
//! and produces per-core IPC plus the weighted-speedup metric of Equation 3.
//!
//! # Example
//!
//! ```
//! use cpu_sim::{CpuSystem, InstructionSource, Op, SystemConfig};
//! use cache_sim::{CacheHierarchy, HierarchyConfig};
//! use dram_sim::{DramConfig, MemorySystem, PagePolicy, SchemeBehavior};
//! use mem_model::PhysAddr;
//!
//! struct Pointer(u64);
//! impl InstructionSource for Pointer {
//!     fn next_op(&mut self) -> Op {
//!         self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
//!         Op::Load(PhysAddr::new(self.0 % (1 << 26)))
//!     }
//! }
//!
//! let hierarchy = CacheHierarchy::new(HierarchyConfig::paper(1));
//! let mem = MemorySystem::new(DramConfig::paper_baseline(
//!     PagePolicy::RelaxedClosePage,
//!     SchemeBehavior::baseline(),
//! ));
//! let mut sys = CpuSystem::new(SystemConfig::paper(), hierarchy, mem, vec![Box::new(Pointer(1))], 2_000);
//! let out = sys.run(10_000_000);
//! assert!(out.per_core[0].ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod metrics;
mod system;

pub use crate::core::{
    Core, CoreConfig, CoreStats, InstructionSource, Op, Outstanding, StallReason,
};
pub use metrics::{energy_delay_product, weighted_speedup, CoreResult, SpeedupError};
pub use system::{CpuSystem, RunOutcome, SystemConfig};
