//! The multi-core system: cores + cache hierarchy + DRAM, clock-coupled.

use std::collections::HashMap;

use cache_sim::{CacheHierarchy, HitLevel};
use dram_sim::MemorySystem;
use mem_model::{MemRequest, RequestId};

use crate::core::{Core, CoreConfig, InstructionSource, Op};
use crate::metrics::CoreResult;

/// System-level parameters.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// CPU cycles per DRAM command-clock cycle (3.2 GHz / 800 MHz = 4).
    pub cpu_per_mem_clock: u64,
}

impl SystemConfig {
    /// The paper's clocking: 3.2 GHz cores over DDR3-1600.
    pub const fn paper() -> Self {
        SystemConfig { core: CoreConfig::paper(), cpu_per_mem_clock: 4 }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-core instruction/cycle results.
    pub per_core: Vec<CoreResult>,
    /// Total CPU cycles elapsed until every core finished.
    pub cpu_cycles: u64,
    /// `true` if the run hit its cycle cap before all cores finished.
    pub timed_out: bool,
}

/// A complete simulated machine: N cores with private L1s, a shared L2 and
/// a DDR3 memory system.
///
/// Ticks CPU cycles; every `cpu_per_mem_clock` CPU cycles the DRAM advances
/// one memory cycle and read completions unblock waiting cores.
pub struct CpuSystem {
    config: SystemConfig,
    cores: Vec<Core>,
    sources: Vec<Box<dyn InstructionSource>>,
    hierarchy: CacheHierarchy,
    mem: MemorySystem,
    cpu_cycle: u64,
    next_req_id: RequestId,
    req_owner: HashMap<RequestId, usize>,
}

impl CpuSystem {
    /// Assembles a system. One instruction source per core.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or its length disagrees with the
    /// hierarchy's core count.
    pub fn new(
        config: SystemConfig,
        hierarchy: CacheHierarchy,
        mem: MemorySystem,
        sources: Vec<Box<dyn InstructionSource>>,
        instructions_per_core: u64,
    ) -> Self {
        assert!(!sources.is_empty(), "need at least one instruction source");
        assert_eq!(
            sources.len(),
            hierarchy.config().cores,
            "one source per core is required"
        );
        let cores =
            (0..sources.len()).map(|_| Core::new(config.core, instructions_per_core)).collect();
        CpuSystem {
            config,
            cores,
            sources,
            hierarchy,
            mem,
            cpu_cycle: 0,
            next_req_id: 1,
            req_owner: HashMap::new(),
        }
    }

    /// The DRAM system (stats, energy, power).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The cache hierarchy (stats).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Per-core stats.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Elapsed CPU cycles.
    pub fn cpu_cycle(&self) -> u64 {
        self.cpu_cycle
    }

    /// Runs until every core retires its instruction target (or
    /// `max_cpu_cycles` elapse), then lets DRAM drain. Returns per-core
    /// results.
    pub fn run(&mut self, max_cpu_cycles: u64) -> RunOutcome {
        let mut timed_out = false;
        while self.cores.iter().any(|c| !c.finished()) {
            if self.cpu_cycle >= max_cpu_cycles {
                timed_out = true;
                break;
            }
            self.tick_cpu_cycle();
        }
        // Drain outstanding DRAM work so energy accounting closes out.
        let spare = max_cpu_cycles.saturating_sub(self.cpu_cycle) / self.config.cpu_per_mem_clock;
        self.mem.run_until_idle(spare.max(100_000));
        let per_core = self
            .cores
            .iter()
            .map(|c| CoreResult {
                instructions: c.stats.retired.min(c.target),
                cycles: c.finished_at.unwrap_or(self.cpu_cycle).max(1),
            })
            .collect();
        RunOutcome { per_core, cpu_cycles: self.cpu_cycle, timed_out }
    }

    /// Advances one CPU cycle (and the DRAM clock on its divisor).
    pub(crate) fn tick_cpu_cycle(&mut self) {
        for core_idx in 0..self.cores.len() {
            self.tick_core(core_idx);
        }
        self.cpu_cycle += 1;
        if self.cpu_cycle.is_multiple_of(self.config.cpu_per_mem_clock) {
            let completed: Vec<RequestId> = self.mem.tick().to_vec();
            for id in completed {
                if let Some(core) = self.req_owner.remove(&id) {
                    self.cores[core].complete_request(id);
                }
            }
        }
    }

    fn tick_core(&mut self, idx: usize) {
        let now = self.cpu_cycle;
        self.cores[idx].complete_ready(now);

        // Drain pending writebacks toward the DRAM write queue.
        while let Some(&(addr, mask)) = self.cores[idx].pending_writebacks.first() {
            let id = self.next_req_id;
            let req = MemRequest::write(id, addr, mask).with_core(idx);
            if self.mem.try_enqueue(req).is_ok() {
                self.next_req_id += 1;
                self.cores[idx].pending_writebacks.remove(0);
            } else {
                break;
            }
        }
        let stq = self.cores[idx].config.stq;
        if self.cores[idx].pending_writebacks.len() >= stq {
            self.cores[idx].stats.store_stall_cycles += 1;
            return;
        }

        if self.cores[idx].finished() {
            return; // fetched enough; let in-flight work drain
        }

        let mut slots = u64::from(self.cores[idx].config.width);
        while slots > 0 && !self.cores[idx].finished() {
            if self.cores[idx].rob_blocked() {
                if slots == u64::from(self.cores[idx].config.width) {
                    self.cores[idx].stats.rob_stall_cycles += 1;
                }
                break;
            }
            // Compute backlog first.
            if self.cores[idx].pending_compute > 0 {
                let n = slots.min(self.cores[idx].pending_compute);
                self.cores[idx].pending_compute -= n;
                self.cores[idx].retire(n, now);
                slots -= n;
                continue;
            }
            let op = match self.cores[idx].deferred.take() {
                Some(op) => op,
                None => self.sources[idx].next_op(),
            };
            match op {
                Op::Compute(0) => continue,
                Op::Compute(n) => {
                    self.cores[idx].pending_compute = u64::from(n);
                }
                Op::Load(addr) => {
                    if !self.issue_load(idx, addr, now, &mut slots) {
                        break;
                    }
                }
                Op::Store(addr, mask) => {
                    if !self.issue_store(idx, addr, mask, now, &mut slots) {
                        break;
                    }
                }
            }
        }
    }

    /// Issues a load; returns `false` (with the op deferred) on a full
    /// resource.
    fn issue_load(&mut self, idx: usize, addr: mem_model::PhysAddr, now: u64, slots: &mut u64) -> bool {
        if self.cores[idx].loads_in_flight() >= self.cores[idx].config.ldq {
            self.cores[idx].deferred = Some(Op::Load(addr));
            self.cores[idx].stats.ldq_stall_cycles += 1;
            return false;
        }
        let access = self.hierarchy.access(idx, addr, None);
        self.cores[idx].pending_writebacks.extend(access.writebacks.clone());
        self.issue_prefetch(idx, access.prefetch_read);
        let (l1_lat, l2_lat) = self.hierarchy.latencies();
        let _ = l1_lat; // L1 hits are fully hidden by the OoO window
        match access.level {
            HitLevel::L1 => {
                self.cores[idx].stats.loads_by_level[0] += 1;
            }
            HitLevel::L2 => {
                self.cores[idx].stats.loads_by_level[1] += 1;
                let retired = self.cores[idx].stats.retired;
                self.cores[idx].outstanding.push(crate::core::Outstanding {
                    done_at: Some(now + l2_lat),
                    req_id: None,
                    issued_at_retired: retired,
                    blocking: true,
                });
            }
            HitLevel::Memory => {
                let line = access.fill_read.expect("memory-level access carries a fill");
                let id = self.next_req_id;
                let req = MemRequest::read(id, line).with_core(idx);
                if self.mem.try_enqueue(req).is_err() {
                    // Roll forward next cycle; the cache state already
                    // updated, so a retry will hit L2 and wait there.
                    self.cores[idx].deferred = Some(Op::Load(addr));
                    self.cores[idx].stats.ldq_stall_cycles += 1;
                    return false;
                }
                self.next_req_id += 1;
                self.req_owner.insert(id, idx);
                self.cores[idx].stats.loads_by_level[2] += 1;
                let retired = self.cores[idx].stats.retired;
                self.cores[idx].outstanding.push(crate::core::Outstanding {
                    done_at: None,
                    req_id: Some(id),
                    issued_at_retired: retired,
                    blocking: true,
                });
            }
        }
        self.cores[idx].retire(1, now);
        *slots -= 1;
        true
    }

    /// Issues a non-blocking prefetch read if the queue has room; dropped
    /// prefetches are harmless (the cache already owns the line and a later
    /// demand access will hit L2 with zero memory latency — an acceptable
    /// optimism for an optional extension feature).
    fn issue_prefetch(&mut self, idx: usize, line: Option<mem_model::PhysAddr>) {
        let Some(line) = line else { return };
        let id = self.next_req_id;
        let req = MemRequest::read(id, line).with_core(idx);
        if self.mem.try_enqueue(req).is_ok() {
            self.next_req_id += 1;
            self.req_owner.insert(id, idx);
            let retired = self.cores[idx].stats.retired;
            self.cores[idx].outstanding.push(crate::core::Outstanding {
                done_at: None,
                req_id: Some(id),
                issued_at_retired: retired,
                blocking: false,
            });
        }
    }

    /// Issues a store; returns `false` (with the op deferred) on a full
    /// store buffer.
    fn issue_store(
        &mut self,
        idx: usize,
        addr: mem_model::PhysAddr,
        mask: mem_model::WordMask,
        now: u64,
        slots: &mut u64,
    ) -> bool {
        if self.cores[idx].store_fills_in_flight() >= self.cores[idx].config.stq {
            self.cores[idx].deferred = Some(Op::Store(addr, mask));
            self.cores[idx].stats.store_stall_cycles += 1;
            return false;
        }
        let access = self.hierarchy.access(idx, addr, Some(mask));
        self.cores[idx].pending_writebacks.extend(access.writebacks.clone());
        self.issue_prefetch(idx, access.prefetch_read);
        if let Some(line) = access.fill_read {
            // Write-allocate: the line must be fetched, but the store buffer
            // hides the latency (non-blocking fill).
            let id = self.next_req_id;
            let req = MemRequest::read(id, line).with_core(idx);
            if self.mem.try_enqueue(req).is_ok() {
                self.next_req_id += 1;
                self.req_owner.insert(id, idx);
                let retired = self.cores[idx].stats.retired;
                self.cores[idx].outstanding.push(crate::core::Outstanding {
                    done_at: None,
                    req_id: Some(id),
                    issued_at_retired: retired,
                    blocking: false,
                });
            }
            // If the read queue is full the fill is dropped from the timing
            // model (the cache already owns the line); this keeps stores
            // non-blocking, slightly underestimating read pressure only in
            // pathological full-queue states.
        }
        self.cores[idx].stats.stores += 1;
        self.cores[idx].retire(1, now);
        *slots -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::HierarchyConfig;
    use dram_sim::{DramConfig, PagePolicy, SchemeBehavior};
    use mem_model::{PhysAddr, WordMask};

    /// A source that streams loads over a configurable footprint.
    struct StreamLoads {
        next: u64,
        wrap: u64,
        compute: u32,
        toggle: bool,
    }

    impl InstructionSource for StreamLoads {
        fn next_op(&mut self) -> Op {
            self.toggle = !self.toggle;
            if self.toggle && self.compute > 0 {
                return Op::Compute(self.compute);
            }
            let a = PhysAddr::new((self.next * 64) % self.wrap);
            self.next += 1;
            Op::Load(a)
        }
    }

    /// A source that streams stores.
    struct StreamStores {
        next: u64,
        wrap: u64,
    }

    impl InstructionSource for StreamStores {
        fn next_op(&mut self) -> Op {
            let a = PhysAddr::new((self.next * 64) % self.wrap);
            self.next += 1;
            Op::Store(a, WordMask::single((self.next % 8) as u8))
        }
    }

    fn build(sources: Vec<Box<dyn InstructionSource>>, insts: u64) -> CpuSystem {
        let cores = sources.len();
        let hierarchy = CacheHierarchy::new(HierarchyConfig::paper(cores));
        let mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::baseline(),
        ));
        CpuSystem::new(SystemConfig::paper(), hierarchy, mem, sources, insts)
    }

    /// Same system with deliberately tiny caches so short tests exercise
    /// LLC evictions.
    fn build_tiny_caches(sources: Vec<Box<dyn InstructionSource>>, insts: u64) -> CpuSystem {
        use cache_sim::CacheConfig;
        let cores = sources.len();
        let hierarchy = CacheHierarchy::new(HierarchyConfig {
            l1: CacheConfig { size_bytes: 1024, ways: 2, latency_cycles: 2 },
            l2: CacheConfig { size_bytes: 8 * 1024, ways: 4, latency_cycles: 20 },
            cores,
            dbi: false,
            prefetch_next_line: false,
        });
        let mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::baseline(),
        ));
        CpuSystem::new(SystemConfig::paper(), hierarchy, mem, sources, insts)
    }

    #[test]
    fn pure_compute_runs_at_full_width() {
        struct AllCompute;
        impl InstructionSource for AllCompute {
            fn next_op(&mut self) -> Op {
                Op::Compute(100)
            }
        }
        let mut sys = build(vec![Box::new(AllCompute)], 10_000);
        let out = sys.run(1_000_000);
        assert!(!out.timed_out);
        let ipc = out.per_core[0].ipc();
        assert!((ipc - 4.0).abs() < 0.1, "compute-bound IPC {ipc} should be ~width");
    }

    #[test]
    fn cache_resident_loads_stay_fast() {
        // 16 KB footprint fits L1.
        let src = StreamLoads { next: 0, wrap: 16 * 1024, compute: 0, toggle: false };
        let mut sys = build(vec![Box::new(src)], 100_000);
        let out = sys.run(10_000_000);
        assert!(!out.timed_out);
        let ipc = out.per_core[0].ipc();
        assert!(ipc > 3.0, "L1-resident loads should sustain near-width IPC, got {ipc}");
        let loads = sys.cores()[0].stats.loads_by_level;
        assert!(loads[0] > loads[1] + loads[2], "mostly L1 hits: {loads:?}");
    }

    #[test]
    fn memory_bound_loads_stall_the_core() {
        // 64 MB footprint with a large stride defeats both cache levels.
        let src = StreamLoads {
            next: 0,
            wrap: 64 * 1024 * 1024,
            compute: 0,
            toggle: false,
        };
        let mut sys = build(vec![Box::new(src)], 20_000);
        let out = sys.run(50_000_000);
        assert!(!out.timed_out);
        let ipc = out.per_core[0].ipc();
        assert!(ipc < 2.0, "memory-bound IPC should collapse, got {ipc}");
        let stats = sys.cores()[0].stats;
        assert!(
            stats.rob_stall_cycles + stats.ldq_stall_cycles > 0,
            "a memory-bound core must stall on the ROB window or load queue"
        );
        assert!(sys.mem().stats().reads_completed > 100);
    }

    #[test]
    fn stores_generate_dram_writebacks() {
        let src = StreamStores { next: 0, wrap: 64 * 1024 * 1024 };
        let mut sys = build_tiny_caches(vec![Box::new(src)], 40_000);
        let out = sys.run(100_000_000);
        assert!(!out.timed_out);
        assert!(
            sys.mem().stats().writes_completed > 100,
            "store stream must push writebacks to DRAM, got {}",
            sys.mem().stats().writes_completed
        );
        // Write-allocate also produces fill reads.
        assert!(sys.mem().stats().reads_completed > 100);
    }

    #[test]
    fn ldq_limits_outstanding_loads() {
        // Random loads defeat caches; the core can never have more than
        // `ldq` blocking loads in flight.
        struct RandomLoads(u64);
        impl InstructionSource for RandomLoads {
            fn next_op(&mut self) -> Op {
                self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
                Op::Load(PhysAddr::new((self.0 >> 16) % (1 << 31)))
            }
        }
        let mut sys = build(vec![Box::new(RandomLoads(9))], 3_000);
        // Step manually and sample the invariant.
        for _ in 0..200_000 {
            if sys.cores()[0].finished() {
                break;
            }
            sys.tick_cpu_cycle();
            let in_flight = sys.cores()[0].loads_in_flight();
            assert!(in_flight <= sys.cores()[0].config.ldq, "LDQ overflow: {in_flight}");
        }
        assert!(sys.cores()[0].stats.loads_by_level[2] > 0, "loads reached memory");
    }

    #[test]
    fn store_buffer_backpressure_stalls_instead_of_dropping() {
        // A pure store stream over tiny caches floods the DRAM write queue;
        // the core must stall (store_stall_cycles) but never lose writebacks.
        let src = StreamStores { next: 0, wrap: 64 * 1024 * 1024 };
        let mut sys = build_tiny_caches(vec![Box::new(src)], 60_000);
        let out = sys.run(100_000_000);
        assert!(!out.timed_out);
        let stats = sys.cores()[0].stats;
        assert!(stats.store_stall_cycles > 0, "write-queue pressure must stall the core");
        // Every line dirtied in steady state eventually reaches DRAM: the
        // write count tracks the L2 eviction count exactly.
        assert_eq!(
            sys.mem().stats().writes_completed,
            sys.hierarchy().stats().writebacks
                - sys.cores()[0].pending_writebacks.len() as u64,
        );
    }

    #[test]
    fn finished_cores_drain_without_fetching() {
        let src = StreamLoads { next: 0, wrap: 64 * 1024 * 1024, compute: 0, toggle: false };
        let mut sys = build(vec![Box::new(src)], 1_000);
        let out = sys.run(10_000_000);
        assert!(!out.timed_out);
        // Retired may overshoot the target by at most one issue width.
        let retired = sys.cores()[0].stats.retired;
        assert!(retired >= 1_000);
        assert!(retired < 1_000 + 8, "no fetching after finish: {retired}");
    }

    #[test]
    fn four_cores_share_the_hierarchy() {
        let mk = || -> Box<dyn InstructionSource> {
            Box::new(StreamLoads {
                next: 0,
                wrap: 32 * 1024 * 1024,
                compute: 2,
                toggle: false,
            })
        };
        let mut sys = build(vec![mk(), mk(), mk(), mk()], 5_000);
        let out = sys.run(50_000_000);
        assert!(!out.timed_out);
        assert_eq!(out.per_core.len(), 4);
        for r in &out.per_core {
            assert!(r.instructions >= 5_000);
            assert!(r.ipc() > 0.0);
        }
    }
}
