//! The multi-core system: cores + cache hierarchy + DRAM, clock-coupled.

use std::collections::HashMap;

use cache_sim::{CacheHierarchy, HitLevel};
use dram_sim::MemorySystem;
use mem_model::{MemRequest, RequestId};
use sim_obs::{SinkHandle, StallKind, TraceEvent, TraceSink};

use crate::core::{Core, CoreConfig, CoreStats, InstructionSource, Op};
use crate::metrics::CoreResult;

/// System-level parameters.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// CPU cycles per DRAM command-clock cycle (3.2 GHz / 800 MHz = 4).
    pub cpu_per_mem_clock: u64,
}

impl SystemConfig {
    /// The paper's clocking: 3.2 GHz cores over DDR3-1600.
    pub const fn paper() -> Self {
        SystemConfig {
            core: CoreConfig::paper(),
            cpu_per_mem_clock: 4,
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper()
    }
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-core instruction/cycle results.
    pub per_core: Vec<CoreResult>,
    /// Total CPU cycles elapsed until every core finished.
    pub cpu_cycles: u64,
    /// `true` if the run hit its cycle cap before all cores finished.
    pub timed_out: bool,
}

/// A contiguous run of fully-stalled cycles on one core, pending emission
/// as a single [`TraceEvent::CoreStall`] when it ends.
#[derive(Debug, Clone, Copy)]
struct StallRun {
    kind: StallKind,
    start: u64,
    len: u64,
}

/// A complete simulated machine: N cores with private L1s, a shared L2 and
/// a DDR3 memory system.
///
/// Ticks CPU cycles; every `cpu_per_mem_clock` CPU cycles the DRAM advances
/// one memory cycle and read completions unblock waiting cores.
pub struct CpuSystem {
    config: SystemConfig,
    cores: Vec<Core>,
    sources: Vec<Box<dyn InstructionSource>>,
    hierarchy: CacheHierarchy,
    mem: MemorySystem,
    cpu_cycle: u64,
    next_req_id: RequestId,
    req_owner: HashMap<RequestId, usize>,
    sink: SinkHandle,
    stall_runs: Vec<Option<StallRun>>,
}

impl CpuSystem {
    /// Assembles a system. One instruction source per core.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or its length disagrees with the
    /// hierarchy's core count.
    pub fn new(
        config: SystemConfig,
        hierarchy: CacheHierarchy,
        mem: MemorySystem,
        sources: Vec<Box<dyn InstructionSource>>,
        instructions_per_core: u64,
    ) -> Self {
        // sim-lint: allow(no-panic-hot-path): constructor argument contract, runs once before simulation
        assert!(!sources.is_empty(), "need at least one instruction source");
        // sim-lint: allow(no-panic-hot-path): constructor argument contract, runs once before simulation
        assert_eq!(
            sources.len(),
            hierarchy.config().cores,
            "one source per core is required"
        );
        let stall_runs = vec![None; sources.len()];
        let cores = (0..sources.len())
            .map(|_| Core::new(config.core, instructions_per_core))
            .collect();
        CpuSystem {
            config,
            cores,
            sources,
            hierarchy,
            mem,
            cpu_cycle: 0,
            next_req_id: 1,
            req_owner: HashMap::new(),
            sink: SinkHandle::disabled(),
            stall_runs,
        }
    }

    /// Attaches a trace sink for core-stall episode events. Sinks for DRAM
    /// command and cache events are attached to the memory system and
    /// hierarchy directly (share one sink via `Rc<RefCell<_>>` to get a
    /// single interleaved stream).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = SinkHandle::new(sink);
    }

    /// The DRAM system (stats, energy, power).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable DRAM system access (attach sinks, configure epochs).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The cache hierarchy (stats).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Mutable hierarchy access (attach sinks).
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// Per-core stats.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Elapsed CPU cycles.
    pub fn cpu_cycle(&self) -> u64 {
        self.cpu_cycle
    }

    /// Runs until every core retires its instruction target (or
    /// `max_cpu_cycles` elapse), then lets DRAM drain. Returns per-core
    /// results.
    ///
    /// # Panics
    ///
    /// Panics on a DRAM protocol or liveness violation; use
    /// [`Self::try_run`] to observe it as an error instead.
    pub fn run(&mut self, max_cpu_cycles: u64) -> RunOutcome {
        self.try_run(max_cpu_cycles)
            // sim-lint: allow(no-panic-hot-path): documented panicking facade; try_run is the fallible API
            .unwrap_or_else(|e| panic!("DRAM {e}"))
    }

    /// Fallible variant of [`Self::run`]: a protocol-checker rejection or a
    /// tripped liveness watchdog surfaces as a [`dram_sim::TickError`]
    /// instead of a panic (the campaign harness classifies the latter as a
    /// hung run).
    ///
    /// # Errors
    ///
    /// Returns the first [`dram_sim::TickError`] the memory system raises.
    pub fn try_run(&mut self, max_cpu_cycles: u64) -> Result<RunOutcome, dram_sim::TickError> {
        self.try_run_with_checkpoints(max_cpu_cycles, 0, |_, _| true)
    }

    /// [`Self::try_run`] with a periodic checkpoint hook.
    ///
    /// Every `every_mem_cycles` DRAM cycles (`0` disables the hook), right
    /// after the memory tick on that boundary completes and its read
    /// completions have been delivered to the cores, `on_checkpoint` is
    /// called with the system and the current DRAM cycle — a consistent
    /// point to serialise the full machine state (and, with the mutable
    /// borrow, to emit a checkpoint trace event). Returning `false` aborts
    /// the run immediately: no DRAM drain, no observability finalisation,
    /// `timed_out` set in the outcome. That models a crash for kill-resume
    /// tests; a checkpoint policy that only writes snapshots returns `true`.
    ///
    /// # Errors
    ///
    /// Returns the first [`dram_sim::TickError`] the memory system raises.
    pub fn try_run_with_checkpoints<F>(
        &mut self,
        max_cpu_cycles: u64,
        every_mem_cycles: u64,
        mut on_checkpoint: F,
    ) -> Result<RunOutcome, dram_sim::TickError>
    where
        F: FnMut(&mut CpuSystem, u64) -> bool,
    {
        let every_cpu = every_mem_cycles.saturating_mul(self.config.cpu_per_mem_clock);
        let mut timed_out = false;
        while self.cores.iter().any(|c| !c.finished()) {
            if self.cpu_cycle >= max_cpu_cycles {
                timed_out = true;
                break;
            }
            self.try_tick_cpu_cycle()?;
            if every_cpu > 0 && self.cpu_cycle.is_multiple_of(every_cpu) {
                let mem_cycle = self.mem.cycle();
                if !on_checkpoint(self, mem_cycle) {
                    return Ok(self.outcome(true));
                }
            }
        }
        // Drain outstanding DRAM work so energy accounting closes out.
        let spare = max_cpu_cycles.saturating_sub(self.cpu_cycle) / self.config.cpu_per_mem_clock;
        self.mem.try_run_until_idle(spare.max(100_000))?;
        self.finalize_observability();
        Ok(self.outcome(timed_out))
    }

    fn outcome(&self, timed_out: bool) -> RunOutcome {
        let per_core = self
            .cores
            .iter()
            .map(|c| CoreResult {
                instructions: c.stats.retired.min(c.target),
                cycles: c.finished_at.unwrap_or(self.cpu_cycle).max(1),
            })
            .collect();
        RunOutcome {
            per_core,
            cpu_cycles: self.cpu_cycle,
            timed_out,
        }
    }

    /// Advances one CPU cycle (and the DRAM clock on its divisor).
    ///
    /// # Panics
    ///
    /// Panics on a DRAM protocol or liveness violation.
    #[cfg(test)]
    pub(crate) fn tick_cpu_cycle(&mut self) {
        self.try_tick_cpu_cycle()
            .unwrap_or_else(|e| panic!("DRAM {e}"))
    }

    /// Advances one CPU cycle (and the DRAM clock on its divisor).
    ///
    /// # Errors
    ///
    /// Returns the [`dram_sim::TickError`] raised by the memory system's
    /// protocol checker or liveness watchdogs, if any.
    pub(crate) fn try_tick_cpu_cycle(&mut self) -> Result<(), dram_sim::TickError> {
        let _prof = sim_prof::span!("cpu.tick");
        self.hierarchy.set_now(self.cpu_cycle);
        let tracing = self.sink.tracing();
        for core_idx in 0..self.cores.len() {
            if tracing {
                let before = self.cores[core_idx].stats;
                self.tick_core(core_idx);
                self.track_stall(core_idx, before);
            } else {
                self.tick_core(core_idx);
            }
        }
        self.cpu_cycle += 1;
        if self.cpu_cycle.is_multiple_of(self.config.cpu_per_mem_clock) {
            if self.mem.epoch_closes_next_tick() {
                // Fold cache and core counters into the registry before the
                // memory system seals the epoch, so their deltas land in the
                // same snapshot as the DRAM counters.
                self.publish_cpu_metrics();
            }
            let completed: Vec<RequestId> = self.mem.try_tick()?.to_vec();
            for id in completed {
                if let Some(core) = self.req_owner.remove(&id) {
                    self.cores[core].complete_request(id);
                }
            }
        }
        Ok(())
    }

    /// Classifies the cycle a core just executed: a stall cycle extends (or
    /// opens) an episode; progress or a stall-kind change closes the open
    /// episode as one [`TraceEvent::CoreStall`].
    fn track_stall(&mut self, idx: usize, before: CoreStats) {
        let after = &self.cores[idx].stats;
        let kind = if after.retired != before.retired {
            None
        } else if after.store_stall_cycles > before.store_stall_cycles {
            Some(StallKind::StoreBuffer)
        } else if after.rob_stall_cycles > before.rob_stall_cycles {
            Some(StallKind::Rob)
        } else if after.ldq_stall_cycles > before.ldq_stall_cycles {
            Some(StallKind::Ldq)
        } else {
            None
        };
        let now = self.cpu_cycle;
        match (self.stall_runs[idx], kind) {
            (Some(run), Some(k)) if run.kind == k => {
                self.stall_runs[idx] = Some(StallRun {
                    len: run.len + 1,
                    ..run
                });
            }
            (Some(run), k) => {
                self.emit_stall(idx, run);
                self.stall_runs[idx] = k.map(|kind| StallRun {
                    kind,
                    start: now,
                    len: 1,
                });
            }
            (None, Some(k)) => {
                self.stall_runs[idx] = Some(StallRun {
                    kind: k,
                    start: now,
                    len: 1,
                });
            }
            (None, None) => {}
        }
    }

    fn emit_stall(&mut self, idx: usize, run: StallRun) {
        self.sink.emit(|| TraceEvent::CoreStall {
            cycle: run.start,
            core: idx as u8,
            reason: run.kind,
            cycles: run.len,
        });
    }

    /// Publishes `cache.*` and `cpu.*` counters into the memory system's
    /// metrics registry. Called at epoch boundaries and at end of run.
    fn publish_cpu_metrics(&mut self) {
        let mut retired = 0u64;
        let mut stores = 0u64;
        let mut loads = [0u64; 3];
        let mut stalls = [0u64; 3]; // rob, ldq, store buffer
        for c in &self.cores {
            retired += c.stats.retired;
            stores += c.stats.stores;
            for (total, lvl) in loads.iter_mut().zip(c.stats.loads_by_level) {
                *total += lvl;
            }
            stalls[0] += c.stats.rob_stall_cycles;
            stalls[1] += c.stats.ldq_stall_cycles;
            stalls[2] += c.stats.store_stall_cycles;
        }
        let cpu_cycle = self.cpu_cycle;
        self.hierarchy
            .publish_metrics(&mut self.mem.observer_mut().registry);
        let reg = &mut self.mem.observer_mut().registry;
        let mut set = |name: &str, value: u64| {
            let id = reg.counter(name);
            reg.set_counter(id, value);
        };
        set("cpu.cycles", cpu_cycle);
        set("cpu.retired", retired);
        set("cpu.stores", stores);
        set("cpu.loads.l1", loads[0]);
        set("cpu.loads.l2", loads[1]);
        set("cpu.loads.memory", loads[2]);
        set("cpu.stall_cycles.rob", stalls[0]);
        set("cpu.stall_cycles.ldq", stalls[1]);
        set("cpu.stall_cycles.store_buffer", stalls[2]);
    }

    /// Closes any open stall episodes, publishes final `cache.*`/`cpu.*`
    /// counters and seals the last (partial) metrics epoch. Called
    /// automatically at the end of [`run`](Self::run); harmless to repeat.
    pub fn finalize_observability(&mut self) {
        for idx in 0..self.cores.len() {
            if let Some(run) = self.stall_runs[idx].take() {
                self.emit_stall(idx, run);
            }
        }
        self.publish_cpu_metrics();
        self.mem.finish_observability();
    }

    fn tick_core(&mut self, idx: usize) {
        let now = self.cpu_cycle;
        self.cores[idx].complete_ready(now);

        // Drain pending writebacks toward the DRAM write queue.
        while let Some(&(addr, mask)) = self.cores[idx].pending_writebacks.first() {
            let id = self.next_req_id;
            let req = MemRequest::write(id, addr, mask).with_core(idx);
            if self.mem.try_enqueue(req).is_ok() {
                self.next_req_id += 1;
                self.cores[idx].pending_writebacks.remove(0);
            } else {
                break;
            }
        }
        let stq = self.cores[idx].config.stq;
        if self.cores[idx].pending_writebacks.len() >= stq {
            self.cores[idx].stats.store_stall_cycles += 1;
            return;
        }

        if self.cores[idx].finished() {
            return; // fetched enough; let in-flight work drain
        }

        let mut slots = u64::from(self.cores[idx].config.width);
        while slots > 0 && !self.cores[idx].finished() {
            if self.cores[idx].rob_blocked() {
                if slots == u64::from(self.cores[idx].config.width) {
                    self.cores[idx].stats.rob_stall_cycles += 1;
                }
                break;
            }
            // Compute backlog first.
            if self.cores[idx].pending_compute > 0 {
                let n = slots.min(self.cores[idx].pending_compute);
                self.cores[idx].pending_compute -= n;
                self.cores[idx].retire(n, now);
                slots -= n;
                continue;
            }
            let op = match self.cores[idx].deferred.take() {
                Some(op) => op,
                None => self.sources[idx].next_op(),
            };
            match op {
                Op::Compute(0) => continue,
                Op::Compute(n) => {
                    self.cores[idx].pending_compute = u64::from(n);
                }
                Op::Load(addr) => {
                    if !self.issue_load(idx, addr, now, &mut slots) {
                        break;
                    }
                }
                Op::Store(addr, mask) => {
                    if !self.issue_store(idx, addr, mask, now, &mut slots) {
                        break;
                    }
                }
            }
        }
    }

    /// Issues a load; returns `false` (with the op deferred) on a full
    /// resource.
    fn issue_load(
        &mut self,
        idx: usize,
        addr: mem_model::PhysAddr,
        now: u64,
        slots: &mut u64,
    ) -> bool {
        if self.cores[idx].loads_in_flight() >= self.cores[idx].config.ldq {
            self.cores[idx].deferred = Some(Op::Load(addr));
            self.cores[idx].stats.ldq_stall_cycles += 1;
            return false;
        }
        let access = self.hierarchy.access(idx, addr, None);
        self.cores[idx]
            .pending_writebacks
            .extend(access.writebacks.clone());
        self.issue_prefetch(idx, access.prefetch_read);
        let (l1_lat, l2_lat) = self.hierarchy.latencies();
        let _ = l1_lat; // L1 hits are fully hidden by the OoO window
        match access.level {
            HitLevel::L1 => {
                self.cores[idx].stats.loads_by_level[0] += 1;
            }
            HitLevel::L2 => {
                self.cores[idx].stats.loads_by_level[1] += 1;
                let retired = self.cores[idx].stats.retired;
                self.cores[idx].outstanding.push(crate::core::Outstanding {
                    done_at: Some(now + l2_lat),
                    req_id: None,
                    issued_at_retired: retired,
                    blocking: true,
                });
            }
            HitLevel::Memory => {
                let line = access
                    .fill_read
                    // sim-lint: allow(no-panic-hot-path): CacheHierarchy::access always populates fill_read for HitLevel::Memory outcomes
                    .expect("memory-level access carries a fill");
                let id = self.next_req_id;
                let req = MemRequest::read(id, line).with_core(idx);
                if self.mem.try_enqueue(req).is_err() {
                    // Roll forward next cycle; the cache state already
                    // updated, so a retry will hit L2 and wait there.
                    self.cores[idx].deferred = Some(Op::Load(addr));
                    self.cores[idx].stats.ldq_stall_cycles += 1;
                    return false;
                }
                self.next_req_id += 1;
                self.req_owner.insert(id, idx);
                self.cores[idx].stats.loads_by_level[2] += 1;
                let retired = self.cores[idx].stats.retired;
                self.cores[idx].outstanding.push(crate::core::Outstanding {
                    done_at: None,
                    req_id: Some(id),
                    issued_at_retired: retired,
                    blocking: true,
                });
            }
        }
        self.cores[idx].retire(1, now);
        *slots -= 1;
        true
    }

    /// Issues a non-blocking prefetch read if the queue has room; dropped
    /// prefetches are harmless (the cache already owns the line and a later
    /// demand access will hit L2 with zero memory latency — an acceptable
    /// optimism for an optional extension feature).
    fn issue_prefetch(&mut self, idx: usize, line: Option<mem_model::PhysAddr>) {
        let Some(line) = line else { return };
        let id = self.next_req_id;
        let req = MemRequest::read(id, line).with_core(idx);
        if self.mem.try_enqueue(req).is_ok() {
            self.next_req_id += 1;
            self.req_owner.insert(id, idx);
            let retired = self.cores[idx].stats.retired;
            self.cores[idx].outstanding.push(crate::core::Outstanding {
                done_at: None,
                req_id: Some(id),
                issued_at_retired: retired,
                blocking: false,
            });
        }
    }

    /// Issues a store; returns `false` (with the op deferred) on a full
    /// store buffer.
    fn issue_store(
        &mut self,
        idx: usize,
        addr: mem_model::PhysAddr,
        mask: mem_model::WordMask,
        now: u64,
        slots: &mut u64,
    ) -> bool {
        if self.cores[idx].store_fills_in_flight() >= self.cores[idx].config.stq {
            self.cores[idx].deferred = Some(Op::Store(addr, mask));
            self.cores[idx].stats.store_stall_cycles += 1;
            return false;
        }
        let access = self.hierarchy.access(idx, addr, Some(mask));
        self.cores[idx]
            .pending_writebacks
            .extend(access.writebacks.clone());
        self.issue_prefetch(idx, access.prefetch_read);
        if let Some(line) = access.fill_read {
            // Write-allocate: the line must be fetched, but the store buffer
            // hides the latency (non-blocking fill).
            let id = self.next_req_id;
            let req = MemRequest::read(id, line).with_core(idx);
            if self.mem.try_enqueue(req).is_ok() {
                self.next_req_id += 1;
                self.req_owner.insert(id, idx);
                let retired = self.cores[idx].stats.retired;
                self.cores[idx].outstanding.push(crate::core::Outstanding {
                    done_at: None,
                    req_id: Some(id),
                    issued_at_retired: retired,
                    blocking: false,
                });
            }
            // If the read queue is full the fill is dropped from the timing
            // model (the cache already owns the line); this keeps stores
            // non-blocking, slightly underestimating read pressure only in
            // pathological full-queue states.
        }
        self.cores[idx].stats.stores += 1;
        self.cores[idx].retire(1, now);
        *slots -= 1;
        true
    }
}

fn save_stall_run(w: &mut sim_snap::SnapWriter, run: &StallRun) {
    let tag: u8 = match run.kind {
        StallKind::Rob => 0,
        StallKind::Ldq => 1,
        StallKind::StoreBuffer => 2,
    };
    w.u8(tag);
    w.u64(run.start);
    w.u64(run.len);
}

fn load_stall_run(r: &mut sim_snap::SnapReader<'_>) -> Result<StallRun, sim_snap::SnapError> {
    let kind = match r.u8()? {
        0 => StallKind::Rob,
        1 => StallKind::Ldq,
        2 => StallKind::StoreBuffer,
        tag => {
            return Err(sim_snap::SnapError::Decode(format!(
                "unknown stall kind tag {tag}"
            )))
        }
    };
    Ok(StallRun {
        kind,
        start: r.u64()?,
        len: r.u64()?,
    })
}

impl sim_snap::SnapState for CpuSystem {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        // `config` is a construction parameter (container config digest
        // covers it); the trace `sink` is a runtime attachment the restoring
        // caller re-establishes.
        w.section("cpu-system");
        w.u64(self.cpu_cycle);
        w.u64(self.next_req_id);
        w.seq(self.cores.len());
        for core in &self.cores {
            core.snap_save(w);
        }
        // One entry per core, in core order (sources.len() == cores.len()).
        for source in &self.sources {
            source.snap_save_state(w);
        }
        // HashMap iteration order is nondeterministic; serialise sorted so
        // identical states produce identical snapshot bytes.
        let mut owners: Vec<(RequestId, usize)> = self
            .req_owner
            .iter()
            .map(|(&id, &core)| (id, core))
            .collect();
        owners.sort_unstable();
        w.seq(owners.len());
        for (id, core) in owners {
            w.u64(id);
            w.usize(core);
        }
        w.seq(self.stall_runs.len());
        for run in &self.stall_runs {
            w.bool(run.is_some());
            if let Some(run) = run {
                save_stall_run(w, run);
            }
        }
        self.hierarchy.snap_save(w);
        self.mem.snap_save(w);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        r.section("cpu-system")?;
        self.cpu_cycle = r.u64()?;
        self.next_req_id = r.u64()?;
        let n = r.seq()?;
        if n != self.cores.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "core count mismatch: snapshot has {n}, system has {}",
                self.cores.len()
            )));
        }
        for core in &mut self.cores {
            core.snap_load(r)?;
        }
        for source in &mut self.sources {
            source.snap_load_state(r)?;
        }
        let n = r.seq()?;
        self.req_owner.clear();
        for _ in 0..n {
            let id = r.u64()?;
            let core = r.usize()?;
            if core >= self.cores.len() {
                return Err(sim_snap::SnapError::Decode(format!(
                    "request owner core {core} out of range ({} cores)",
                    self.cores.len()
                )));
            }
            self.req_owner.insert(id, core);
        }
        let n = r.seq()?;
        if n != self.stall_runs.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "stall-run count mismatch: snapshot has {n}, system has {}",
                self.stall_runs.len()
            )));
        }
        for run in &mut self.stall_runs {
            *run = if r.bool()? {
                Some(load_stall_run(r)?)
            } else {
                None
            };
        }
        self.hierarchy.snap_load(r)?;
        self.mem.snap_load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::HierarchyConfig;
    use dram_sim::{DramConfig, PagePolicy, SchemeBehavior};
    use mem_model::{PhysAddr, WordMask};

    /// A source that streams loads over a configurable footprint.
    struct StreamLoads {
        next: u64,
        wrap: u64,
        compute: u32,
        toggle: bool,
    }

    impl InstructionSource for StreamLoads {
        fn next_op(&mut self) -> Op {
            self.toggle = !self.toggle;
            if self.toggle && self.compute > 0 {
                return Op::Compute(self.compute);
            }
            let a = PhysAddr::new((self.next * 64) % self.wrap);
            self.next += 1;
            Op::Load(a)
        }

        fn snap_save_state(&self, w: &mut sim_snap::SnapWriter) {
            w.u64(self.next);
            w.bool(self.toggle);
        }

        fn snap_load_state(
            &mut self,
            r: &mut sim_snap::SnapReader<'_>,
        ) -> Result<(), sim_snap::SnapError> {
            self.next = r.u64()?;
            self.toggle = r.bool()?;
            Ok(())
        }
    }

    /// A source that streams stores.
    struct StreamStores {
        next: u64,
        wrap: u64,
    }

    impl InstructionSource for StreamStores {
        fn next_op(&mut self) -> Op {
            let a = PhysAddr::new((self.next * 64) % self.wrap);
            self.next += 1;
            Op::Store(a, WordMask::single((self.next % 8) as u8))
        }
    }

    fn build(sources: Vec<Box<dyn InstructionSource>>, insts: u64) -> CpuSystem {
        let cores = sources.len();
        let hierarchy = CacheHierarchy::new(HierarchyConfig::paper(cores));
        let mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::baseline(),
        ));
        CpuSystem::new(SystemConfig::paper(), hierarchy, mem, sources, insts)
    }

    /// Same system with deliberately tiny caches so short tests exercise
    /// LLC evictions.
    fn build_tiny_caches(sources: Vec<Box<dyn InstructionSource>>, insts: u64) -> CpuSystem {
        use cache_sim::CacheConfig;
        let cores = sources.len();
        let hierarchy = CacheHierarchy::new(HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                latency_cycles: 20,
            },
            cores,
            dbi: false,
            prefetch_next_line: false,
        });
        let mem = MemorySystem::new(DramConfig::paper_baseline(
            PagePolicy::RelaxedClosePage,
            SchemeBehavior::baseline(),
        ));
        CpuSystem::new(SystemConfig::paper(), hierarchy, mem, sources, insts)
    }

    #[test]
    fn pure_compute_runs_at_full_width() {
        struct AllCompute;
        impl InstructionSource for AllCompute {
            fn next_op(&mut self) -> Op {
                Op::Compute(100)
            }
        }
        let mut sys = build(vec![Box::new(AllCompute)], 10_000);
        let out = sys.run(1_000_000);
        assert!(!out.timed_out);
        let ipc = out.per_core[0].ipc();
        assert!(
            (ipc - 4.0).abs() < 0.1,
            "compute-bound IPC {ipc} should be ~width"
        );
    }

    #[test]
    fn cache_resident_loads_stay_fast() {
        // 16 KB footprint fits L1.
        let src = StreamLoads {
            next: 0,
            wrap: 16 * 1024,
            compute: 0,
            toggle: false,
        };
        let mut sys = build(vec![Box::new(src)], 100_000);
        let out = sys.run(10_000_000);
        assert!(!out.timed_out);
        let ipc = out.per_core[0].ipc();
        assert!(
            ipc > 3.0,
            "L1-resident loads should sustain near-width IPC, got {ipc}"
        );
        let loads = sys.cores()[0].stats.loads_by_level;
        assert!(loads[0] > loads[1] + loads[2], "mostly L1 hits: {loads:?}");
    }

    #[test]
    fn memory_bound_loads_stall_the_core() {
        // 64 MB footprint with a large stride defeats both cache levels.
        let src = StreamLoads {
            next: 0,
            wrap: 64 * 1024 * 1024,
            compute: 0,
            toggle: false,
        };
        let mut sys = build(vec![Box::new(src)], 20_000);
        let out = sys.run(50_000_000);
        assert!(!out.timed_out);
        let ipc = out.per_core[0].ipc();
        assert!(ipc < 2.0, "memory-bound IPC should collapse, got {ipc}");
        let stats = sys.cores()[0].stats;
        assert!(
            stats.rob_stall_cycles + stats.ldq_stall_cycles > 0,
            "a memory-bound core must stall on the ROB window or load queue"
        );
        assert!(sys.mem().stats().reads_completed > 100);
    }

    #[test]
    fn stores_generate_dram_writebacks() {
        let src = StreamStores {
            next: 0,
            wrap: 64 * 1024 * 1024,
        };
        let mut sys = build_tiny_caches(vec![Box::new(src)], 40_000);
        let out = sys.run(100_000_000);
        assert!(!out.timed_out);
        assert!(
            sys.mem().stats().writes_completed > 100,
            "store stream must push writebacks to DRAM, got {}",
            sys.mem().stats().writes_completed
        );
        // Write-allocate also produces fill reads.
        assert!(sys.mem().stats().reads_completed > 100);
    }

    #[test]
    fn ldq_limits_outstanding_loads() {
        // Random loads defeat caches; the core can never have more than
        // `ldq` blocking loads in flight.
        struct RandomLoads(u64);
        impl InstructionSource for RandomLoads {
            fn next_op(&mut self) -> Op {
                self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
                Op::Load(PhysAddr::new((self.0 >> 16) % (1 << 31)))
            }
        }
        let mut sys = build(vec![Box::new(RandomLoads(9))], 3_000);
        // Step manually and sample the invariant.
        for _ in 0..200_000 {
            if sys.cores()[0].finished() {
                break;
            }
            sys.tick_cpu_cycle();
            let in_flight = sys.cores()[0].loads_in_flight();
            assert!(
                in_flight <= sys.cores()[0].config.ldq,
                "LDQ overflow: {in_flight}"
            );
        }
        assert!(
            sys.cores()[0].stats.loads_by_level[2] > 0,
            "loads reached memory"
        );
    }

    #[test]
    fn store_buffer_backpressure_stalls_instead_of_dropping() {
        // A pure store stream over tiny caches floods the DRAM write queue;
        // the core must stall (store_stall_cycles) but never lose writebacks.
        let src = StreamStores {
            next: 0,
            wrap: 64 * 1024 * 1024,
        };
        let mut sys = build_tiny_caches(vec![Box::new(src)], 60_000);
        let out = sys.run(100_000_000);
        assert!(!out.timed_out);
        let stats = sys.cores()[0].stats;
        assert!(
            stats.store_stall_cycles > 0,
            "write-queue pressure must stall the core"
        );
        // Every line dirtied in steady state eventually reaches DRAM: the
        // write count tracks the L2 eviction count exactly.
        assert_eq!(
            sys.mem().stats().writes_completed,
            sys.hierarchy().stats().writebacks - sys.cores()[0].pending_writebacks.len() as u64,
        );
    }

    #[test]
    fn finished_cores_drain_without_fetching() {
        let src = StreamLoads {
            next: 0,
            wrap: 64 * 1024 * 1024,
            compute: 0,
            toggle: false,
        };
        let mut sys = build(vec![Box::new(src)], 1_000);
        let out = sys.run(10_000_000);
        assert!(!out.timed_out);
        // Retired may overshoot the target by at most one issue width.
        let retired = sys.cores()[0].stats.retired;
        assert!(retired >= 1_000);
        assert!(retired < 1_000 + 8, "no fetching after finish: {retired}");
    }

    #[test]
    fn stall_episodes_and_cpu_counters_reach_the_observability_layer() {
        use sim_obs::{RingSink, TraceEvent};
        use std::cell::RefCell;
        use std::rc::Rc;

        let src = StreamLoads {
            next: 0,
            wrap: 64 * 1024 * 1024,
            compute: 0,
            toggle: false,
        };
        let mut sys = build(vec![Box::new(src)], 20_000);
        let ring = Rc::new(RefCell::new(RingSink::new(1 << 17)));
        sys.set_trace_sink(Box::new(Rc::clone(&ring)));
        sys.mem_mut().set_metrics_epochs(2_000, None);
        let out = sys.run(50_000_000);
        assert!(!out.timed_out);

        // Stall episodes cover fully-stalled cycles: each accounted cycle
        // corresponds to a stall-counter increment with no retirement, so
        // the episode total is positive and never exceeds the raw counters.
        let stats = sys.cores()[0].stats;
        let episode_cycles: u64 = ring
            .borrow()
            .events()
            .filter_map(|e| match e {
                TraceEvent::CoreStall { cycles, .. } => Some(*cycles),
                _ => None,
            })
            .sum();
        let raw = stats.rob_stall_cycles + stats.ldq_stall_cycles + stats.store_stall_cycles;
        assert!(
            episode_cycles > 0,
            "a memory-bound stream must produce stall episodes"
        );
        assert!(
            episode_cycles <= raw,
            "episodes ({episode_cycles}) cannot exceed raw stall counters ({raw})"
        );

        // cpu.* counters land in the DRAM-side registry…
        let reg = &sys.mem().observer().registry;
        assert_eq!(reg.counter_value("cpu.retired"), Some(stats.retired));
        assert_eq!(reg.counter_value("cpu.stores"), Some(stats.stores));
        assert_eq!(
            reg.counter_value("cpu.loads.memory"),
            Some(stats.loads_by_level[2])
        );
        assert_eq!(reg.counter_value("cpu.cycles"), Some(sys.cpu_cycle()));
        assert!(reg.counter_value("cache.l1.misses").is_some());

        // …and their epoch deltas sum back to the end-of-run totals.
        let delta_sum: u64 = sys
            .mem()
            .observer()
            .snapshots()
            .iter()
            .flat_map(|s| s.counters.iter())
            .filter(|(name, _)| name == "cpu.retired")
            .map(|(_, delta)| *delta)
            .sum();
        assert_eq!(delta_sum, stats.retired);
    }

    #[test]
    fn snapshot_roundtrip_resumes_identically_multicore() {
        use sim_snap::SnapState;
        let mk = |next: u64, toggle: bool| -> Box<dyn InstructionSource> {
            Box::new(StreamLoads {
                next,
                wrap: 64 * 1024 * 1024,
                compute: 2,
                toggle,
            })
        };
        let mut live = build(vec![mk(0, false), mk(0, false)], 1_000_000);
        for _ in 0..40_000 {
            live.tick_cpu_cycle();
        }
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save(&mut w);
        let bytes = w.into_bytes();

        // The fresh system gets deliberately skewed sources: the overlay
        // must replace their positions, or the streams diverge immediately.
        let mut fresh = build(vec![mk(7_777, true), mk(7_777, true)], 1_000_000);
        let mut r = sim_snap::SnapReader::new(&bytes);
        fresh.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.cpu_cycle(), live.cpu_cycle());

        for _ in 0..40_000 {
            live.tick_cpu_cycle();
            fresh.tick_cpu_cycle();
        }
        for core in 0..2 {
            assert_eq!(
                format!("{:?}", live.cores()[core].stats),
                format!("{:?}", fresh.cores()[core].stats),
                "core {core} stats diverged after restore"
            );
        }
        assert_eq!(
            live.mem().stats().reads_completed,
            fresh.mem().stats().reads_completed
        );
        assert_eq!(
            live.mem().stats().writes_completed,
            fresh.mem().stats().writes_completed
        );
        assert_eq!(
            live.mem().stats().activations,
            fresh.mem().stats().activations
        );
        assert_eq!(
            live.mem().energy().total().to_bits(),
            fresh.mem().energy().total().to_bits()
        );
    }

    #[test]
    fn checkpoint_crash_resume_matches_uninterrupted_run() {
        use sim_snap::SnapState;
        let mk = |next: u64| -> Box<dyn InstructionSource> {
            Box::new(StreamLoads {
                next,
                wrap: 64 * 1024 * 1024,
                compute: 0,
                toggle: false,
            })
        };
        let mut reference = build(vec![mk(0)], 20_000);
        let ref_out = reference.try_run(50_000_000).unwrap();
        assert!(!ref_out.timed_out);

        // Crash after the third checkpoint: snapshots are taken on DRAM
        // cycle boundaries, then the run aborts mid-flight.
        let mut crashing = build(vec![mk(0)], 20_000);
        let mut snaps: Vec<(u64, Vec<u8>)> = Vec::new();
        let out = crashing
            .try_run_with_checkpoints(50_000_000, 2_000, |sys, mem_cycle| {
                let mut w = sim_snap::SnapWriter::new();
                sys.snap_save(&mut w);
                snaps.push((mem_cycle, w.into_bytes()));
                snaps.len() < 3
            })
            .unwrap();
        assert!(
            out.timed_out,
            "an aborted run reports the timeout-style stop"
        );
        assert_eq!(snaps.len(), 3);
        let (snap_cycle, bytes) = snaps.last().unwrap();
        assert!(*snap_cycle > 0);

        // Resume on a fresh system with a skewed source and finish the run.
        let mut resumed = build(vec![mk(9_999)], 20_000);
        let mut r = sim_snap::SnapReader::new(bytes);
        resumed.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        let res_out = resumed.try_run(50_000_000).unwrap();

        assert!(!res_out.timed_out);
        assert_eq!(res_out.cpu_cycles, ref_out.cpu_cycles);
        assert_eq!(
            res_out.per_core[0].instructions,
            ref_out.per_core[0].instructions
        );
        assert_eq!(res_out.per_core[0].cycles, ref_out.per_core[0].cycles);
        assert_eq!(
            resumed.mem().stats().reads_completed,
            reference.mem().stats().reads_completed
        );
        assert_eq!(
            resumed.mem().stats().activations,
            reference.mem().stats().activations
        );
        assert_eq!(
            resumed.mem().energy().total().to_bits(),
            reference.mem().energy().total().to_bits()
        );
    }

    #[test]
    fn four_cores_share_the_hierarchy() {
        let mk = || -> Box<dyn InstructionSource> {
            Box::new(StreamLoads {
                next: 0,
                wrap: 32 * 1024 * 1024,
                compute: 2,
                toggle: false,
            })
        };
        let mut sys = build(vec![mk(), mk(), mk(), mk()], 5_000);
        let out = sys.run(50_000_000);
        assert!(!out.timed_out);
        assert_eq!(out.per_core.len(), 4);
        for r in &out.per_core {
            assert!(r.instructions >= 5_000);
            assert!(r.ipc() > 0.0);
        }
    }
}
