//! The simplified out-of-order core model.
//!
//! This is the substitution for gem5's detailed O3 pipeline (see DESIGN.md):
//! an event-consuming core with the resource limits that matter to memory
//! studies — a reorder-buffer window bounding how far execution runs ahead
//! of the oldest outstanding load, a load-queue bound on memory-level
//! parallelism, and a store buffer that drains writebacks to the DRAM write
//! queue with back-pressure.

use mem_model::{PhysAddr, RequestId, WordMask};

/// One event in a core's dynamic instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `0` is allowed and simply fetches the next op.
    Compute(u32),
    /// A load from the given address.
    Load(PhysAddr),
    /// A store dirtying the masked words of the addressed line.
    Store(PhysAddr, WordMask),
}

/// An infinite dynamic instruction stream feeding one core.
///
/// Implemented by the workload generators; the stream never ends — the
/// system stops fetching once the core reaches its instruction target.
pub trait InstructionSource {
    /// Produces the next operation.
    fn next_op(&mut self) -> Op;

    /// Serialises the source's mutable position into a snapshot.
    ///
    /// The default writes nothing: a stateless source (or one whose stream
    /// is a pure function of construction parameters) restores for free.
    /// Stateful sources (generators with RNG state, trace replayers with a
    /// cursor) must override both hooks symmetrically, or a restored run
    /// will diverge from the uninterrupted one.
    fn snap_save_state(&self, w: &mut sim_snap::SnapWriter) {
        let _ = w;
    }

    /// Restores the source's mutable position from a snapshot, overlaying
    /// onto a freshly constructed (same-configuration) source.
    ///
    /// # Errors
    ///
    /// Returns a [`sim_snap::SnapError`] when the payload does not match
    /// what [`Self::snap_save_state`] wrote.
    fn snap_load_state(
        &mut self,
        r: &mut sim_snap::SnapReader<'_>,
    ) -> Result<(), sim_snap::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// Static core parameters (paper Table 3: 8-way superscalar,
/// LDQ/STQ/ROB = 32/32/192, 3.2 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions retired per CPU cycle when nothing stalls.
    pub width: u32,
    /// Instructions that may retire past the oldest outstanding load.
    pub rob: u64,
    /// Maximum outstanding demand loads (memory-level parallelism bound).
    pub ldq: usize,
    /// Store-buffer depth: pending writebacks plus outstanding store fills
    /// beyond this stall the core.
    pub stq: usize,
}

impl CoreConfig {
    /// The paper's core, with an effective width of 4 (8-wide fetch rarely
    /// sustains more than half its width on memory-intensive code).
    pub const fn paper() -> Self {
        CoreConfig {
            width: 4,
            rob: 192,
            ldq: 32,
            stq: 32,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper()
    }
}

/// An outstanding memory operation the core tracks.
#[derive(Debug, Clone, Copy)]
pub struct Outstanding {
    /// Completion by time (L2 hits) or by DRAM callback (reads).
    pub done_at: Option<u64>,
    /// DRAM request id, when the operation went to memory.
    pub req_id: Option<RequestId>,
    /// Retired-instruction count at issue, for the ROB window check.
    pub issued_at_retired: u64,
    /// `true` for demand loads (ROB-blocking), `false` for store fills.
    pub blocking: bool,
}

/// Why the core could not retire anything this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// ROB window exhausted behind the oldest load.
    RobFull,
    /// Load queue full.
    LdqFull,
    /// Store buffer full (writebacks back-pressured by the DRAM write
    /// queue, or too many outstanding store fills).
    StoreBufferFull,
}

/// Per-core stall and progress counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Retired instructions.
    pub retired: u64,
    /// Cycles fully stalled on the ROB window.
    pub rob_stall_cycles: u64,
    /// Cycles fully stalled on the load queue.
    pub ldq_stall_cycles: u64,
    /// Cycles fully stalled on the store buffer.
    pub store_stall_cycles: u64,
    /// Loads issued, by serving level: [L1, L2, memory].
    pub loads_by_level: [u64; 3],
    /// Stores executed.
    pub stores: u64,
}

/// Architectural state of one core.
///
/// The core is driven by [`crate::CpuSystem`]; it exposes its state so tests
/// can poke at individual transitions.
#[derive(Debug)]
pub struct Core {
    /// Configuration.
    pub config: CoreConfig,
    /// In-flight memory operations.
    pub outstanding: Vec<Outstanding>,
    /// Writebacks awaiting space in the DRAM write queue:
    /// `(line, dirty mask)`.
    pub pending_writebacks: Vec<(PhysAddr, WordMask)>,
    /// Non-memory instructions remaining from the current [`Op::Compute`].
    pub pending_compute: u64,
    /// An op fetched but not yet issued because a resource was full.
    pub deferred: Option<Op>,
    /// Instruction count at which the core stops fetching.
    pub target: u64,
    /// Counters.
    pub stats: CoreStats,
    /// CPU cycle at which the target was reached.
    pub finished_at: Option<u64>,
}

impl Core {
    /// Creates a core that will retire `target` instructions.
    pub fn new(config: CoreConfig, target: u64) -> Self {
        Core {
            config,
            outstanding: Vec::new(),
            pending_writebacks: Vec::new(),
            pending_compute: 0,
            deferred: None,
            target,
            stats: CoreStats::default(),
            finished_at: None,
        }
    }

    /// `true` once the instruction target has been retired.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Retires completed time-based operations and DRAM completions.
    pub fn complete_ready(&mut self, now: u64) {
        self.outstanding.retain(|o| match o.done_at {
            Some(t) => t > now,
            None => true,
        });
    }

    /// Marks the operation with `req_id` complete.
    pub fn complete_request(&mut self, req_id: RequestId) {
        self.outstanding.retain(|o| o.req_id != Some(req_id));
    }

    /// The ROB gate: `true` when the window behind the oldest outstanding
    /// blocking load is exhausted.
    pub fn rob_blocked(&self) -> bool {
        self.outstanding
            .iter()
            .filter(|o| o.blocking)
            .map(|o| o.issued_at_retired)
            .min()
            .is_some_and(|oldest| self.stats.retired >= oldest + self.config.rob)
    }

    /// Outstanding blocking loads.
    pub fn loads_in_flight(&self) -> usize {
        self.outstanding.iter().filter(|o| o.blocking).count()
    }

    /// Outstanding store fills.
    pub fn store_fills_in_flight(&self) -> usize {
        self.outstanding.iter().filter(|o| !o.blocking).count()
    }

    /// Retires `n` instructions, recording the finish cycle when the target
    /// is crossed.
    pub fn retire(&mut self, n: u64, now: u64) {
        self.stats.retired += n;
        if self.finished_at.is_none() && self.stats.retired >= self.target {
            self.finished_at = Some(now);
        }
    }
}

/// Writes one [`Op`] with a leading tag byte.
pub(crate) fn save_op(w: &mut sim_snap::SnapWriter, op: Op) {
    match op {
        Op::Compute(n) => {
            w.u8(0);
            w.u32(n);
        }
        Op::Load(a) => {
            w.u8(1);
            w.u64(a.raw());
        }
        Op::Store(a, m) => {
            w.u8(2);
            w.u64(a.raw());
            w.u8(m.bits());
        }
    }
}

/// Reads one [`Op`] written by [`save_op`].
pub(crate) fn load_op(r: &mut sim_snap::SnapReader<'_>) -> Result<Op, sim_snap::SnapError> {
    match r.u8()? {
        0 => Ok(Op::Compute(r.u32()?)),
        1 => Ok(Op::Load(PhysAddr::new(r.u64()?))),
        2 => {
            let addr = PhysAddr::new(r.u64()?);
            let mask = WordMask::from_bits(r.u8()?);
            Ok(Op::Store(addr, mask))
        }
        tag => Err(sim_snap::SnapError::Decode(format!("unknown op tag {tag}"))),
    }
}

impl sim_snap::SnapState for Core {
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        // `config` and `target` are construction parameters, covered by the
        // container's config digest.
        w.seq(self.outstanding.len());
        for o in &self.outstanding {
            w.opt_u64(o.done_at);
            w.opt_u64(o.req_id);
            w.u64(o.issued_at_retired);
            w.bool(o.blocking);
        }
        w.seq(self.pending_writebacks.len());
        for &(addr, mask) in &self.pending_writebacks {
            w.u64(addr.raw());
            w.u8(mask.bits());
        }
        w.u64(self.pending_compute);
        w.bool(self.deferred.is_some());
        if let Some(op) = self.deferred {
            save_op(w, op);
        }
        w.u64(self.stats.retired);
        w.u64(self.stats.rob_stall_cycles);
        w.u64(self.stats.ldq_stall_cycles);
        w.u64(self.stats.store_stall_cycles);
        for level in self.stats.loads_by_level {
            w.u64(level);
        }
        w.u64(self.stats.stores);
        w.opt_u64(self.finished_at);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader<'_>) -> Result<(), sim_snap::SnapError> {
        let n = r.seq()?;
        self.outstanding.clear();
        for _ in 0..n {
            self.outstanding.push(Outstanding {
                done_at: r.opt_u64()?,
                req_id: r.opt_u64()?,
                issued_at_retired: r.u64()?,
                blocking: r.bool()?,
            });
        }
        let n = r.seq()?;
        self.pending_writebacks.clear();
        for _ in 0..n {
            let addr = PhysAddr::new(r.u64()?);
            let mask = WordMask::from_bits(r.u8()?);
            self.pending_writebacks.push((addr, mask));
        }
        self.pending_compute = r.u64()?;
        self.deferred = if r.bool()? { Some(load_op(r)?) } else { None };
        self.stats.retired = r.u64()?;
        self.stats.rob_stall_cycles = r.u64()?;
        self.stats.ldq_stall_cycles = r.u64()?;
        self.stats.store_stall_cycles = r.u64()?;
        for level in &mut self.stats.loads_by_level {
            *level = r.u64()?;
        }
        self.stats.stores = r.u64()?;
        self.finished_at = r.opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rob_gate_engages_at_window() {
        let mut c = Core::new(
            CoreConfig {
                width: 4,
                rob: 8,
                ldq: 4,
                stq: 4,
            },
            1000,
        );
        assert!(!c.rob_blocked());
        c.outstanding.push(Outstanding {
            done_at: None,
            req_id: Some(1),
            issued_at_retired: 0,
            blocking: true,
        });
        c.retire(7, 0);
        assert!(!c.rob_blocked());
        c.retire(1, 0);
        assert!(c.rob_blocked());
        c.complete_request(1);
        assert!(!c.rob_blocked());
    }

    #[test]
    fn store_fills_do_not_block_rob() {
        let mut c = Core::new(
            CoreConfig {
                width: 4,
                rob: 8,
                ldq: 4,
                stq: 4,
            },
            1000,
        );
        c.outstanding.push(Outstanding {
            done_at: None,
            req_id: Some(1),
            issued_at_retired: 0,
            blocking: false,
        });
        c.retire(100, 0);
        assert!(!c.rob_blocked(), "store fills never gate retirement");
        assert_eq!(c.store_fills_in_flight(), 1);
        assert_eq!(c.loads_in_flight(), 0);
    }

    #[test]
    fn timed_completions_expire() {
        let mut c = Core::new(CoreConfig::paper(), 1000);
        c.outstanding.push(Outstanding {
            done_at: Some(20),
            req_id: None,
            issued_at_retired: 0,
            blocking: true,
        });
        c.complete_ready(19);
        assert_eq!(c.loads_in_flight(), 1);
        c.complete_ready(20);
        assert_eq!(c.loads_in_flight(), 0);
    }

    #[test]
    fn finish_records_cycle() {
        let mut c = Core::new(CoreConfig::paper(), 10);
        c.retire(9, 5);
        assert!(!c.finished());
        c.retire(3, 7);
        assert_eq!(c.finished_at, Some(7));
        // Further retires do not move the finish cycle.
        c.retire(5, 9);
        assert_eq!(c.finished_at, Some(7));
    }
}
