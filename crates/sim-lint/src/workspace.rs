//! Workspace discovery: finds every `.rs` source file in the repository and
//! loads the `docs/metrics.md` manifest.

use std::fs;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// Metric kinds a manifest entry may declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Value distribution.
    Histogram,
    /// Trace-event kind tag (uppercase).
    TraceEvent,
}

impl MetricKind {
    /// Parses a manifest kind cell (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            "trace-event" => Some(MetricKind::TraceEvent),
            _ => None,
        }
    }

    /// Human name matching the manifest spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::TraceEvent => "trace-event",
        }
    }
}

/// One row of the `docs/metrics.md` manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Metric or trace-event name.
    pub name: String,
    /// Declared kind.
    pub kind: MetricKind,
    /// `true` when the name is built at runtime (`format!`), so no string
    /// literal in code will match it.
    pub dynamic: bool,
    /// 1-based line in the manifest file.
    pub line: u32,
}

/// Parsed `docs/metrics.md`.
#[derive(Debug, Default)]
pub struct Manifest {
    /// All declared entries, in file order.
    pub entries: Vec<ManifestEntry>,
    /// Rows that looked like entries but could not be parsed.
    pub errors: Vec<(u32, String)>,
}

impl Manifest {
    /// Parses manifest markdown. Recognized rows are table rows whose first
    /// cell is a backticked name and whose second cell names a kind,
    /// optionally suffixed `(dynamic)`.
    pub fn parse(text: &str) -> Self {
        let mut m = Manifest::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let trimmed = raw.trim();
            if !trimmed.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = trimmed
                .trim_matches('|')
                .split('|')
                .map(str::trim)
                .collect();
            if cells.len() < 2 {
                continue;
            }
            let first = cells[0];
            // Header / separator rows have no backticked first cell.
            if !(first.starts_with('`') && first.ends_with('`') && first.len() > 2) {
                continue;
            }
            let name = first.trim_matches('`').to_string();
            let kind_cell = cells[1];
            let dynamic = kind_cell.contains("(dynamic)");
            let kind_word = kind_cell.replace("(dynamic)", "");
            match MetricKind::parse(kind_word.trim()) {
                Some(kind) => m.entries.push(ManifestEntry {
                    name,
                    kind,
                    dynamic,
                    line,
                }),
                None => m.errors.push((
                    line,
                    format!(
                        "manifest row for `{}` has unknown kind `{}` (expected counter, \
                         gauge, histogram or trace-event)",
                        name, kind_cell
                    ),
                )),
            }
        }
        m
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// Everything the lint passes need: lexed sources plus the metric manifest.
pub struct Workspace {
    /// All lexed source files, in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
    /// Parsed `docs/metrics.md`, if present.
    pub manifest: Option<Manifest>,
    /// Workspace-relative manifest path (for diagnostics).
    pub manifest_path: String,
}

/// Loads every crate's `src/**/*.rs` (plus the root package's `src/`) and
/// the metrics manifest from `root`.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    let mut files = Vec::new();
    load_src_dir(&root.join("src"), root, "pra-repro", &mut files)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        let rd = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        for entry in rd {
            let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
            if entry.path().is_dir() {
                crate_dirs.push(entry.path());
            }
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unknown")
            .to_string();
        load_src_dir(&dir.join("src"), root, &crate_name, &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    if files.is_empty() {
        // Nothing to lint means the root is wrong, not that the code is
        // clean — surface it as an internal error (CLI exit 2), never as a
        // green run.
        return Err(format!(
            "no Rust sources found under {} — is this a workspace root?",
            root.display()
        ));
    }

    let manifest_path = "docs/metrics.md".to_string();
    let manifest = match fs::read_to_string(root.join(&manifest_path)) {
        Ok(text) => Some(Manifest::parse(&text)),
        Err(_) => None,
    };
    Ok(Workspace {
        files,
        manifest,
        manifest_path,
    })
}

fn load_src_dir(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let rd = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            load_src_dir(&path, root, crate_name, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map(|p| p.to_string_lossy().replace('\\', "/"))
                .unwrap_or_else(|_| path.to_string_lossy().into_owned());
            out.push(SourceFile::parse(crate_name, &rel, &text, false));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parses_rows_and_dynamic_marker() {
        let m = Manifest::parse(
            "| Name | Kind | Meaning |\n\
             | --- | --- | --- |\n\
             | `dram.cycles` | counter | ticks |\n\
             | `dram.read_latency` | histogram | latency |\n\
             | `fault.injected` | counter (dynamic) | built with format! |\n\
             | `ACT` | trace-event | activate |\n",
        );
        assert_eq!(m.entries.len(), 4);
        assert!(m.errors.is_empty());
        assert_eq!(m.get("dram.cycles").unwrap().kind, MetricKind::Counter);
        assert!(m.get("fault.injected").unwrap().dynamic);
        assert_eq!(m.get("ACT").unwrap().kind, MetricKind::TraceEvent);
    }

    #[test]
    fn manifest_flags_unknown_kind() {
        let m = Manifest::parse("| `x.y` | timer | huh |\n");
        assert!(m.entries.is_empty());
        assert_eq!(m.errors.len(), 1);
    }

    #[test]
    fn separator_and_header_rows_are_skipped() {
        let m = Manifest::parse("| Name | Kind |\n|---|---|\n");
        assert!(m.entries.is_empty());
        assert!(m.errors.is_empty());
    }
}
