//! Workspace item index: a hand-rolled item-level parser on top of the
//! lexer.
//!
//! The index records every `fn` (free functions, inherent and trait-impl
//! methods, trait default methods) with its module path, enclosing type,
//! parameter types, whether it returns a `Result`, and the token range of
//! its body — enough for the call-graph builder and the interprocedural
//! passes to work without ever type-checking. It also records trait
//! definitions (for trait-object dispatch), which types implement which
//! traits, and per-file `use` renames (so a call through
//! `use crate::a::b as c;` still resolves).
//!
//! The parser is deliberately conservative: anything it cannot classify it
//! skips, so an exotic construct degrades analysis precision, never
//! correctness of the build.

use std::collections::HashMap;

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// How a parameter (or `let` binding) is typed, as far as the index cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamTy {
    /// A concrete nominal type; the stored name is the path's last segment
    /// before any generic arguments (`&mut Vec<Foo>` records `Vec`).
    Named(String),
    /// A trait object or `impl Trait` (`&dyn Sink`, `Box<dyn Sink>`,
    /// `impl Iterator`); the stored name is the trait.
    TraitObj(String),
}

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into `Workspace::files`.
    pub file_idx: usize,
    /// Crate directory name (`dram-sim`).
    pub crate_name: String,
    /// Module path inside the crate (`["channel"]`), file- and inline-mods
    /// combined. The crate root is the empty path.
    pub module_path: Vec<String>,
    /// Enclosing `impl` type (or trait, for default methods); `None` for
    /// free functions.
    pub self_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[start, end]` of the body braces; `None` for
    /// bodyless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Parameter names and types, `self` excluded.
    pub params: Vec<(String, Option<ParamTy>)>,
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the item sits inside test-only code.
    pub is_test: bool,
}

impl FnItem {
    /// Display name for diagnostics: `Type::method` or `fn_name`.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }
}

/// A trait definition and the methods it declares.
#[derive(Debug, Clone)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// Declared method names (with or without default bodies).
    pub methods: Vec<String>,
}

/// A `use` rename visible in one file: simple name → path segments.
#[derive(Debug, Clone)]
pub struct UseEntry {
    /// The name the import is visible as in this file.
    pub alias: String,
    /// Full path segments as written (`["crate", "util", "boom"]`).
    pub path: Vec<String>,
}

/// The workspace-wide item index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Every indexed function.
    pub fns: Vec<FnItem>,
    /// Every trait definition.
    pub traits: Vec<TraitDef>,
    /// `impl Trait for Type` pairs: trait name → implementing type names.
    pub trait_impls: HashMap<String, Vec<String>>,
    /// Per-file `use` entries, keyed by file index.
    pub uses: HashMap<usize, Vec<UseEntry>>,
}

impl ItemIndex {
    /// Builds the index over every file in the workspace.
    pub fn build(ws: &Workspace) -> Self {
        let mut idx = ItemIndex::default();
        for (file_idx, file) in ws.files.iter().enumerate() {
            let mut p = Parser {
                file,
                file_idx,
                module_path: module_path_of(&file.rel_path),
                idx: &mut idx,
            };
            p.scan(0, file.tokens.len(), &ImplCtx::None);
        }
        idx
    }

    /// All non-test functions named `name` that are methods (have a self
    /// type).
    pub fn methods_named(&self, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.self_type.is_some() && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// All non-test free functions named `name`.
    pub fn free_fns_named(&self, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.self_type.is_none() && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Methods named `name` on the concrete type `ty`.
    pub fn methods_on(&self, ty: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && f.self_type.as_deref() == Some(ty) && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// Methods named `name` reachable through a `dyn Trait` receiver: every
    /// implementation on a type implementing the trait, plus the trait's
    /// default body if indexed.
    pub fn trait_dispatch(&self, trait_name: &str, name: &str) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(types) = self.trait_impls.get(trait_name) {
            for ty in types {
                out.extend(self.methods_on(ty, name));
            }
        }
        // Default method body on the trait itself.
        out.extend(self.methods_on(trait_name, name));
        out
    }
}

/// Derives the module path from a workspace-relative file path:
/// `crates/dram-sim/src/channel.rs` → `["channel"]`,
/// `crates/x/src/passes/mod.rs` → `["passes"]`,
/// `crates/x/src/passes/foo.rs` → `["passes", "foo"]`, crate roots → `[]`.
fn module_path_of(rel_path: &str) -> Vec<String> {
    let Some(src_pos) = rel_path.find("src/") else {
        return Vec::new();
    };
    let tail = &rel_path[src_pos + 4..];
    let mut segs: Vec<String> = tail
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if let Some(last) = segs.last() {
        if last == "lib" || last == "main" || last == "mod" {
            segs.pop();
        }
    }
    segs
}

/// What encloses the tokens currently being scanned.
enum ImplCtx {
    /// Module level.
    None,
    /// Inside `impl Type` / `impl Trait for Type`.
    Impl {
        type_name: String,
        trait_name: Option<String>,
    },
    /// Inside `trait Name { ... }`.
    Trait { name: String },
}

struct Parser<'a> {
    file: &'a SourceFile,
    file_idx: usize,
    module_path: Vec<String>,
    idx: &'a mut ItemIndex,
}

impl Parser<'_> {
    /// Scans tokens in `[start, end)` at item level.
    fn scan(&mut self, start: usize, end: usize, ctx: &ImplCtx) {
        let toks = &self.file.tokens;
        let mut i = start;
        while i < end {
            let t = &toks[i];
            match (&t.kind, t.text.as_str()) {
                (TokKind::Punct('#'), _) => {
                    // Attribute: skip to the matching `]`.
                    i = skip_attribute(toks, i, end);
                }
                (TokKind::Ident, "mod") => {
                    if i + 1 < end && toks[i + 1].kind == TokKind::Ident {
                        let name = toks[i + 1].text.clone();
                        if let Some(open) = find_punct(toks, i + 2, end, '{', ';') {
                            let close = match_brace(toks, open, end);
                            self.module_path.push(name);
                            self.scan(open + 1, close, &ImplCtx::None);
                            self.module_path.pop();
                            i = close + 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                (TokKind::Ident, "impl") => {
                    let (type_name, trait_name, open) = parse_impl_header(toks, i + 1, end);
                    match open {
                        Some(open) => {
                            let close = match_brace(toks, open, end);
                            if let Some(tn) = &type_name {
                                if let Some(tr) = &trait_name {
                                    self.idx
                                        .trait_impls
                                        .entry(tr.clone())
                                        .or_default()
                                        .push(tn.clone());
                                }
                                let ctx = ImplCtx::Impl {
                                    type_name: tn.clone(),
                                    trait_name: trait_name.clone(),
                                };
                                self.scan(open + 1, close, &ctx);
                            }
                            i = close + 1;
                        }
                        None => i += 1,
                    }
                }
                (TokKind::Ident, "trait") => {
                    if i + 1 < end && toks[i + 1].kind == TokKind::Ident {
                        let name = toks[i + 1].text.clone();
                        if let Some(open) = find_punct(toks, i + 2, end, '{', ';') {
                            let close = match_brace(toks, open, end);
                            let before = self.idx.fns.len();
                            self.scan(open + 1, close, &ImplCtx::Trait { name: name.clone() });
                            let methods = self.idx.fns[before..]
                                .iter()
                                .map(|f| f.name.clone())
                                .collect();
                            self.idx.traits.push(TraitDef { name, methods });
                            i = close + 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                (TokKind::Ident, "fn") => {
                    i = self.parse_fn(i, end, ctx);
                }
                (TokKind::Ident, "use") => {
                    i = self.parse_use(i + 1, end);
                }
                (TokKind::Ident, "struct" | "enum" | "union") => {
                    i = skip_type_item(toks, i + 1, end);
                }
                (TokKind::Ident, "const" | "static" | "type") => {
                    // `const fn` / `static` items; let the `fn` branch handle
                    // functions, otherwise skip to the terminating `;`.
                    if i + 1 < end && toks[i + 1].is_ident("fn") {
                        i += 1;
                    } else {
                        i = skip_to_semi(toks, i + 1, end);
                    }
                }
                (TokKind::Ident, "macro_rules") => {
                    if let Some(open) = find_punct(toks, i + 1, end, '{', ';') {
                        i = match_brace(toks, open, end) + 1;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// Parses one `fn` item starting at the `fn` keyword; returns the index
    /// just past the item.
    fn parse_fn(&mut self, fn_kw: usize, end: usize, ctx: &ImplCtx) -> usize {
        let toks = &self.file.tokens;
        let Some(name_tok) = toks.get(fn_kw + 1) else {
            return fn_kw + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return fn_kw + 1;
        }
        let name = name_tok.text.clone();
        // Skip generics between the name and the parameter list.
        let mut j = fn_kw + 2;
        if j < end && toks[j].is_punct('<') {
            j = match_angle(toks, j, end) + 1;
        }
        if j >= end || !toks[j].is_punct('(') {
            return fn_kw + 1;
        }
        let params_open = j;
        let params_close = match_delim(toks, params_open, end, '(', ')');
        let params = parse_params(toks, params_open + 1, params_close);

        // Return type: tokens between `->` and the body `{`, a `;`, or a
        // `where` clause.
        let mut k = params_close + 1;
        let mut returns_result = false;
        if k + 1 < end && toks[k].is_punct('-') && toks[k + 1].is_punct('>') {
            k += 2;
            let mut angle = 0i32;
            while k < end {
                match &toks[k].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct('{') | TokKind::Punct(';') if angle <= 0 => break,
                    TokKind::Ident if toks[k].text == "where" && angle <= 0 => break,
                    TokKind::Ident if toks[k].text == "Result" => returns_result = true,
                    _ => {}
                }
                k += 1;
            }
        }
        // Skip a where clause.
        while k < end && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
            k += 1;
        }
        let (body, next) = if k < end && toks[k].is_punct('{') {
            let close = match_brace(toks, k, end);
            (Some((k, close)), close + 1)
        } else {
            (None, (k + 1).min(end))
        };

        let (self_type, trait_name) = match ctx {
            ImplCtx::None => (None, None),
            ImplCtx::Impl {
                type_name,
                trait_name,
            } => (Some(type_name.clone()), trait_name.clone()),
            ImplCtx::Trait { name } => (Some(name.clone()), Some(name.clone())),
        };
        self.idx.fns.push(FnItem {
            file_idx: self.file_idx,
            crate_name: self.file.crate_name.clone(),
            module_path: self.module_path.clone(),
            self_type,
            trait_name,
            name,
            line: toks[fn_kw].line,
            body,
            params,
            returns_result,
            is_test: self.file.test_mask.get(fn_kw).copied().unwrap_or(false),
        });
        next
    }

    /// Parses a `use` declaration after the `use` keyword; returns the index
    /// just past the terminating `;`. Handles `a::b`, `a::b as c` and one
    /// level of `{...}` groups.
    fn parse_use(&mut self, start: usize, end: usize) -> usize {
        let toks = &self.file.tokens;
        let mut prefix: Vec<String> = Vec::new();
        let mut i = start;
        while i < end {
            match &toks[i].kind {
                TokKind::Ident => {
                    prefix.push(toks[i].text.clone());
                    i += 1;
                }
                TokKind::Punct(':') => i += 1,
                TokKind::Punct('{') => {
                    let close = match_brace(toks, i, end);
                    let mut item: Vec<String> = Vec::new();
                    let mut alias: Option<String> = None;
                    let mut saw_as = false;
                    let mut j = i + 1;
                    let mut depth = 0i32;
                    while j <= close {
                        let done = j == close || (depth == 0 && toks[j].is_punct(','));
                        if done {
                            if let Some(entry) = use_entry(&prefix, &item, alias.take()) {
                                self.idx.uses.entry(self.file_idx).or_default().push(entry);
                            }
                            item.clear();
                            saw_as = false;
                            j += 1;
                            continue;
                        }
                        match &toks[j].kind {
                            TokKind::Punct('{') => depth += 1,
                            TokKind::Punct('}') => depth -= 1,
                            TokKind::Ident if toks[j].text == "as" && depth == 0 => saw_as = true,
                            TokKind::Ident if depth == 0 => {
                                if saw_as {
                                    alias = Some(toks[j].text.clone());
                                } else {
                                    item.push(toks[j].text.clone());
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return skip_to_semi(toks, close + 1, end);
                }
                TokKind::Punct(';') => {
                    // Flat path, possibly with a trailing `as alias`.
                    let (path, alias) = split_as(&prefix);
                    if let Some(entry) = use_entry(&[], &path, alias) {
                        self.idx.uses.entry(self.file_idx).or_default().push(entry);
                    }
                    return i + 1;
                }
                TokKind::Punct('*') => {
                    // Glob import: nothing nameable to record.
                    return skip_to_semi(toks, i + 1, end);
                }
                _ => i += 1,
            }
        }
        end
    }
}

/// Splits `["a", "b", "as", "c"]` into (`["a","b"]`, `Some("c")`).
fn split_as(segs: &[String]) -> (Vec<String>, Option<String>) {
    if let Some(pos) = segs.iter().position(|s| s == "as") {
        (segs[..pos].to_vec(), segs.get(pos + 1).cloned())
    } else {
        (segs.to_vec(), None)
    }
}

/// Builds a [`UseEntry`] from a path prefix, item segments, and an optional
/// alias. Returns `None` for empty or `self`-only items.
fn use_entry(prefix: &[String], item: &[String], alias: Option<String>) -> Option<UseEntry> {
    let (item, alias) = match alias {
        Some(a) => (item.to_vec(), Some(a)),
        None => {
            let (path, a) = split_as(item);
            (path, a)
        }
    };
    let mut path: Vec<String> = prefix.to_vec();
    path.extend(item.iter().cloned());
    // `use a::b::{self}` imports `b` itself.
    if path.last().map(|s| s == "self").unwrap_or(false) {
        path.pop();
    }
    let last = path.last()?.clone();
    let alias = alias.unwrap_or(last);
    Some(UseEntry { alias, path })
}

/// Parses a parameter list token range into `(name, type)` pairs, skipping
/// any `self` receiver.
fn parse_params(toks: &[Token], start: usize, end: usize) -> Vec<(String, Option<ParamTy>)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        // One parameter: tokens up to a top-level comma.
        let mut depth = 0i32;
        let p_start = i;
        while i < end {
            match &toks[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
                TokKind::Punct(',') if depth <= 0 => break,
                _ => {}
            }
            i += 1;
        }
        let p_end = i;
        i += 1; // past the comma
                // Find the top-level `:` separating pattern and type.
        let mut colon = None;
        let mut depth = 0i32;
        for j in p_start..p_end {
            match &toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
                TokKind::Punct(':') if depth == 0 => {
                    // `::` is two adjacent colons; a lone `:` is the separator.
                    let double = (j + 1 < p_end && toks[j + 1].is_punct(':'))
                        || (j > p_start && toks[j - 1].is_punct(':'));
                    if !double {
                        colon = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(colon) = colon else {
            continue; // `self`, `&mut self`, or an unreadable pattern
        };
        // Name: last ident of the pattern (handles `mut x`).
        let name = toks[p_start..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone());
        let Some(name) = name else { continue };
        if name == "self" {
            continue;
        }
        let ty = extract_type(&toks[colon + 1..p_end]);
        out.push((name, ty));
    }
    out
}

/// Extracts the analysable type from a type token slice: a trait object /
/// `impl Trait` becomes [`ParamTy::TraitObj`]; otherwise the last plain
/// ident of the leading path at angle depth zero (`&mut a::Vec<Foo>` →
/// `Vec`).
pub fn extract_type(toks: &[Token]) -> Option<ParamTy> {
    for (j, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "dyn" || t.text == "impl") {
            let tr = toks[j + 1..].iter().find(|t| t.kind == TokKind::Ident)?;
            return Some(ParamTy::TraitObj(tr.text.clone()));
        }
    }
    let mut last: Option<String> = None;
    let mut angle = 0i32;
    for t in toks {
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident if angle == 0 => {
                if t.text == "mut" || t.text == "ref" {
                    continue;
                }
                last = Some(t.text.clone());
            }
            // A container like `Box<dyn _>` was handled above; for
            // `Option<Foo>` we keep the container name, which is the honest
            // conservative answer (we cannot see through the generic).
            _ => {}
        }
        if angle > 0 && last.is_some() {
            break; // keep the container, don't descend into generics
        }
    }
    last.map(ParamTy::Named)
}

/// Parses an `impl` header after the `impl` keyword. Returns
/// `(type_name, trait_name, index_of_open_brace)`.
fn parse_impl_header(
    toks: &[Token],
    start: usize,
    end: usize,
) -> (Option<String>, Option<String>, Option<usize>) {
    let mut i = start;
    // Skip generic parameters right after `impl`.
    if i < end && toks[i].is_punct('<') {
        i = match_angle(toks, i, end) + 1;
    }
    let mut first_path_last: Option<String> = None;
    let mut second_path_last: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0i32;
    while i < end {
        match (&toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct('<'), _) => angle += 1,
            (TokKind::Punct('>'), _) => angle -= 1,
            (TokKind::Punct('{'), _) if angle <= 0 => {
                return if saw_for {
                    (second_path_last, first_path_last, Some(i))
                } else {
                    (first_path_last, None, Some(i))
                };
            }
            (TokKind::Ident, "for") if angle <= 0 => saw_for = true,
            (TokKind::Ident, "where") if angle <= 0 => {
                // Skip the where clause to the brace.
                while i < end && !toks[i].is_punct('{') {
                    i += 1;
                }
                continue;
            }
            (TokKind::Ident, name) if angle <= 0 && name != "dyn" => {
                if saw_for {
                    second_path_last = Some(name.to_string());
                } else {
                    first_path_last = Some(name.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (None, None, None)
}

// ---------------------------------------------------------------- helpers

/// Finds the first `want` punct in `[start, end)`, stopping early at `stop`.
fn find_punct(toks: &[Token], start: usize, end: usize, want: char, stop: char) -> Option<usize> {
    (start..end)
        .find(|&j| toks[j].is_punct(want))
        .filter(|&j| !(start..j).any(|k| toks[k].is_punct(stop)))
}

/// From the index of an opening `{`, returns the index of its matching `}`
/// (or the last token if unterminated).
pub fn match_brace(toks: &[Token], open: usize, end: usize) -> usize {
    match_delim(toks, open, end, '{', '}')
}

fn match_delim(toks: &[Token], open: usize, end: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        if toks[j].is_punct(o) {
            depth += 1;
        } else if toks[j].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// From the index of an opening `<`, returns the index of the matching `>`;
/// treats `->` and shifts conservatively (lint-level parsing only needs to
/// get past generics in signatures, where neither occurs).
fn match_angle(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Skips an attribute starting at `#`; returns the index past the `]`.
fn skip_attribute(toks: &[Token], hash: usize, end: usize) -> usize {
    let mut j = hash + 1;
    if j < end && toks[j].is_punct('!') {
        j += 1;
    }
    if j < end && toks[j].is_punct('[') {
        return match_delim(toks, j, end, '[', ']') + 1;
    }
    hash + 1
}

/// Skips a struct/enum/union item body: to the first top-level `;` or
/// through the matching `{}` block.
fn skip_type_item(toks: &[Token], start: usize, end: usize) -> usize {
    let mut j = start;
    let mut paren = 0i32;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct(';') if paren == 0 => return j + 1,
            TokKind::Punct('{') if paren == 0 => return match_brace(toks, j, end) + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Skips to just past the next top-level `;`.
fn skip_to_semi(toks: &[Token], start: usize, end: usize) -> usize {
    let mut j = start;
    let mut depth = 0i32;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(';') if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn index(src: &str) -> ItemIndex {
        let ws = Workspace {
            files: vec![SourceFile::parse(
                "dram-sim",
                "crates/dram-sim/src/channel.rs",
                src,
                false,
            )],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        };
        ItemIndex::build(&ws)
    }

    #[test]
    fn free_fn_and_method_are_indexed_with_module_path() {
        let idx = index(
            "pub fn helper(x: u64) -> u64 { x }\n\
             pub struct Channel { q: Vec<u64> }\n\
             impl Channel {\n    pub fn tick(&mut self, now: u64) { helper(now); }\n}\n",
        );
        assert_eq!(idx.fns.len(), 2);
        let helper = &idx.fns[0];
        assert_eq!(helper.name, "helper");
        assert_eq!(helper.module_path, ["channel"]);
        assert!(helper.self_type.is_none());
        let tick = &idx.fns[1];
        assert_eq!(tick.display(), "Channel::tick");
        assert_eq!(
            tick.params,
            [("now".to_string(), Some(ParamTy::Named("u64".into())))]
        );
        assert!(tick.body.is_some());
    }

    #[test]
    fn trait_impl_records_trait_and_type() {
        let idx = index(
            "pub trait Sink {\n    fn push(&mut self, v: u64);\n    fn twice(&mut self, v: u64) { self.push(v); }\n}\n\
             pub struct Ring;\n\
             impl Sink for Ring {\n    fn push(&mut self, v: u64) {}\n}\n",
        );
        let tr = idx.traits.iter().find(|t| t.name == "Sink").unwrap();
        assert!(tr.methods.contains(&"push".to_string()));
        assert!(tr.methods.contains(&"twice".to_string()));
        assert_eq!(idx.trait_impls["Sink"], ["Ring"]);
        let push_impl = idx
            .fns
            .iter()
            .find(|f| f.name == "push" && f.self_type.as_deref() == Some("Ring"))
            .unwrap();
        assert_eq!(push_impl.trait_name.as_deref(), Some("Sink"));
    }

    #[test]
    fn returns_result_is_detected_through_paths_and_generics() {
        let idx = index(
            "fn a() -> Result<u64, Error> { Ok(1) }\n\
             fn b() -> std::result::Result<(), E> { Ok(()) }\n\
             fn c() -> u64 { 1 }\n\
             fn d() -> Option<Result<u8, E>> { None }\n",
        );
        let by_name = |n: &str| idx.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("a").returns_result);
        assert!(by_name("b").returns_result);
        assert!(!by_name("c").returns_result);
        assert!(by_name("d").returns_result);
    }

    #[test]
    fn inline_mod_extends_the_module_path() {
        let idx = index("mod inner {\n    pub fn deep() {}\n}\nfn outer() {}\n");
        let deep = idx.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.module_path, ["channel", "inner"]);
        let outer = idx.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.module_path, ["channel"]);
    }

    #[test]
    fn use_renames_and_groups_are_recorded() {
        let idx = index(
            "use crate::util::boom;\n\
             use crate::util::helpers::{spark, fizz as buzz};\n\
             use std::collections::HashMap as Map;\n",
        );
        let uses = &idx.uses[&0];
        let get = |a: &str| uses.iter().find(|u| u.alias == a).unwrap();
        assert_eq!(get("boom").path, ["crate", "util", "boom"]);
        assert_eq!(get("spark").path, ["crate", "util", "helpers", "spark"]);
        assert_eq!(get("buzz").path, ["crate", "util", "helpers", "fizz"]);
        assert_eq!(get("Map").path, ["std", "collections", "HashMap"]);
    }

    #[test]
    fn trait_object_and_impl_trait_params() {
        let idx = index(
            "trait Sink { fn push(&mut self); }\n\
             fn a(s: &mut dyn Sink) {}\n\
             fn b(s: Box<dyn Sink>) {}\n\
             fn c(s: impl Sink) {}\n",
        );
        for name in ["a", "b", "c"] {
            let f = idx.fns.iter().find(|f| f.name == name).unwrap();
            assert_eq!(
                f.params[0].1,
                Some(ParamTy::TraitObj("Sink".into())),
                "{name}"
            );
        }
    }

    #[test]
    fn test_fns_are_marked() {
        let idx = index("fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n");
        assert!(!idx.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(idx.fns.iter().find(|f| f.name == "t").unwrap().is_test);
    }

    #[test]
    fn const_fn_and_generic_fn_parse() {
        let idx = index(
            "pub const fn cap() -> usize { 8 }\n\
             pub fn pick<T: Clone>(items: &[T], n: usize) -> T where T: Default { items[n].clone() }\n",
        );
        assert!(idx.fns.iter().any(|f| f.name == "cap"));
        let pick = idx.fns.iter().find(|f| f.name == "pick").unwrap();
        assert_eq!(pick.params.len(), 2);
        assert!(!pick.returns_result);
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(
            module_path_of("crates/dram-sim/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(module_path_of("crates/x/src/passes/mod.rs"), ["passes"]);
        assert_eq!(
            module_path_of("crates/x/src/passes/foo.rs"),
            ["passes", "foo"]
        );
        assert_eq!(module_path_of("src/main.rs"), Vec::<String>::new());
    }
}
