//! Source-file model: lexed tokens, `#[cfg(test)]` region exclusion and
//! suppression pragmas.
//!
//! # Pragma syntax
//!
//! ```text
//! // sim-lint: allow(lint-name): reason the suppression is sound
//! // sim-lint: allow-file(lint-name): reason the whole file is exempt
//! ```
//!
//! A line pragma suppresses diagnostics of the named lint(s) on its own
//! line and on the line directly below it (so it works both trailing a
//! statement and on the line above one). The reason text after the closing
//! parenthesis is mandatory — an unexplained suppression is itself a
//! violation (reported by the always-on `pragma` meta lint, which cannot be
//! suppressed).

use crate::lexer::{lex, Comment, TokKind, Token};

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Lint names listed inside `allow(...)`.
    pub lints: Vec<String>,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// `true` for `allow-file` (whole-file suppression).
    pub file_level: bool,
    /// Justification text after the directive; required.
    pub reason: String,
}

/// Ill-formed pragma found while parsing comments.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// One lexed, region-annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Directory name of the owning crate (`dram-sim`, `core`, …).
    pub crate_name: String,
    /// Workspace-relative path (`crates/dram-sim/src/channel.rs`).
    pub rel_path: String,
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is `true` when `tokens[i]` sits inside a
    /// `#[cfg(test)]` / `#[test]` item (or the whole file is test code).
    pub test_mask: Vec<bool>,
    /// Suppression pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Ill-formed pragmas (reported by the `pragma` meta lint).
    pub pragma_errors: Vec<PragmaError>,
}

impl SourceFile {
    /// Lexes and annotates one file. `force_test` marks the entire file as
    /// test code (integration tests, benches, examples).
    pub fn parse(crate_name: &str, rel_path: &str, text: &str, force_test: bool) -> Self {
        let lexed = lex(text);
        let test_mask = if force_test {
            vec![true; lexed.tokens.len()]
        } else {
            mark_test_regions(&lexed.tokens)
        };
        let (pragmas, pragma_errors) = parse_pragmas(&lexed.comments);
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            tokens: lexed.tokens,
            test_mask,
            pragmas,
            pragma_errors,
        }
    }

    /// Iterates `(index, token)` over non-test code tokens.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.test_mask[*i])
    }

    /// Whether a diagnostic of `lint` at `line` is suppressed by a pragma.
    pub fn suppresses(&self, lint: &str, line: u32) -> bool {
        self.pragmas.iter().any(|p| {
            p.lints.iter().any(|l| l == lint)
                && (p.file_level || p.line == line || p.line + 1 == line)
        })
    }
}

/// Marks tokens covered by `#[test]` / `#[cfg(test)]` items (attribute
/// through the end of the annotated item).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                // Skip any further attributes, then the item itself.
                let mut j = attr_end + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    let (e, _) = scan_attribute(tokens, j + 1);
                    j = e + 1;
                }
                let item_end = skip_item(tokens, j);
                for slot in mask.iter_mut().take(item_end + 1).skip(i) {
                    *slot = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// From the index of the opening `[`, returns (index of the matching `]`,
/// whether the attribute gates test-only code). `#[test]` and
/// `#[cfg(test)]`-style attributes count; `#[cfg(not(test))]` and
/// `#[cfg_attr(test, ...)]` do not.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = open;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident => idents.push(tokens[j].text.as_str()),
            _ => {}
        }
        j += 1;
    }
    let is_test = match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j.min(tokens.len().saturating_sub(1)), is_test)
}

/// From the first token of an item, returns the index of its final token:
/// the matching `}` of its first top-level brace block, or the first `;` at
/// top level (whichever comes first).
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut depth_paren = 0i32;
    let mut depth_bracket = 0i32;
    let mut j = start;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('(') => depth_paren += 1,
            TokKind::Punct(')') => depth_paren -= 1,
            TokKind::Punct('[') => depth_bracket += 1,
            TokKind::Punct(']') => depth_bracket -= 1,
            TokKind::Punct(';') if depth_paren == 0 && depth_bracket == 0 => return j,
            TokKind::Punct('{') if depth_paren == 0 && depth_bracket == 0 => {
                let mut braces = 0i32;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokKind::Punct('{') => braces += 1,
                        TokKind::Punct('}') => {
                            braces -= 1;
                            if braces == 0 {
                                return j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return tokens.len().saturating_sub(1);
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

fn parse_pragmas(comments: &[Comment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Pragmas live in plain `//` comments only: doc comments (`///`,
        // `//!`) and block comments may *describe* the syntax without
        // activating it.
        if !c.text.starts_with("//") || c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = c.text.find("sim-lint:") else {
            continue;
        };
        let directive = c.text[pos + "sim-lint:".len()..].trim();
        let file_level = directive.starts_with("allow-file(");
        let prefix = if file_level { "allow-file(" } else { "allow(" };
        if !directive.starts_with(prefix) {
            errors.push(PragmaError {
                line: c.line,
                message: format!(
                    "unrecognized sim-lint directive `{}` (expected `allow(...)` or \
                     `allow-file(...)`)",
                    directive
                ),
            });
            continue;
        }
        let rest = &directive[prefix.len()..];
        let Some(close) = rest.find(')') else {
            errors.push(PragmaError {
                line: c.line,
                message: "unterminated sim-lint allow(...) pragma".to_string(),
            });
            continue;
        };
        let lints: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if lints.is_empty() {
            errors.push(PragmaError {
                line: c.line,
                message: "sim-lint allow(...) pragma names no lints".to_string(),
            });
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim()
            .to_string();
        if reason.is_empty() {
            errors.push(PragmaError {
                line: c.line,
                message: format!(
                    "sim-lint allow({}) pragma has no reason — append `: why this is sound`",
                    lints.join(", ")
                ),
            });
            continue;
        }
        pragmas.push(Pragma {
            lints,
            line: c.line,
            file_level,
            reason,
        });
    }
    (pragmas, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("demo", "crates/demo/src/lib.rs", src, false)
    }

    fn code_idents(f: &SourceFile) -> Vec<String> {
        f.code_tokens()
            .filter(|(_, t)| t.kind == TokKind::Ident)
            .map(|(_, t)| t.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_module_is_excluded() {
        let f = file(
            "pub fn live() { real(); }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n",
        );
        let ids = code_idents(&f);
        assert!(ids.contains(&"real".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn test_attribute_fn_is_excluded() {
        let f = file("#[test]\nfn t() { y.unwrap(); }\nfn live() { ok(); }\n");
        let ids = code_idents(&f);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"ok".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let f = file("#[cfg(not(test))]\nfn live() { marker(); }\n");
        assert!(code_idents(&f).contains(&"marker".to_string()));
    }

    #[test]
    fn cfg_attr_test_is_not_excluded() {
        let f = file("#[cfg_attr(test, allow(dead_code))]\nfn live() { marker(); }\n");
        assert!(code_idents(&f).contains(&"marker".to_string()));
    }

    #[test]
    fn code_after_test_module_is_live_again() {
        let f = file(
            "#[cfg(test)]\nmod tests {\n    fn t() { hidden(); }\n}\n\
             pub fn live() { visible(); }\n",
        );
        let ids = code_idents(&f);
        assert!(!ids.contains(&"hidden".to_string()));
        assert!(ids.contains(&"visible".to_string()));
    }

    #[test]
    fn force_test_marks_everything() {
        let f = SourceFile::parse("demo", "crates/demo/tests/t.rs", "fn a() { b(); }", true);
        assert_eq!(f.code_tokens().count(), 0);
    }

    #[test]
    fn pragma_parses_with_reason() {
        let f = file("// sim-lint: allow(no-panic-hot-path): validated at construction\nlet x;");
        assert_eq!(f.pragmas.len(), 1);
        assert!(f.pragma_errors.is_empty());
        assert_eq!(f.pragmas[0].lints, ["no-panic-hot-path"]);
        assert!(f.suppresses("no-panic-hot-path", 1));
        assert!(f.suppresses("no-panic-hot-path", 2));
        assert!(!f.suppresses("no-panic-hot-path", 3));
        assert!(!f.suppresses("metric-registry", 2));
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let f = file("// sim-lint: allow(no-panic-hot-path)\nlet x;");
        assert!(f.pragmas.is_empty());
        assert_eq!(f.pragma_errors.len(), 1);
        assert!(f.pragma_errors[0].message.contains("no reason"));
    }

    #[test]
    fn file_level_pragma_covers_all_lines() {
        let f = file("// sim-lint: allow-file(forbid-wallclock-and-unsafe): bench harness\nx");
        assert!(f.suppresses("forbid-wallclock-and-unsafe", 999));
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let f = file("// sim-lint: deny(x)\n");
        assert_eq!(f.pragma_errors.len(), 1);
    }

    #[test]
    fn doc_comments_describing_pragmas_are_inert() {
        let f = file(
            "//! sim-lint: a tool whose docs mention sim-lint: allow(x)\n\
             /// example: `// sim-lint: allow(lint-name): reason`\n\
             /* sim-lint: allow(whatever) */\nfn live() {}\n",
        );
        assert!(f.pragmas.is_empty());
        assert!(f.pragma_errors.is_empty());
    }
}
