//! sim-lint: a zero-dependency static analyzer that enforces the PRA
//! simulator's correctness contracts at CI time.
//!
//! The analyzer is semantic, not just lexical: on top of a hand-rolled
//! lexer (see [`lexer`] — raw strings, char literals and nested block
//! comments are handled, so text never masquerades as code) it builds a
//! workspace-wide [item index](items) of every `fn`/`impl`/`trait` with
//! module paths, and a [conservative call graph](callgraph) (direct calls,
//! method calls resolved by receiver-type heuristics, closures attributed
//! to their enclosing function). The passes:
//!
//! * `no-panic-hot-path` — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   runtime asserts in non-test code of the simulator hot-path crates
//!   (lexical, per-site).
//! * `panic-reachability` — no panicking construct transitively reachable
//!   from the hot-loop entry points (`Channel::tick`,
//!   `MemorySystem::try_tick`, the bank FSM); diagnostics carry the full
//!   call chain.
//! * `checker-parity` — every `TimingParams` field is enforced by both the
//!   scheduler and the independent protocol checker.
//! * `metric-registry` — every emitted metric / trace-event name follows
//!   the naming convention and matches the `docs/metrics.md` manifest.
//! * `forbid-wallclock-and-unsafe` — no wall-clock reads, ambient
//!   randomness or `unsafe` in deterministic sim crates, and every crate
//!   root declares `#![forbid(unsafe_code)]`.
//! * `discarded-result` — no `let _ =`, `.ok();` or bare-statement drops
//!   of `Result`s returned by workspace sim APIs.
//! * `cycle-arith` — no unchecked `+`/`*` on cycle/deadline/epoch-named
//!   values in the hot crates; event-jump arithmetic must saturate or
//!   check.
//! * `dead-pragma` — a suppression that no longer suppresses anything is
//!   itself an error.
//!
//! All passes are deny-by-default. Site-level exemptions use
//!
//! ```text
//! // sim-lint: allow(lint-name): reason this is sound
//! ```
//!
//! on (or directly above) the offending line; the reason is mandatory and
//! ill-formed pragmas are themselves diagnosed by the always-on `pragma`
//! meta lint, which cannot be suppressed.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod diag;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod sarif;
pub mod source;
pub mod workspace;

use std::path::Path;

pub use diag::{to_json, to_json_report, Diagnostic};
pub use workspace::{load_workspace, Manifest, Workspace};

/// Everything a pass may consult: the lexed workspace plus the semantic
/// layers built over it (item index and call graph).
pub struct Analysis<'a> {
    /// The lexed workspace.
    pub ws: &'a Workspace,
    /// Workspace-wide `fn`/`impl`/`trait`/`use` index.
    pub items: items::ItemIndex,
    /// Conservative call graph over the index.
    pub calls: callgraph::CallGraph,
}

impl<'a> Analysis<'a> {
    /// Builds the semantic layers for a loaded workspace.
    pub fn new(ws: &'a Workspace) -> Self {
        let items = items::ItemIndex::build(ws);
        let calls = callgraph::CallGraph::build(ws, &items);
        Analysis { ws, items, calls }
    }
}

/// Lints the workspace rooted at `root`. Returns the post-suppression
/// diagnostics, sorted by file, line, lint.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws = workspace::load_workspace(root)?;
    Ok(lint_sources(&ws))
}

/// Runs every pass over an already-loaded workspace, applies pragma
/// suppression, runs the `dead-pragma` phase over the pre-suppression
/// results, and appends `pragma` meta-diagnostics.
pub fn lint_sources(ws: &Workspace) -> Vec<Diagnostic> {
    let analysis = Analysis::new(ws);
    let mut raw = Vec::new();
    for pass in passes::all_passes() {
        pass.run(&analysis, &mut raw);
    }

    // Dead-pragma runs on the PRE-suppression diagnostics: a pragma is
    // alive exactly when it covers at least one raw diagnostic of a lint
    // it names. Its output manages its own (allow(dead-pragma)) exemptions.
    let dead = passes::dead_pragma::run(ws, &raw);

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            !ws.files
                .iter()
                .any(|f| f.rel_path == d.file && f.suppresses(&d.lint, d.line))
        })
        .collect();
    out.extend(dead);

    for file in &ws.files {
        for err in &file.pragma_errors {
            out.push(Diagnostic::new(
                "pragma",
                &file.rel_path,
                err.line,
                err.message.clone(),
            ));
        }
        for pragma in &file.pragmas {
            for lint in &pragma.lints {
                if !passes::LINT_NAMES.contains(&lint.as_str()) {
                    out.push(Diagnostic::new(
                        "pragma",
                        &file.rel_path,
                        pragma.line,
                        format!(
                            "pragma references unknown lint `{lint}` (known lints: {})",
                            passes::LINT_NAMES.join(", ")
                        ),
                    ));
                }
            }
        }
    }

    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.as_str()).cmp(&(b.file.as_str(), b.line, b.lint.as_str()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws_one(crate_name: &str, rel: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(crate_name, rel, src, false)],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    #[test]
    fn pragma_suppresses_a_violation() {
        let w = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() {\n    // sim-lint: allow(no-panic-hot-path): index bounded by ctor\n    \
             a.unwrap();\n}\n",
        );
        assert!(lint_sources(&w).is_empty());
    }

    #[test]
    fn trailing_pragma_also_suppresses() {
        let w = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() {\n    a.unwrap(); // sim-lint: allow(no-panic-hot-path): bounded\n}\n",
        );
        assert!(lint_sources(&w).is_empty());
    }

    #[test]
    fn pragma_without_reason_surfaces_meta_diagnostic() {
        let w = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() {\n    // sim-lint: allow(no-panic-hot-path)\n    a.unwrap();\n}\n",
        );
        let d = lint_sources(&w);
        // The unwrap is NOT suppressed and the pragma itself is diagnosed.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.lint == "no-panic-hot-path"));
        assert!(d
            .iter()
            .any(|d| d.lint == "pragma" && d.message.contains("no reason")));
    }

    #[test]
    fn unknown_lint_name_in_pragma_is_diagnosed() {
        let w = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "// sim-lint: allow(no-such-lint): whatever\nfn f() {}\n",
        );
        let d = lint_sources(&w);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "pragma");
        assert!(d[0].message.contains("no-such-lint"));
    }

    #[test]
    fn pragma_for_wrong_lint_does_not_suppress() {
        let w = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() {\n    // sim-lint: allow(metric-registry): wrong lint\n    a.unwrap();\n}\n",
        );
        let d = lint_sources(&w);
        // The unwrap is not suppressed, and the mistargeted pragma is
        // additionally reported as dead.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.lint == "no-panic-hot-path"));
        assert!(d.iter().any(|d| d.lint == "dead-pragma"));
    }

    #[test]
    fn diagnostics_are_sorted() {
        let w = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }\n",
        );
        let d = lint_sources(&w);
        assert_eq!(d.len(), 2);
        assert!(d[0].line < d[1].line);
    }
}
