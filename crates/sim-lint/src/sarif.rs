//! Minimal SARIF 2.1.0 export, hand-rendered (no deps), for CI
//! code-scanning annotations.
//!
//! Only the fields code-scanning consumers actually read are emitted: one
//! run, a driver with one rule per lint, and one `error`-level result per
//! diagnostic with a single physical location.

use crate::diag::{escape, Diagnostic};
use crate::passes::LINT_NAMES;

/// Renders diagnostics as a SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"sim-lint\",\n          \"rules\": [",
    );
    let mut rules: Vec<&str> = LINT_NAMES.to_vec();
    rules.push("pragma");
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            escape(rule)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            escape(&d.lint),
            escape(&d.message),
            escape(&d.file),
            d.line
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_contains_schema_rules_and_results() {
        let d = Diagnostic::new(
            "cycle-arith",
            "crates/dram-sim/src/bank.rs",
            42,
            "unchecked `+` with \"quotes\"",
        );
        let s = to_sarif(&[d]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"sim-lint\""));
        assert!(s.contains("\"id\": \"cycle-arith\""));
        assert!(s.contains("\"ruleId\": \"cycle-arith\""));
        assert!(s.contains("\"uri\": \"crates/dram-sim/src/bank.rs\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\\\"quotes\\\""));
    }

    #[test]
    fn empty_log_has_empty_results() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": []"));
        // Rules are declared even with no findings.
        assert!(s.contains("\"id\": \"no-panic-hot-path\""));
    }
}
