//! `cycle-arith`: unchecked `+` / `*` on cycle-domain values in the hot
//! crates.
//!
//! Simulated time is unsigned and monotonically huge: a wrapped cycle
//! count, deadline or epoch boundary silently reorders every future event
//! instead of crashing, which is the worst possible failure mode for a
//! deterministic simulator. Any binary `+` or `*` whose left or right
//! operand is an identifier mentioning `cycle`, `deadline` or `epoch`
//! must be written as `saturating_add` / `saturating_mul` / `checked_*`
//! instead, or carry a pragma arguing why overflow is impossible. Compound
//! assignment (`+=`, `*=`) is out of scope here — it mutates state the
//! surrounding code already guards — as is `-`, which the debug-build
//! underflow panic already catches loudly.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::no_panic::HOT_CRATES;
use crate::passes::Pass;
use crate::Analysis;

const LINT: &str = "cycle-arith";

/// Whether an identifier names a cycle-domain quantity.
fn is_cycle_name(s: &str) -> bool {
    let l = s.to_ascii_lowercase();
    l.contains("cycle") || l.contains("deadline") || l.contains("epoch")
}

/// Pass implementation.
pub struct CycleArith;

impl Pass for CycleArith {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        for file in &a.ws.files {
            if !HOT_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            let mut flagged: HashSet<u32> = HashSet::new();
            for (i, tok) in file.code_tokens() {
                let op = match tok.kind {
                    TokKind::Punct(c @ ('+' | '*')) => c,
                    _ => continue,
                };
                // `+=` / `*=` compound assignment is out of scope.
                if toks.get(i + 1).map(|t| t.is_punct('=')).unwrap_or(false) {
                    continue;
                }
                // Binary use only: the left operand must end an expression,
                // which also excludes deref `*x` and trait bounds `T: A + B`
                // (the `+` there follows `>` or an uppercase path we never
                // name-match).
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                if !matches!(
                    prev.kind,
                    TokKind::Ident | TokKind::Num | TokKind::Punct(')') | TokKind::Punct(']')
                ) {
                    continue;
                }
                let mut names: Vec<&str> = Vec::new();
                if prev.kind == TokKind::Ident {
                    names.push(prev.text.as_str());
                }
                if let Some(r) = right_operand_ident(toks, i + 1) {
                    names.push(r);
                }
                if !names.iter().any(|n| is_cycle_name(n)) {
                    continue;
                }
                if !flagged.insert(tok.line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    LINT,
                    &file.rel_path,
                    tok.line,
                    format!(
                        "unchecked `{op}` on a cycle/deadline/epoch value — a wrap \
                         silently reorders future events; use `saturating_{}` or \
                         `checked_{}`, or pragma-annotate with the overflow argument",
                        if op == '+' { "add" } else { "mul" },
                        if op == '+' { "add" } else { "mul" },
                    ),
                ));
            }
        }
    }
}

/// The final identifier of the right operand's leading field chain:
/// `self.cfg.epoch_len` → `epoch_len`; skips leading `&` / `*`.
fn right_operand_ident(toks: &[crate::lexer::Token], mut j: usize) -> Option<&str> {
    while toks
        .get(j)
        .map(|t| t.is_punct('&') || t.is_punct('*'))
        .unwrap_or(false)
    {
        j += 1;
    }
    let mut last: Option<&str> = None;
    while let Some(t) = toks.get(j) {
        if t.kind != TokKind::Ident {
            break;
        }
        last = Some(t.text.as_str());
        let dotted = toks.get(j + 1).map(|n| n.is_punct('.')).unwrap_or(false)
            && toks
                .get(j + 2)
                .map(|n| n.kind == TokKind::Ident)
                .unwrap_or(false);
        if !dotted {
            break;
        }
        j += 2;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn ws_one(crate_name: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(
                crate_name,
                &format!("crates/{crate_name}/src/x.rs"),
                src,
                false,
            )],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(w: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        CycleArith.run(&Analysis::new(w), &mut out);
        out
    }

    #[test]
    fn add_and_mul_on_cycle_names_are_flagged() {
        let w = ws_one(
            "dram-sim",
            "fn f(cycle: u64, n: u64) -> u64 { cycle + n }\n\
             fn g(deadline: u64) -> u64 { deadline * 2 }\n\
             fn h(s: &S) -> u64 { s.now + s.cfg.epoch_len }\n",
        );
        let d = run(&w);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.lint == "cycle-arith"));
    }

    #[test]
    fn saturating_and_checked_forms_pass() {
        let w = ws_one(
            "dram-sim",
            "fn f(cycle: u64, n: u64) -> u64 { cycle.saturating_add(n) }\n\
             fn g(epoch: u64) -> Option<u64> { epoch.checked_mul(2) }\n",
        );
        assert!(run(&w).is_empty());
    }

    #[test]
    fn compound_assign_deref_and_bounds_are_out_of_scope() {
        let w = ws_one(
            "dram-sim",
            "fn f(mut cycle: u64) { cycle += 1; cycle *= 2; }\n\
             fn g(p: &u64) -> u64 { *p }\n\
             fn h<T: Clone + Default>(t: T) -> T { t }\n",
        );
        assert!(run(&w).is_empty());
    }

    #[test]
    fn unrelated_names_and_cold_crates_pass() {
        let w = ws_one("dram-sim", "fn f(width: u64) -> u64 { width + 1 }\n");
        assert!(run(&w).is_empty());
        let w = ws_one("sim-obs", "fn f(cycle: u64) -> u64 { cycle + 1 }\n");
        assert!(run(&w).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws_one(
            "dram-sim",
            "#[cfg(test)]\nmod tests {\n    fn t(cycle: u64) -> u64 { cycle + 1 }\n}\n",
        );
        assert!(run(&w).is_empty());
    }
}
