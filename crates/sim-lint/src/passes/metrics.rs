//! `metric-registry`: every metric name a crate emits must follow the
//! `component.noun[.qualifier]` naming convention and appear in the
//! `docs/metrics.md` manifest with the right kind — and every manifest
//! entry must be emitted by some code (unless marked `(dynamic)`, for
//! names built at runtime with `format!`).
//!
//! Emitter sites are calls whose callee ident is `counter`, `gauge`,
//! `histogram` or `set` with a string-literal first argument (the sim-obs
//! registration/publish API). Trace-event kind tags are the uppercase
//! string literals returned by `TraceEvent::kind()` in
//! `crates/sim-obs/src/event.rs`.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::Pass;
use crate::workspace::{Manifest, MetricKind};
use crate::Analysis;

const LINT: &str = "metric-registry";

/// File whose uppercase string literals define the trace-event kind tags.
const EVENT_FILE: &str = "crates/sim-obs/src/event.rs";

/// Pass implementation.
pub struct MetricRegistry;

impl Pass for MetricRegistry {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        let ws = a.ws;
        let empty = Manifest::default();
        let manifest = ws.manifest.as_ref().unwrap_or(&empty);

        for (line, msg) in &manifest.errors {
            out.push(Diagnostic::new(LINT, &ws.manifest_path, *line, msg.clone()));
        }

        let mut emitted: HashSet<String> = HashSet::new();
        let mut traced: HashSet<String> = HashSet::new();

        for file in &ws.files {
            // Metric emitter sites.
            for (i, tok) in file.code_tokens() {
                let kind = match tok.text.as_str() {
                    "counter" | "set" => MetricKind::Counter,
                    "gauge" => MetricKind::Gauge,
                    "histogram" => MetricKind::Histogram,
                    _ => continue,
                };
                if tok.kind != TokKind::Ident {
                    continue;
                }
                let open = file.tokens.get(i + 1).map(|t| t.is_punct('(')) == Some(true);
                let arg = file.tokens.get(i + 2);
                let Some(arg) = arg.filter(|t| open && t.kind == TokKind::Str) else {
                    continue;
                };
                let name = arg.text.clone();
                if !is_valid_metric_name(&name) {
                    out.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        arg.line,
                        format!(
                            "metric name \"{name}\" violates the `component.noun[.qualifier]` \
                             convention (lowercase dotted segments of [a-z0-9_])"
                        ),
                    ));
                    continue;
                }
                emitted.insert(name.clone());
                match manifest.get(&name) {
                    None => out.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        arg.line,
                        format!(
                            "metric \"{name}\" is not declared in docs/metrics.md — add a \
                             manifest row describing it"
                        ),
                    )),
                    Some(entry) if entry.kind != kind => out.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        arg.line,
                        format!(
                            "metric \"{name}\" is emitted as a {} but docs/metrics.md \
                             declares it a {}",
                            kind.as_str(),
                            entry.kind.as_str()
                        ),
                    )),
                    Some(_) => {}
                }
            }

            // Trace-event kind tags.
            if file.rel_path == EVENT_FILE {
                for (_, tok) in file.code_tokens() {
                    if tok.kind != TokKind::Str || !is_trace_kind(&tok.text) {
                        continue;
                    }
                    let name = tok.text.clone();
                    traced.insert(name.clone());
                    match manifest.get(&name) {
                        Some(e) if e.kind == MetricKind::TraceEvent => {}
                        Some(_) => out.push(Diagnostic::new(
                            LINT,
                            &file.rel_path,
                            tok.line,
                            format!(
                                "trace-event kind \"{name}\" is declared in docs/metrics.md \
                                 with a non-trace-event kind"
                            ),
                        )),
                        None => out.push(Diagnostic::new(
                            LINT,
                            &file.rel_path,
                            tok.line,
                            format!(
                                "trace-event kind \"{name}\" is not declared in \
                                 docs/metrics.md — add a trace-event manifest row"
                            ),
                        )),
                    }
                }
            }
        }

        // Manifest entries no code emits (dynamic entries exempt).
        if ws.manifest.is_some() {
            for entry in &manifest.entries {
                if entry.dynamic {
                    continue;
                }
                let seen = match entry.kind {
                    MetricKind::TraceEvent => traced.contains(&entry.name),
                    _ => emitted.contains(&entry.name),
                };
                if !seen {
                    out.push(Diagnostic::new(
                        LINT,
                        &ws.manifest_path,
                        entry.line,
                        format!(
                            "manifest entry `{}` is emitted by no code — remove the row or \
                             mark it `(dynamic)` if the name is built at runtime",
                            entry.name
                        ),
                    ));
                }
            }
        }
    }
}

/// `component.noun[.qualifier]`: ≥2 lowercase dotted segments of
/// `[a-z0-9_]`, first segment starting with a letter.
fn is_valid_metric_name(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    if segs.len() < 2 {
        return false;
    }
    for (i, seg) in segs.iter().enumerate() {
        if seg.is_empty()
            || !seg
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        if i == 0 && !seg.as_bytes()[0].is_ascii_lowercase() {
            return false;
        }
    }
    true
}

/// Trace-event kind tag: `[A-Z][A-Z0-9_]+`.
fn is_trace_kind(s: &str) -> bool {
    s.len() >= 2
        && s.as_bytes()[0].is_ascii_uppercase()
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn ws(files: Vec<(&str, &str, &str)>, manifest: Option<&str>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
                .collect(),
            manifest: manifest.map(Manifest::parse),
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        MetricRegistry.run(&Analysis::new(ws), &mut out);
        out
    }

    #[test]
    fn undeclared_metric_is_flagged() {
        let w = ws(
            vec![(
                "dram-sim",
                "crates/dram-sim/src/obs.rs",
                "fn r(reg: &mut R) { reg.counter(\"dram.mystery\"); }",
            )],
            Some("| `dram.cycles` | counter | ticks |\n"),
        );
        let d = run(&w);
        assert!(d
            .iter()
            .any(|d| d.message.contains("\"dram.mystery\"") && d.message.contains("not declared")));
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let w = ws(
            vec![(
                "dram-sim",
                "crates/dram-sim/src/obs.rs",
                "fn r(reg: &mut R) { reg.histogram(\"dram.cycles\"); }",
            )],
            Some("| `dram.cycles` | counter | ticks |\n"),
        );
        let d = run(&w);
        assert!(d
            .iter()
            .any(|d| d.message.contains("emitted as a histogram")));
    }

    #[test]
    fn bad_naming_convention_is_flagged() {
        let w = ws(
            vec![(
                "dram-sim",
                "crates/dram-sim/src/obs.rs",
                "fn r(reg: &mut R) { reg.counter(\"DramCycles\"); reg.gauge(\"plain\"); }",
            )],
            Some(""),
        );
        let d = run(&w);
        assert_eq!(
            d.iter()
                .filter(|d| d.message.contains("convention"))
                .count(),
            2
        );
    }

    #[test]
    fn unused_manifest_entry_is_flagged_but_dynamic_is_exempt() {
        let w = ws(
            vec![(
                "dram-sim",
                "crates/dram-sim/src/obs.rs",
                "fn r(reg: &mut R) { reg.counter(\"dram.cycles\"); }",
            )],
            Some(
                "| `dram.cycles` | counter | ticks |\n\
                 | `dram.ghost` | counter | never emitted |\n\
                 | `fault.injected` | counter (dynamic) | format!-built |\n",
            ),
        );
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`dram.ghost`"));
        assert_eq!(d[0].file, "docs/metrics.md");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn trace_kinds_must_be_declared() {
        let w = ws(
            vec![(
                "sim-obs",
                "crates/sim-obs/src/event.rs",
                "fn kind(&self) -> &str { match self { A => \"ACT\", B => \"RD\" } }",
            )],
            Some("| `ACT` | trace-event | activate |\n"),
        );
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("\"RD\""));
    }

    #[test]
    fn clean_tree_is_clean() {
        let w = ws(
            vec![
                (
                    "dram-sim",
                    "crates/dram-sim/src/obs.rs",
                    "fn r(reg: &mut R) { reg.counter(\"dram.cycles\"); reg.histogram(\"dram.read_latency\"); }",
                ),
                (
                    "sim-obs",
                    "crates/sim-obs/src/event.rs",
                    "fn kind(&self) -> &str { \"ACT\" }",
                ),
            ],
            Some(
                "| `dram.cycles` | counter | ticks |\n\
                 | `dram.read_latency` | histogram | latency |\n\
                 | `ACT` | trace-event | activate |\n",
            ),
        );
        assert!(run(&w).is_empty());
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_metric_name("dram.read.hits"));
        assert!(is_valid_metric_name("cpu.stall_cycles.rob"));
        assert!(!is_valid_metric_name("plain"));
        assert!(!is_valid_metric_name("Dram.cycles"));
        assert!(!is_valid_metric_name("dram..cycles"));
        assert!(!is_valid_metric_name("dram.Cycles"));
        assert!(is_trace_kind("PARTIAL_ACT"));
        assert!(!is_trace_kind("A"));
        assert!(!is_trace_kind("Act"));
    }
}
