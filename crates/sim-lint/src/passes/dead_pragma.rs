//! `dead-pragma`: a suppression that no longer suppresses anything is
//! itself an error.
//!
//! Pragmas are point-in-time waivers: the violation they excused was real
//! when the reason was written. When the code later changes and the
//! violation disappears, the stale pragma keeps a hole open that a future
//! edit can silently fall through. This pass therefore runs as a dedicated
//! phase over the **pre-suppression** diagnostics of every other pass: a
//! pragma is alive exactly when at least one raw diagnostic of a lint it
//! names falls inside its coverage (its own line, the line below, or the
//! whole file for `allow-file`).
//!
//! `allow(dead-pragma)` itself is honoured in a second phase — it exists
//! for transitional states (e.g. a violation that comes and goes with a
//! feature flag) — and an `allow(dead-pragma)` that shields no dead pragma
//! is reported as dead in turn, so the escape hatch cannot rot either.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::passes::LINT_NAMES;
use crate::workspace::Workspace;

const LINT: &str = "dead-pragma";

/// Runs the dead-pragma phase. `raw` must be the pre-suppression
/// diagnostics of every ordinary pass.
pub fn run(ws: &Workspace, raw: &[Diagnostic]) -> Vec<Diagnostic> {
    // Phase 1: every named lint of every pragma must cover >=1 raw
    // diagnostic. Unknown lint names are skipped here — the `pragma` meta
    // lint already reports those.
    let mut dead: Vec<Diagnostic> = Vec::new();
    for file in &ws.files {
        for p in &file.pragmas {
            for lint in &p.lints {
                if lint == LINT || !LINT_NAMES.contains(&lint.as_str()) {
                    continue;
                }
                let covers = raw.iter().any(|d| {
                    d.lint == *lint
                        && d.file == file.rel_path
                        && (p.file_level || p.line == d.line || p.line + 1 == d.line)
                });
                if !covers {
                    dead.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        p.line,
                        format!(
                            "pragma `allow({lint})` suppresses nothing — the violation \
                             it excused is gone; remove the pragma"
                        ),
                    ));
                }
            }
        }
    }

    // Phase 2: apply `allow(dead-pragma)` shields, then report shields that
    // shielded nothing.
    let mut out = Vec::new();
    let mut used_shields: HashSet<(usize, u32)> = HashSet::new();
    for d in dead {
        let shield = ws.files.iter().enumerate().find_map(|(fi, f)| {
            if f.rel_path != d.file {
                return None;
            }
            f.pragmas
                .iter()
                .find(|p| {
                    p.lints.iter().any(|l| l == LINT)
                        && (p.file_level || p.line == d.line || p.line + 1 == d.line)
                })
                .map(|p| (fi, p.line))
        });
        match shield {
            Some(key) => {
                used_shields.insert(key);
            }
            None => out.push(d),
        }
    }
    for (fi, file) in ws.files.iter().enumerate() {
        for p in &file.pragmas {
            if !p.lints.iter().any(|l| l == LINT) {
                continue;
            }
            if !used_shields.contains(&(fi, p.line)) {
                out.push(Diagnostic::new(
                    LINT,
                    &file.rel_path,
                    p.line,
                    "pragma `allow(dead-pragma)` shields no dead pragma — remove it".to_string(),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws_one(src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(
                "dram-sim",
                "crates/dram-sim/src/x.rs",
                src,
                false,
            )],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn raw(file: &str, lint: &str, line: u32) -> Diagnostic {
        Diagnostic::new(lint, file, line, "x".to_string())
    }

    #[test]
    fn covered_pragma_is_alive() {
        let w = ws_one("// sim-lint: allow(no-panic-hot-path): bounded\nfn f() {}\n");
        let r = vec![raw("crates/dram-sim/src/x.rs", "no-panic-hot-path", 2)];
        assert!(run(&w, &r).is_empty());
    }

    #[test]
    fn uncovered_pragma_is_dead() {
        let w = ws_one("// sim-lint: allow(no-panic-hot-path): bounded\nfn f() {}\n");
        let d = run(&w, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "dead-pragma");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("no-panic-hot-path"));
    }

    #[test]
    fn wrong_lint_or_wrong_line_does_not_keep_it_alive() {
        let w = ws_one("fn f() {}\n// sim-lint: allow(cycle-arith): bounded\nfn g() {}\n");
        // A diagnostic of another lint on the covered line, and the right
        // lint far away: the pragma is still dead.
        let r = vec![
            raw("crates/dram-sim/src/x.rs", "no-panic-hot-path", 3),
            raw("crates/dram-sim/src/x.rs", "cycle-arith", 1),
        ];
        assert_eq!(run(&w, &r).len(), 1);
    }

    #[test]
    fn file_level_pragma_is_alive_if_any_line_matches() {
        let w = ws_one("// sim-lint: allow-file(cycle-arith): generated table\nfn f() {}\n");
        let r = vec![raw("crates/dram-sim/src/x.rs", "cycle-arith", 40)];
        assert!(run(&w, &r).is_empty());
    }

    #[test]
    fn allow_dead_pragma_shields_and_rots() {
        // A dead pragma shielded by allow(dead-pragma) on the same line.
        let w = ws_one(
            "// sim-lint: allow(no-panic-hot-path, dead-pragma): gated by feature flag\nfn f() {}\n",
        );
        assert!(run(&w, &[]).is_empty());
        // An allow(dead-pragma) that shields nothing is itself dead.
        let w = ws_one("// sim-lint: allow(dead-pragma): nothing here\nfn f() {}\n");
        let d = run(&w, &[]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("shields no dead pragma"));
    }

    #[test]
    fn unknown_lint_names_are_left_to_the_meta_lint() {
        let w = ws_one("// sim-lint: allow(no-such-lint): whatever\nfn f() {}\n");
        assert!(run(&w, &[]).is_empty());
    }
}
