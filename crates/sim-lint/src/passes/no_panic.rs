//! `no-panic-hot-path`: forbid panicking constructs in non-test code of the
//! simulator hot-path crates.
//!
//! Flagged: `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, and the `assert!` / `assert_eq!` / `assert_ne!` macros
//! (indexing-style runtime asserts). `debug_assert*` is allowed — it
//! compiles out of release builds, so it cannot take a production run down.
//! The fix is a typed `SimError` / `Result` path; a pragma with a reason is
//! acceptable only for provably-infallible sites.

use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::passes::Pass;
use crate::Analysis;

/// Crates whose non-test code must not panic. `sim-harness` is
/// deliberately absent: the campaign runner's job is to *contain* panics
/// behind `catch_unwind` (and its panic fixture raises one on purpose), so
/// it answers to `forbid-wallclock` scoping instead — see the wallclock
/// pass's strict-path list.
pub const HOT_CRATES: &[&str] = &[
    "dram-sim",
    "cache-sim",
    "cpu-sim",
    "mem-model",
    "core",
    "sim-recover",
];

const LINT: &str = "no-panic-hot-path";

/// If the token at `i` is a panicking construct, returns its display form
/// (`.unwrap(...)`, `panic!(...)`, …). Shared with the interprocedural
/// `panic-reachability` pass so both agree on what "panicking" means.
pub fn panic_construct(tokens: &[Token], i: usize) -> Option<String> {
    let tok = tokens.get(i)?;
    if !matches!(tok.kind, crate::lexer::TokKind::Ident) {
        return None;
    }
    let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
    let next_bang = tokens.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false);
    let next_paren = tokens.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false);
    let flagged = match tok.text.as_str() {
        "unwrap" | "expect" => prev_dot && next_paren,
        // `panic!(...)` — but not `std::panic::catch_unwind`.
        "panic" | "unreachable" | "todo" | "unimplemented" => next_bang,
        "assert" | "assert_eq" | "assert_ne" => next_bang,
        _ => false,
    };
    if !flagged {
        return None;
    }
    Some(match tok.text.as_str() {
        "unwrap" | "expect" => format!(".{}(...)", tok.text),
        t => format!("{t}!(...)"),
    })
}

/// Pass implementation.
pub struct NoPanicHotPath;

impl Pass for NoPanicHotPath {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        for file in &a.ws.files {
            if !HOT_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            for (i, tok) in file.code_tokens() {
                if let Some(display) = panic_construct(&file.tokens, i) {
                    out.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        tok.line,
                        format!(
                            "`{display}` in simulator hot path — return a typed \
                             `SimError`/`Result` instead, or pragma-annotate a \
                             provably-infallible site with a reason"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn ws_one(crate_name: &str, rel: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(crate_name, rel, src, false)],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        NoPanicHotPath.run(&Analysis::new(ws), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_panic_unreachable_assert() {
        let ws = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() {\n    a.unwrap();\n    b.expect(\"m\");\n    panic!(\"x\");\n    \
             unreachable!();\n    assert!(x > 0);\n    assert_eq!(a, b);\n}\n",
        );
        let d = run(&ws);
        assert_eq!(d.len(), 6);
        assert_eq!(d[0].line, 2);
        assert!(d.iter().all(|d| d.lint == "no-panic-hot-path"));
    }

    #[test]
    fn ignores_non_hot_crates_and_test_code() {
        let ws = ws_one(
            "sim-obs",
            "crates/sim-obs/src/x.rs",
            "fn f() { a.unwrap(); }",
        );
        assert!(run(&ws).is_empty());
        let ws = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\n",
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn recovery_engine_is_a_hot_crate() {
        // The recovery engine sits on the command-issue path: a panic there
        // takes down the whole channel mid-replay.
        let ws = ws_one(
            "sim-recover",
            "crates/sim-recover/src/x.rs",
            "fn f() { let until = map.get(&key).unwrap(); assert!(until > 0); }",
        );
        let d = run(&ws);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.lint == "no-panic-hot-path"));
    }

    #[test]
    fn ignores_unwrap_or_else_and_expect_err() {
        let ws = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() { a.unwrap_or_else(|| 0); b.unwrap_or(1); c.expect_err(\"m\"); }",
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn ignores_debug_assert_and_catch_unwind() {
        let ws = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "fn f() { debug_assert!(x); debug_assert_eq!(a, b); std::panic::catch_unwind(g); }",
        );
        assert!(run(&ws).is_empty());
    }

    #[test]
    fn ignores_panic_in_strings_and_comments() {
        let ws = ws_one(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "// panic!(\"no\") and .unwrap()\nfn f() { let s = \"panic!\"; let r = r#\"a.unwrap()\"#; }",
        );
        assert!(run(&ws).is_empty());
    }
}
