//! `forbid-wallclock-and-unsafe`: deterministic simulation crates must not
//! read wall-clock time, use ambient randomness, or contain `unsafe` code.
//!
//! Determinism is what `--verify-determinism` and the fault-injection
//! replay machinery depend on: the same seed and config must produce the
//! same cycle-exact run. `SystemTime` / `Instant::now` / OS entropy break
//! that silently. The `bench` crate is exempt from the wall-clock rule (its
//! whole point is measuring host time) but not from the `unsafe` rule, and
//! so is `sim-harness` (it times campaigns) — *except* its digest module,
//! which feeds resume keys and must stay a pure function of the run spec,
//! so it is held to the strict rule even inside the exempt crate. The
//! mirror-image case is `sim-prof`: a strict crate whose single clock
//! module is exempt, so the profiler's one `Instant` anchor stays
//! corralled where the disabled path can never reach it.
//!
//! The pass also verifies every crate root declares
//! `#![forbid(unsafe_code)]` so the compiler backs the lint.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::Pass;
use crate::source::SourceFile;
use crate::Analysis;

const LINT: &str = "forbid-wallclock-and-unsafe";

/// Idents that read host time or ambient entropy.
const WALLCLOCK_IDENTS: &[&str] = &[
    "SystemTime",
    "Instant",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Crates allowed to read the wall clock (host-time measurement harnesses:
/// `bench` measures host time, `sim-harness` times campaign wall-clock).
const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench", "sim-harness"];

/// Files held to the strict wall-clock rule even inside an exempt crate:
/// determinism-critical modules whose outputs key journals or digests.
const WALLCLOCK_STRICT_PATHS: &[&str] = &["crates/sim-harness/src/digest.rs"];

/// Files allowed to read the wall clock inside an otherwise-strict crate —
/// the inverse of [`WALLCLOCK_STRICT_PATHS`]. `sim-prof` is a profiler, but
/// only its clock module may touch `Instant`: every other module works in
/// nanosecond integers handed to it, so a stray clock read elsewhere in the
/// crate still fails the lint.
const WALLCLOCK_EXEMPT_PATHS: &[&str] = &["crates/sim-prof/src/clock.rs"];

/// Pass implementation.
pub struct ForbidWallclockAndUnsafe;

impl Pass for ForbidWallclockAndUnsafe {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        let ws = a.ws;
        for file in &ws.files {
            let wallclock_exempt = (WALLCLOCK_EXEMPT_CRATES.contains(&file.crate_name.as_str())
                && !WALLCLOCK_STRICT_PATHS.contains(&file.rel_path.as_str()))
                || WALLCLOCK_EXEMPT_PATHS.contains(&file.rel_path.as_str());
            for (_, tok) in file.code_tokens() {
                if tok.kind != TokKind::Ident {
                    continue;
                }
                if tok.text == "unsafe" {
                    out.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        tok.line,
                        "`unsafe` code in the simulation workspace — every crate is \
                         `#![forbid(unsafe_code)]`",
                    ));
                } else if !wallclock_exempt && WALLCLOCK_IDENTS.contains(&tok.text.as_str()) {
                    out.push(Diagnostic::new(
                        LINT,
                        &file.rel_path,
                        tok.line,
                        format!(
                            "`{}` in a deterministic sim crate — wall-clock time and \
                             ambient randomness break seeded reproducibility; thread \
                             cycle counts and seeded RNGs instead",
                            tok.text
                        ),
                    ));
                }
            }

            if is_crate_root(&file.rel_path) && !has_forbid_unsafe(file) {
                out.push(Diagnostic::new(
                    LINT,
                    &file.rel_path,
                    1,
                    "crate root is missing `#![forbid(unsafe_code)]`",
                ));
            }
        }
    }
}

fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || rel_path == "src/main.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

/// Matches the token sequence `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let t = &file.tokens;
    t.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
                .collect(),
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ForbidWallclockAndUnsafe.run(&Analysis::new(ws), &mut out);
        out
    }

    #[test]
    fn flags_wallclock_and_entropy() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "use std::time::Instant;\nfn f() { let t = SystemTime::now(); thread_rng(); }",
        )]);
        let d = run(&w);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn bench_is_exempt_from_wallclock_but_not_unsafe() {
        let w = ws(vec![(
            "bench",
            "crates/bench/src/timing.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); unsafe { g(); } }",
        )]);
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unsafe"));
    }

    #[test]
    fn sim_harness_is_exempt_except_its_digest_module() {
        let runner = ws(vec![(
            "sim-harness",
            "crates/sim-harness/src/runner.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
        )]);
        assert!(run(&runner).is_empty(), "campaign timing is allowed");
        let digest = ws(vec![(
            "sim-harness",
            "crates/sim-harness/src/digest.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }",
        )]);
        let d = run(&digest);
        assert_eq!(d.len(), 2, "the digest module is strict: {d:?}");
        assert!(d[0].message.contains("Instant"));
    }

    #[test]
    fn sim_prof_clock_module_is_exempt_but_the_rest_of_the_crate_is_not() {
        let clock = ws(vec![(
            "sim-prof",
            "crates/sim-prof/src/clock.rs",
            "use std::time::Instant;\nfn now() { let t = Instant::now(); }",
        )]);
        assert!(run(&clock).is_empty(), "the clock module owns Instant");
        // Seeded violation: the same clock read anywhere else in sim-prof
        // must still fail — only clock.rs carries the exemption.
        let profiler = ws(vec![(
            "sim-prof",
            "crates/sim-prof/src/profiler.rs",
            "use std::time::Instant;\nfn sneaky() { let t = Instant::now(); }",
        )]);
        let d = run(&profiler);
        assert_eq!(d.len(), 2, "profiler.rs stays strict: {d:?}");
        assert!(d.iter().all(|d| d.message.contains("Instant")));
    }

    #[test]
    fn forbid_unsafe_code_attr_does_not_self_trigger() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn missing_forbid_attr_on_crate_root_is_flagged() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/lib.rs",
            "pub fn f() {}\n",
        )]);
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("forbid(unsafe_code)"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn non_root_files_do_not_need_the_attr() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/bank.rs",
            "pub fn f() {}\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn instant_in_test_code_is_fine() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n",
        )]);
        assert!(run(&w).is_empty());
    }
}
