//! The lint passes. Each pass walks the analyzed workspace and appends
//! [`Diagnostic`]s; suppression is applied afterwards by the driver.

pub mod cycle_arith;
pub mod dead_pragma;
pub mod discarded_result;
pub mod metrics;
pub mod no_panic;
pub mod panic_reach;
pub mod parity;
pub mod wallclock;

use crate::diag::Diagnostic;
use crate::Analysis;

/// A lint pass.
pub trait Pass {
    /// Lint name used in diagnostics and `allow(...)` pragmas.
    fn name(&self) -> &'static str;
    /// Runs the pass over the analyzed workspace.
    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>);
}

/// All shipped passes, in reporting order. The `dead-pragma` pass is not
/// listed: it runs as a dedicated phase in [`crate::lint_sources`] because
/// it needs the pre-suppression diagnostics of every other pass as input.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(no_panic::NoPanicHotPath),
        Box::new(panic_reach::PanicReachability),
        Box::new(parity::CheckerParity),
        Box::new(metrics::MetricRegistry),
        Box::new(wallclock::ForbidWallclockAndUnsafe),
        Box::new(discarded_result::DiscardedResult),
        Box::new(cycle_arith::CycleArith),
    ]
}

/// Names of every lint a pragma may reference (the `pragma` meta lint is
/// always on and cannot be suppressed).
pub const LINT_NAMES: &[&str] = &[
    "no-panic-hot-path",
    "panic-reachability",
    "checker-parity",
    "metric-registry",
    "forbid-wallclock-and-unsafe",
    "discarded-result",
    "cycle-arith",
    "dead-pragma",
];
