//! The lint passes. Each pass walks the lexed workspace and appends
//! [`Diagnostic`]s; suppression is applied afterwards by the driver.

pub mod metrics;
pub mod no_panic;
pub mod parity;
pub mod wallclock;

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

/// A lint pass.
pub trait Pass {
    /// Lint name used in diagnostics and `allow(...)` pragmas.
    fn name(&self) -> &'static str;
    /// Runs the pass over the whole workspace.
    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// All shipped passes, in reporting order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(no_panic::NoPanicHotPath),
        Box::new(parity::CheckerParity),
        Box::new(metrics::MetricRegistry),
        Box::new(wallclock::ForbidWallclockAndUnsafe),
    ]
}

/// Names of every lint a pragma may reference (the `pragma` meta lint is
/// always on and cannot be suppressed).
pub const LINT_NAMES: &[&str] = &[
    "no-panic-hot-path",
    "checker-parity",
    "metric-registry",
    "forbid-wallclock-and-unsafe",
];
