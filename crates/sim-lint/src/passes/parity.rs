//! `checker-parity`: every `TimingParams` field must be enforced on *both*
//! sides of the runtime defence — the scheduler (`channel.rs` / `bank.rs` /
//! `rank.rs` fences) and the independent protocol verifier (`checker.rs`).
//!
//! One-sided enforcement is exactly the bug class the checker exists to
//! catch: a constraint the scheduler honours but the checker never verifies
//! is invisible to `--verify-protocol`, and a checker-only rule guards
//! nothing the scheduler produces. Fields that are legitimately one-sided
//! (e.g. CKE-pin timings the command bus never sees) carry a pragma with
//! the reason on their declaration line in `timing.rs`.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::Pass;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::Analysis;

const LINT: &str = "checker-parity";

/// Files that implement scheduler-side timing fences.
const SCHEDULER_FILES: &[&str] = &["src/channel.rs", "src/bank.rs", "src/rank.rs"];
/// File that implements the independent verifier.
const CHECKER_FILE: &str = "src/checker.rs";

/// Pass implementation.
pub struct CheckerParity;

impl Pass for CheckerParity {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        let ws = a.ws;
        let Some((timing_file, fields)) = find_timing_fields(ws) else {
            return; // no TimingParams definition in this workspace
        };

        let mut sched_idents: HashSet<&str> = HashSet::new();
        let mut chk_idents: HashSet<&str> = HashSet::new();
        for file in &ws.files {
            if file.crate_name != "dram-sim" {
                continue;
            }
            if SCHEDULER_FILES.iter().any(|s| file.rel_path.ends_with(s)) {
                collect_idents(file, &mut sched_idents);
            } else if file.rel_path.ends_with(CHECKER_FILE) {
                collect_idents(file, &mut chk_idents);
            }
        }

        for (name, line) in fields {
            let in_sched = sched_idents.contains(name.as_str());
            let in_chk = chk_idents.contains(name.as_str());
            if in_sched && in_chk {
                continue;
            }
            let message = match (in_sched, in_chk) {
                (true, false) => format!(
                    "TimingParams field `{name}` is enforced by the scheduler but never \
                     verified by the protocol checker (checker.rs) — add a checker rule \
                     or pragma-annotate the field with the reason it is checker-exempt"
                ),
                (false, true) => format!(
                    "TimingParams field `{name}` is verified by the protocol checker but \
                     never enforced by the scheduler (channel.rs/bank.rs/rank.rs) — the \
                     checker would reject every schedule that exercises it"
                ),
                _ => format!(
                    "TimingParams field `{name}` is referenced by neither the scheduler \
                     nor the protocol checker — dead timing parameter"
                ),
            };
            out.push(Diagnostic::new(LINT, &timing_file, line, message));
        }
    }
}

/// Finds the `struct TimingParams` definition and returns its file path and
/// `(field_name, line)` list.
fn find_timing_fields(ws: &Workspace) -> Option<(String, Vec<(String, u32)>)> {
    for file in &ws.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !(toks[i].is_ident("struct")
                && toks.get(i + 1).map(|t| t.is_ident("TimingParams")) == Some(true))
            {
                continue;
            }
            // Scan to the opening brace, then collect `name :` pairs at
            // brace depth 1 (skipping `::` path segments).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut fields = Vec::new();
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident if depth == 1 => {
                        let prev_colon = j > 0 && toks[j - 1].is_punct(':');
                        let next_colon = toks.get(j + 1).map(|t| t.is_punct(':')) == Some(true);
                        let double_colon = toks.get(j + 2).map(|t| t.is_punct(':')) == Some(true);
                        if next_colon && !double_colon && !prev_colon {
                            fields.push((toks[j].text.clone(), toks[j].line));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some((file.rel_path.clone(), fields));
        }
    }
    None
}

fn collect_idents<'a>(file: &'a SourceFile, out: &mut HashSet<&'a str>) {
    for (_, tok) in file.code_tokens() {
        if tok.kind == TokKind::Ident {
            out.insert(tok.text.as_str());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
                .collect(),
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        CheckerParity.run(&Analysis::new(ws), &mut out);
        out
    }

    #[test]
    fn flags_scheduler_only_field() {
        let w = ws(vec![
            (
                "dram-sim",
                "crates/dram-sim/src/timing.rs",
                "pub struct TimingParams {\n    pub trcd: u64,\n    pub twtr: u64,\n}\n",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/channel.rs",
                "fn f(t: &TimingParams) { use_fence(t.trcd); use_fence(t.twtr); }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/checker.rs",
                "fn check(t: &TimingParams) { verify(t.trcd); }",
            ),
        ]);
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`twtr`"));
        assert!(d[0]
            .message
            .contains("never verified by the protocol checker"));
        assert_eq!(d[0].file, "crates/dram-sim/src/timing.rs");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn flags_checker_only_and_dead_fields() {
        let w = ws(vec![
            (
                "dram-sim",
                "crates/dram-sim/src/timing.rs",
                "pub struct TimingParams { pub a: u64, pub b: u64, pub c: u64 }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/bank.rs",
                "fn f(t: &T) { g(t.a); }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/checker.rs",
                "fn f(t: &T) { g(t.a); g(t.b); }",
            ),
        ]);
        let d = run(&w);
        assert_eq!(d.len(), 2);
        assert!(d
            .iter()
            .any(|d| d.message.contains("`b`")
                && d.message.contains("never enforced by the scheduler")));
        assert!(d
            .iter()
            .any(|d| d.message.contains("`c`") && d.message.contains("neither")));
    }

    #[test]
    fn clean_when_both_sides_enforce() {
        let w = ws(vec![
            (
                "dram-sim",
                "crates/dram-sim/src/timing.rs",
                "pub struct TimingParams { pub trp: u64 }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/rank.rs",
                "fn f(t: &T) { g(t.trp); }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/checker.rs",
                "fn f(t: &T) { g(t.trp); }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn no_timing_struct_is_a_no_op() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/lib.rs",
            "fn f() {}",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn field_extraction_skips_paths_and_nested_braces() {
        let w = ws(vec![
            (
                "dram-sim",
                "crates/dram-sim/src/timing.rs",
                "pub struct TimingParams {\n    pub trcd: std::num::NonZeroU64,\n}\n\
                 impl TimingParams { fn m(&self) { let local: u64 = 0; } }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/channel.rs",
                "fn f(t: &T) { g(t.trcd); }",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/checker.rs",
                "fn f(t: &T) { g(t.trcd); }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }
}
