//! `discarded-result`: a `Result` returned by a workspace sim API must not
//! be silently dropped in non-test code.
//!
//! The pass walks the resolved [call graph](crate::callgraph) sites whose
//! callee is an indexed workspace function declared to return `Result`, and
//! flags three discard shapes:
//!
//! * `let _ = sim_api(...);` — wildcard binding (a `?` after the call still
//!   propagates the error, so that form passes);
//! * `sim_api(...).ok();` — converting to `Option` and dropping it as a
//!   bare statement;
//! * `sim_api(...);` — a bare-statement drop.
//!
//! Because only *resolved* workspace calls are considered, `let _ =
//! writeln!(...)` (a macro) and `std::fs` conveniences never flag: the lint
//! polices the simulator's own fallible APIs, whose errors encode protocol
//! faults that must be handled or propagated.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::passes::Pass;
use crate::Analysis;

const LINT: &str = "discarded-result";

/// Pass implementation.
pub struct DiscardedResult;

impl Pass for DiscardedResult {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for site in &a.calls.sites {
            let callee = &a.items.fns[site.callee];
            if !callee.returns_result {
                continue;
            }
            let caller = &a.items.fns[site.caller];
            if caller.is_test {
                continue;
            }
            if !seen.insert((caller.file_idx, site.name_tok)) {
                continue; // trait-dispatch fan-out: one report per site
            }
            let file = &a.ws.files[caller.file_idx];
            let toks = &file.tokens;
            let close = match_paren(toks, site.name_tok + 1);
            let next = toks.get(close + 1);

            let start = expr_start(toks, site.name_tok);
            let before = start.checked_sub(1).map(|p| &toks[p]);
            let let_wildcard = start >= 3
                && toks[start - 1].is_punct('=')
                && toks[start - 2].is_ident("_")
                && toks[start - 3].is_ident("let");
            let stmt_start = match before {
                None => true,
                Some(t) => t.is_punct(';') || t.is_punct('{') || t.is_punct('}'),
            };

            let shape = if let_wildcard {
                // `let _ = f()?;` propagates the error — that consumes it.
                if next.map(|t| t.is_punct('?')).unwrap_or(false) {
                    continue;
                }
                "bound to `let _ =`"
            } else if stmt_start && next.map(|t| t.is_punct(';')).unwrap_or(false) {
                "dropped as a bare statement"
            } else if stmt_start && is_dropped_ok_chain(toks, close) {
                "converted with `.ok()` and dropped"
            } else {
                continue;
            };
            out.push(Diagnostic::new(
                LINT,
                &file.rel_path,
                site.line,
                format!(
                    "`Result` returned by `{}` is {shape} — handle the error, \
                     propagate it with `?`, or pragma-annotate with the reason \
                     the failure is ignorable",
                    callee.display(),
                ),
            ));
        }
    }
}

/// `).ok();` directly after the call's closing parenthesis.
fn is_dropped_ok_chain(toks: &[Token], close: usize) -> bool {
    toks.get(close + 1).map(|t| t.is_punct('.')) == Some(true)
        && toks.get(close + 2).map(|t| t.is_ident("ok")) == Some(true)
        && toks.get(close + 3).map(|t| t.is_punct('(')) == Some(true)
        && toks.get(close + 4).map(|t| t.is_punct(')')) == Some(true)
        && toks.get(close + 5).map(|t| t.is_punct(';')) == Some(true)
}

/// Forward scan from an opening `(` to its matching `)`.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Backward scan from a closing delimiter to its matching opener.
fn match_backward(toks: &[Token], close: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if toks[j].is_punct(close_ch) {
            depth += 1;
        } else if toks[j].is_punct(open_ch) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        let Some(p) = j.checked_sub(1) else { return j };
        j = p;
    }
}

/// Walks back from the callee-name token over the receiver chain
/// (`self.banks[i].issue` → index of `self`) to the expression's first
/// token.
fn expr_start(toks: &[Token], name_i: usize) -> usize {
    let mut j = name_i;
    loop {
        let Some(p) = j.checked_sub(1) else { return j };
        if toks[p].is_punct('.') {
            let Some(q) = p.checked_sub(1) else { return p };
            match toks[q].kind {
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    let (o, c) = if toks[q].is_punct(')') {
                        ('(', ')')
                    } else {
                        ('[', ']')
                    };
                    let open = match_backward(toks, q, o, c);
                    j = open;
                    // A call or index has its callee/base just before the
                    // opener: `helper().m()` starts at `helper`.
                    if let Some(r) = open.checked_sub(1) {
                        if toks[r].kind == TokKind::Ident {
                            j = r;
                        }
                    }
                }
                TokKind::Ident => j = q,
                _ => return j,
            }
        } else if toks[p].is_punct(':') && p >= 1 && toks[p - 1].is_punct(':') {
            let Some(q) = (p - 1).checked_sub(1) else {
                return j;
            };
            if toks[q].kind == TokKind::Ident {
                j = q;
            } else {
                return j;
            }
        } else {
            return j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    const API: &str = "pub struct Bus;\n\
                       impl Bus {\n    \
                       pub fn issue(&mut self) -> Result<(), u8> { Ok(()) }\n}\n";

    fn ws_one(body: &str) -> Workspace {
        let src =
            format!("{API}fn drive(bus: &mut Bus) -> Result<(), u8> {{\n{body}\n    Ok(())\n}}\n");
        Workspace {
            files: vec![SourceFile::parse(
                "dram-sim",
                "crates/dram-sim/src/bus.rs",
                &src,
                false,
            )],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(w: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        DiscardedResult.run(&Analysis::new(w), &mut out);
        out
    }

    #[test]
    fn let_wildcard_discard_is_flagged() {
        let d = run(&ws_one("    let _ = bus.issue();"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("let _ ="));
        assert!(d[0].message.contains("Bus::issue"));
    }

    #[test]
    fn bare_statement_drop_is_flagged() {
        let d = run(&ws_one("    bus.issue();"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("bare statement"));
    }

    #[test]
    fn dropped_ok_chain_is_flagged() {
        let d = run(&ws_one("    bus.issue().ok();"));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains(".ok()"));
    }

    #[test]
    fn question_mark_and_bindings_consume() {
        assert!(run(&ws_one("    bus.issue()?;")).is_empty());
        assert!(run(&ws_one("    let r = bus.issue();\n    r?;")).is_empty());
        assert!(run(&ws_one("    let _ = bus.issue()?;")).is_empty());
        assert!(run(&ws_one("    return bus.issue();")).is_empty());
        assert!(run(&ws_one("    if bus.issue().is_err() { }")).is_empty());
    }

    #[test]
    fn non_result_calls_and_test_code_are_ignored() {
        let w = Workspace {
            files: vec![SourceFile::parse(
                "dram-sim",
                "crates/dram-sim/src/bus.rs",
                "pub struct Bus;\n\
                 impl Bus { pub fn nudge(&mut self) {} }\n\
                 fn drive(bus: &mut Bus) { bus.nudge(); }\n\
                 #[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() {\n        \
                 let mut b = Bus;\n        let _ = b.nudge();\n    }\n}\n",
                false,
            )],
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        };
        assert!(run(&w).is_empty());
    }
}
