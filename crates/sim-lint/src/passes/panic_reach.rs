//! `panic-reachability`: no panicking construct may be *transitively*
//! reachable from the simulator's hot-loop entry points.
//!
//! Where `no-panic-hot-path` is lexical and per-crate, this pass walks the
//! [call graph](crate::callgraph) from the entry points (`Channel::tick`,
//! `MemorySystem::try_tick`, the bank FSM command methods) and flags every
//! panic site in any function they reach — including helpers in crates the
//! lexical pass does not police. Each diagnostic carries the full call
//! chain from the entry point to the panic site, so the report reads as a
//! proof, not an assertion.
//!
//! A site already vouched infallible with a reasoned
//! `allow(no-panic-hot-path)` pragma is trusted here too: one
//! justification covers both the lexical and the interprocedural view of
//! the same construct. Because the call graph deliberately
//! under-approximates (ambiguous calls produce no edge), every chain this
//! pass prints is real; the lexical pass backstops what the graph cannot
//! see inside the hot crates.

use std::collections::HashSet;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::passes::no_panic::panic_construct;
use crate::passes::Pass;
use crate::Analysis;

const LINT: &str = "panic-reachability";

/// Hot-loop entry points as `(self_type, method)` pairs: the channel and
/// memory-system tick functions and the bank FSM command methods.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("Channel", "tick"),
    ("MemorySystem", "try_tick"),
    ("Bank", "activate"),
    ("Bank", "column_read"),
    ("Bank", "column_write"),
    ("Bank", "precharge"),
    ("Bank", "tick_auto_precharge"),
];

/// Pass implementation.
pub struct PanicReachability;

impl Pass for PanicReachability {
    fn name(&self) -> &'static str {
        LINT
    }

    fn run(&self, a: &Analysis, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = a
            .items
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && ENTRY_POINTS
                        .iter()
                        .any(|(ty, m)| f.self_type.as_deref() == Some(*ty) && f.name == *m)
            })
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            return;
        }
        let parents = a.calls.reach_with_parents(&roots);
        let mut reached: Vec<usize> = parents.keys().copied().collect();
        reached.sort_unstable();

        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for fi in reached {
            let f = &a.items.fns[fi];
            if f.is_test {
                continue;
            }
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            let file = &a.ws.files[f.file_idx];
            for i in body_start..=body_end.min(file.tokens.len().saturating_sub(1)) {
                let Some(display) = panic_construct(&file.tokens, i) else {
                    continue;
                };
                let line = file.tokens[i].line;
                // A reasoned allow(no-panic-hot-path) pragma vouches the
                // site infallible for both views of the same construct.
                if file.suppresses("no-panic-hot-path", line) {
                    continue;
                }
                if !seen.insert((f.file_idx, i)) {
                    continue;
                }
                let chain: Vec<String> = CallGraph::chain_to(&parents, fi)
                    .into_iter()
                    .map(|j| a.items.fns[j].display())
                    .collect();
                out.push(Diagnostic::new(
                    LINT,
                    &file.rel_path,
                    line,
                    format!(
                        "`{display}` is reachable from hot-loop entry point `{}` \
                         (call chain: {}) — return a typed `SimError`/`Result` along \
                         the chain, or pragma-annotate a provably-infallible site \
                         with a reason",
                        chain.first().cloned().unwrap_or_default(),
                        chain.join(" → "),
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
                .collect(),
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn run(w: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        PanicReachability.run(&Analysis::new(w), &mut out);
        out
    }

    #[test]
    fn panic_two_hops_from_tick_is_reported_with_chain() {
        let w = ws(vec![
            (
                "dram-sim",
                "crates/dram-sim/src/channel.rs",
                "use crate::util::decode;\n\
                 pub struct Channel;\n\
                 impl Channel {\n    pub fn tick(&mut self) { decode(0); }\n}\n",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/util.rs",
                "pub fn decode(v: u64) -> u64 { inner(v) }\n\
                 fn inner(v: u64) -> u64 { v.checked_mul(2).unwrap() }\n",
            ),
        ]);
        let d = run(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, "panic-reachability");
        assert_eq!(d[0].file, "crates/dram-sim/src/util.rs");
        assert!(d[0].message.contains("Channel::tick → decode → inner"));
    }

    #[test]
    fn unreachable_panic_is_not_reported() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "pub struct Channel;\n\
             impl Channel {\n    pub fn tick(&mut self) {}\n}\n\
             fn orphan() { panic!(\"never called from tick\"); }\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn no_panic_pragma_vouches_the_site() {
        let w = ws(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "pub struct Channel;\n\
             impl Channel {\n    pub fn tick(&mut self) { helper(); }\n}\n\
             fn helper() {\n    \
             // sim-lint: allow(no-panic-hot-path): key inserted two lines up\n    \
             m.get(&k).unwrap();\n}\n",
        )]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn no_entry_points_means_no_diagnostics() {
        let w = ws(vec![(
            "sim-obs",
            "crates/sim-obs/src/lib.rs",
            "fn a() { b(); }\nfn b() { panic!(\"x\"); }\n",
        )]);
        assert!(run(&w).is_empty());
    }
}
