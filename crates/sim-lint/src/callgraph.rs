//! Conservative call graph over the [`ItemIndex`](crate::items::ItemIndex).
//!
//! Edges are added only when a call site resolves with high confidence:
//!
//! * `helper(...)` — a free function in the caller's own module, a
//!   `use`-imported (possibly renamed) function, or a workspace-unique
//!   free-function name;
//! * `Type::method(...)` — a qualified method on a known type (through
//!   `use ... as` renames too);
//! * `self.method(...)` — a method on the enclosing `impl` type;
//! * `x.method(...)` where `x` is a parameter or `let` binding whose type
//!   is known (annotation or `Type::new(...)`-style construction) — a
//!   method on that type, or every implementor's method for a
//!   `dyn`/`impl Trait` receiver;
//! * `expr.method(...)` with an opaque receiver — only when exactly one
//!   method in the whole workspace has that name.
//!
//! Ambiguous method names on opaque receivers produce **no** edge: the
//! graph under-approximates rather than fabricate chains, so every
//! reported call chain is real. The lexical `no-panic-hot-path` pass
//! backstops the under-approximation inside the hot crates. Calls inside
//! closures fall within their enclosing function's body range and are
//! attributed to it, which is exactly the attribution the reachability
//! passes want.

use std::collections::HashMap;

use crate::items::{FnItem, ItemIndex, ParamTy};
use crate::lexer::{TokKind, Token};
use crate::workspace::Workspace;

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling function in `ItemIndex::fns`.
    pub caller: usize,
    /// Index of the called function in `ItemIndex::fns`.
    pub callee: usize,
    /// Token index of the callee name at the call site.
    pub name_tok: usize,
    /// 1-based line of the call.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every resolved call site, in discovery order.
    pub sites: Vec<CallSite>,
    /// Adjacency: caller fn index → callee fn indices (deduplicated).
    pub callees: HashMap<usize, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for every non-test function body in the index.
    pub fn build(ws: &Workspace, idx: &ItemIndex) -> Self {
        let mut g = CallGraph::default();
        for (caller_id, f) in idx.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            let toks = &ws.files[f.file_idx].tokens;
            let locals = collect_locals(f, toks, body_start, body_end);
            let mut i = body_start;
            while i < body_end {
                let t = &toks[i];
                if t.kind == TokKind::Ident
                    && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                {
                    for callee in resolve_call(idx, f, &locals, toks, i) {
                        g.add(caller_id, callee, i, t.line);
                    }
                }
                i += 1;
            }
        }
        g
    }

    fn add(&mut self, caller: usize, callee: usize, name_tok: usize, line: u32) {
        self.sites.push(CallSite {
            caller,
            callee,
            name_tok,
            line,
        });
        let list = self.callees.entry(caller).or_default();
        if !list.contains(&callee) {
            list.push(callee);
        }
    }

    /// Breadth-first search from `roots`; returns, for every reached
    /// function, the predecessor on a shortest path (roots map to
    /// themselves).
    pub fn reach_with_parents(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &r in roots {
            parent.insert(r, r);
            queue.push_back(r);
        }
        while let Some(n) = queue.pop_front() {
            if let Some(next) = self.callees.get(&n) {
                for &c in next {
                    parent.entry(c).or_insert_with(|| {
                        queue.push_back(c);
                        n
                    });
                }
            }
        }
        parent
    }

    /// Reconstructs the call chain from a root to `node` using the parent
    /// map from [`Self::reach_with_parents`].
    pub fn chain_to(parents: &HashMap<usize, usize>, node: usize) -> Vec<usize> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// Local bindings with known types inside one function body: parameter
/// types plus `let x: Type = ...` annotations plus `let x = Type::new(...)`
/// constructions.
fn collect_locals(
    f: &FnItem,
    toks: &[Token],
    body_start: usize,
    body_end: usize,
) -> HashMap<String, ParamTy> {
    let mut locals: HashMap<String, ParamTy> = HashMap::new();
    for (name, ty) in &f.params {
        if let Some(ty) = ty {
            locals.insert(name.clone(), ty.clone());
        }
    }
    let mut i = body_start;
    while i + 2 < body_end {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < body_end && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < body_end && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                if j + 1 < body_end && toks[j + 1].is_punct(':') {
                    // `let x: Type = ...` — type tokens run to the `=`.
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut angle = 0i32;
                    while k < body_end {
                        match &toks[k].kind {
                            TokKind::Punct('<') => angle += 1,
                            TokKind::Punct('>') => angle -= 1,
                            TokKind::Punct('=') | TokKind::Punct(';') if angle <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(ty) = crate::items::extract_type(&toks[ty_start..k]) {
                        locals.insert(name, ty);
                    }
                } else if j + 3 < body_end
                    && toks[j + 1].is_punct('=')
                    && toks[j + 2].kind == TokKind::Ident
                    && toks[j + 3].is_punct(':')
                {
                    // `let x = Type::ctor(...)` — record the type when the
                    // path head is capitalised (a type, not a module).
                    let head = &toks[j + 2].text;
                    if head.chars().next().map(char::is_uppercase).unwrap_or(false) {
                        locals.insert(name, ParamTy::Named(head.clone()));
                    }
                }
            }
        }
        i += 1;
    }
    locals
}

/// Resolves one `ident (` call site to zero or more callee ids.
fn resolve_call(
    idx: &ItemIndex,
    caller: &FnItem,
    locals: &HashMap<String, ParamTy>,
    toks: &[Token],
    name_i: usize,
) -> Vec<usize> {
    let name = toks[name_i].text.as_str();
    if is_keyword(name) {
        return Vec::new();
    }
    let prev = name_i.checked_sub(1).map(|p| &toks[p]);
    match prev {
        Some(p) if p.is_punct('.') => resolve_method_call(idx, caller, locals, toks, name_i),
        Some(p) if p.is_punct(':') => resolve_qualified_call(idx, caller, toks, name_i),
        Some(p) if p.kind == TokKind::Ident && p.text == "fn" => Vec::new(),
        _ => resolve_free_call(idx, caller, name),
    }
}

/// `expr.name(...)`: resolve through the receiver when its type is known.
fn resolve_method_call(
    idx: &ItemIndex,
    caller: &FnItem,
    locals: &HashMap<String, ParamTy>,
    toks: &[Token],
    name_i: usize,
) -> Vec<usize> {
    let name = toks[name_i].text.as_str();
    // Receiver token sits before the `.`.
    let recv_i = name_i.wrapping_sub(2);
    let recv = toks.get(recv_i);
    let recv_starts_expr = recv_i
        .checked_sub(1)
        .map(|p| !matches!(toks[p].kind, TokKind::Punct('.') | TokKind::Punct(':')))
        .unwrap_or(true);
    if let Some(r) = recv {
        if r.kind == TokKind::Ident && recv_starts_expr {
            if r.text == "self" {
                if let Some(ty) = &caller.self_type {
                    let direct = idx.methods_on(ty, name);
                    if !direct.is_empty() {
                        return direct;
                    }
                    // A trait-impl method may call a sibling through the
                    // trait's default body.
                    if let Some(tr) = &caller.trait_name {
                        let via_trait = idx.methods_on(tr, name);
                        if !via_trait.is_empty() {
                            return via_trait;
                        }
                    }
                }
                return Vec::new();
            }
            if let Some(ty) = locals.get(&r.text) {
                return match ty {
                    ParamTy::Named(t) => idx.methods_on(t, name),
                    ParamTy::TraitObj(tr) => idx.trait_dispatch(tr, name),
                };
            }
        }
    }
    // Opaque receiver (field access, chained call, unknown local): only a
    // workspace-unique method name resolves.
    let candidates = idx.methods_named(name);
    if candidates.len() == 1 {
        candidates
    } else {
        Vec::new()
    }
}

/// `Path::name(...)`: the segment before the `::` names a type (method
/// call) or a module (free function).
fn resolve_qualified_call(
    idx: &ItemIndex,
    caller: &FnItem,
    toks: &[Token],
    name_i: usize,
) -> Vec<usize> {
    let name = toks[name_i].text.as_str();
    // Step back over one `::` to the qualifying segment — one segment of
    // qualification is enough to resolve.
    let mut q_i = name_i;
    if q_i >= 2 && toks[q_i - 1].is_punct(':') && toks[q_i - 2].is_punct(':') {
        q_i -= 3;
        if toks
            .get(q_i)
            .map(|t| t.kind != TokKind::Ident)
            .unwrap_or(true)
        {
            return Vec::new();
        }
    }
    if q_i == name_i {
        return Vec::new();
    }
    let mut qualifier = toks[q_i].text.clone();
    // Follow a `use ... as` rename of the qualifier.
    if let Some(uses) = idx.uses.get(&caller.file_idx) {
        if let Some(u) = uses.iter().find(|u| u.alias == qualifier) {
            if let Some(last) = u.path.last() {
                qualifier = last.clone();
            }
        }
    }
    if qualifier == "Self" {
        if let Some(ty) = &caller.self_type {
            qualifier = ty.clone();
        }
    }
    let on_type = idx.methods_on(&qualifier, name);
    if !on_type.is_empty() {
        return on_type;
    }
    // Module-qualified free function: `util::boom()`.
    let in_module: Vec<usize> = idx
        .free_fns_named(name)
        .into_iter()
        .filter(|&i| {
            let f = &idx.fns[i];
            f.module_path
                .last()
                .map(|m| *m == qualifier)
                .unwrap_or(false)
                || f.crate_name.replace('-', "_") == qualifier
        })
        .collect();
    in_module
}

/// Bare `name(...)`: same-module, `use`-imported (possibly renamed), or
/// workspace-unique.
fn resolve_free_call(idx: &ItemIndex, caller: &FnItem, name: &str) -> Vec<usize> {
    let all = idx.free_fns_named(name);
    // Same module and crate first.
    let same_module: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| {
            let f = &idx.fns[i];
            f.crate_name == caller.crate_name && f.module_path == caller.module_path
        })
        .collect();
    if !same_module.is_empty() {
        return same_module;
    }
    // A `use` import visible as this identifier: resolve through the
    // import's real path (so `use crate::util::boom as blast;` still
    // resolves `blast()`). If the import exists but names something we
    // cannot see (std, another workspace item kind), resolve to nothing
    // rather than guess.
    if let Some(uses) = idx.uses.get(&caller.file_idx) {
        if let Some(u) = uses.iter().find(|u| u.alias == name) {
            let real = u.path.last().map(String::as_str).unwrap_or(name);
            return idx
                .free_fns_named(real)
                .into_iter()
                .filter(|&i| use_path_matches(&idx.fns[i], &u.path))
                .collect();
        }
    }
    if all.len() == 1 {
        return all;
    }
    Vec::new()
}

/// Whether a `use` path (`["crate", "util", "helpers", "fizz"]`) plausibly
/// names this function: the final segment must be the function's name (the
/// alias already matched) and the preceding segments must be a suffix of
/// the function's module path.
fn use_path_matches(f: &FnItem, path: &[String]) -> bool {
    let Some((last, prefix)) = path.split_last() else {
        return false;
    };
    if *last != f.name {
        return false;
    }
    let meaningful: Vec<&String> = prefix
        .iter()
        .filter(|s| s.as_str() != "crate" && s.as_str() != "self" && s.as_str() != "super")
        .collect();
    // Segments may start with the crate name (external-path import).
    let mut mods: Vec<String> = vec![f.crate_name.replace('-', "_")];
    mods.extend(f.module_path.iter().cloned());
    meaningful.iter().all(|s| mods.iter().any(|m| m == *s))
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "impl"
            | "dyn"
            | "break"
            | "continue"
            | "else"
            | "unsafe"
            | "await"
            | "yield"
            | "box"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemIndex;
    use crate::source::SourceFile;
    use crate::workspace::Workspace;

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
                .collect(),
            manifest: None,
            manifest_path: "docs/metrics.md".to_string(),
        }
    }

    fn graph(files: Vec<(&str, &str, &str)>) -> (Workspace, ItemIndex, CallGraph) {
        let w = ws(files);
        let idx = ItemIndex::build(&w);
        let g = CallGraph::build(&w, &idx);
        (w, idx, g)
    }

    fn has_edge(idx: &ItemIndex, g: &CallGraph, caller: &str, callee: &str) -> bool {
        g.sites
            .iter()
            .any(|s| idx.fns[s.caller].display() == caller && idx.fns[s.callee].display() == callee)
    }

    #[test]
    fn direct_same_module_call() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "fn a() { b(); }\nfn b() {}\n",
        )]);
        assert!(has_edge(&idx, &g, "a", "b"));
    }

    #[test]
    fn self_method_call_resolves_to_enclosing_impl() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "struct Channel;\nimpl Channel {\n    fn tick(&mut self) { self.step(); }\n    fn step(&mut self) {}\n}\n",
        )]);
        assert!(has_edge(&idx, &g, "Channel::tick", "Channel::step"));
    }

    #[test]
    fn typed_param_receiver_resolves_shadowed_method_names() {
        // Two types share a method name; the typed receiver picks the right
        // one and ONLY that one.
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "struct Bank;\nimpl Bank { fn fire(&self) {} }\n\
             struct Gun;\nimpl Gun { fn fire(&self) {} }\n\
             fn go(b: &Bank) { b.fire(); }\n",
        )]);
        assert!(has_edge(&idx, &g, "go", "Bank::fire"));
        assert!(!has_edge(&idx, &g, "go", "Gun::fire"));
    }

    #[test]
    fn opaque_receiver_with_ambiguous_name_produces_no_edge() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "struct Bank;\nimpl Bank { fn fire(&self) {} }\n\
             struct Gun;\nimpl Gun { fn fire(&self) {} }\n\
             struct Holder { item: Gun }\n\
             fn go(h: &Holder) { h.item.fire(); }\n",
        )]);
        // Field receivers are opaque; with two candidate `fire`s the graph
        // stays silent rather than guess.
        assert!(!has_edge(&idx, &g, "go", "Bank::fire"));
        assert!(!has_edge(&idx, &g, "go", "Gun::fire"));
    }

    #[test]
    fn opaque_receiver_with_unique_name_resolves() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "struct Bank;\nimpl Bank { fn only_here(&self) {} }\n\
             struct Holder { item: Bank }\n\
             fn go(h: &Holder) { h.item.only_here(); }\n",
        )]);
        assert!(has_edge(&idx, &g, "go", "Bank::only_here"));
    }

    #[test]
    fn qualified_type_method_call() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "struct Bank;\nimpl Bank { fn new() -> Bank { Bank } }\nfn go() { let _b = Bank::new(); }\n",
        )]);
        assert!(has_edge(&idx, &g, "go", "Bank::new"));
    }

    #[test]
    fn trait_object_call_fans_out_to_all_impls() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "trait Sink { fn push(&mut self); }\n\
             struct A;\nimpl Sink for A { fn push(&mut self) {} }\n\
             struct B;\nimpl Sink for B { fn push(&mut self) {} }\n\
             fn go(s: &mut dyn Sink) { s.push(); }\n",
        )]);
        assert!(has_edge(&idx, &g, "go", "A::push"));
        assert!(has_edge(&idx, &g, "go", "B::push"));
    }

    #[test]
    fn use_rename_resolves_cross_module() {
        let (_, idx, g) = graph(vec![
            (
                "dram-sim",
                "crates/dram-sim/src/util.rs",
                "pub fn boom() {}\n",
            ),
            (
                "dram-sim",
                "crates/dram-sim/src/channel.rs",
                "use crate::util::boom as blast;\nfn go() { blast(); }\n",
            ),
        ]);
        assert!(has_edge(&idx, &g, "go", "boom"));
    }

    #[test]
    fn closure_calls_attributed_to_enclosing_fn() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "fn helper(v: u64) -> u64 { v }\n\
             fn go(xs: &[u64]) -> u64 { xs.iter().map(|x| helper(*x)).sum() }\n",
        )]);
        assert!(has_edge(&idx, &g, "go", "helper"));
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "fn push() {}\nfn go() { println!(\"push()\"); }\n",
        )]);
        assert!(!has_edge(&idx, &g, "go", "push"));
    }

    #[test]
    fn bfs_chain_reconstruction() {
        let (_, idx, g) = graph(vec![(
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "struct Channel;\nimpl Channel { fn tick(&mut self) { mid(); } }\n\
             fn mid() { deep(); }\nfn deep() {}\n",
        )]);
        let tick = idx
            .fns
            .iter()
            .position(|f| f.display() == "Channel::tick")
            .unwrap();
        let deep = idx.fns.iter().position(|f| f.name == "deep").unwrap();
        let parents = g.reach_with_parents(&[tick]);
        assert!(parents.contains_key(&deep));
        let chain: Vec<String> = CallGraph::chain_to(&parents, deep)
            .into_iter()
            .map(|i| idx.fns[i].display())
            .collect();
        assert_eq!(chain, ["Channel::tick", "mid", "deep"]);
    }
}
