//! CLI driver: `cargo run -p sim-lint -- --workspace [--json] [--sarif
//! PATH] [--root PATH]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 internal error (usage, I/O,
//! or an unreadable/empty workspace). CI keys on the distinction: 1 means
//! the code is wrong, 2 means the lint run itself is broken.
//! `--offline` is accepted (and ignored) so CI can pass the same flag set
//! to cargo and the tool.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut sarif: Option<PathBuf> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--offline" => {} // parity with cargo's flag set; no network use anyway
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sim-lint: --root requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--sarif" => match args.next() {
                Some(p) => sarif = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sim-lint: --sarif requires an output path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sim-lint: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }

    if !workspace {
        print_usage();
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "sim-lint: cannot locate the workspace root (no Cargo.toml with a crates/ \
                 directory above the current directory); pass --root PATH"
            );
            return ExitCode::from(2);
        }
    };

    match sim_lint::lint_workspace(&root) {
        Ok(diags) => {
            if let Some(path) = &sarif {
                let log = sim_lint::sarif::to_sarif(&diags);
                if let Err(e) = std::fs::write(path, log) {
                    eprintln!("sim-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if json {
                println!("{}", sim_lint::to_json_report(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    eprintln!("sim-lint: workspace clean");
                } else {
                    eprintln!("sim-lint: {} violation(s)", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("sim-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first directory holding both
/// a `Cargo.toml` and a `crates/` directory.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: sim-lint --workspace [--json] [--sarif PATH] [--offline] [--root PATH]\n\
         \n\
         Statically enforces the simulator's correctness contracts:\n\
         no-panic-hot-path, panic-reachability, checker-parity,\n\
         metric-registry, forbid-wallclock-and-unsafe, discarded-result,\n\
         cycle-arith, dead-pragma. See docs/lints.md for the catalog.\n\
         Exit 0 = clean, 1 = violations, 2 = internal error."
    );
}
