//! A hand-rolled Rust lexer, sufficient for lint-level analysis.
//!
//! The lexer's one job is to never mistake text for code: `panic!` inside a
//! string, a `//` comment, a doc comment, a char literal or a nested block
//! comment must not produce an `Ident` token. It does not parse expressions
//! and it does not need to — every lint pass works on the token stream.
//!
//! Comments are lexed into a separate list (they carry suppression pragmas);
//! string and char literals become single tokens whose text is the literal's
//! *content*, so passes can match metric-name literals without re-scanning.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, `r#type`).
    Ident,
    /// A single punctuation character (`.`, `!`, `(`, …).
    Punct(char),
    /// String literal (plain, raw, byte or byte-raw); text is the content.
    Str,
    /// Char or byte-char literal; text is the content.
    Char,
    /// Lifetime or loop label (`'a`, `'static`); text excludes the quote.
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (content only, for literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment (line, doc or block) with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Token stream plus the comments that were skipped over.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply run to end of input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let len = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < len {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < len && b[i + 1] == b'/' => {
                let start = i;
                while i < len && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < len && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < len && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < len && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < len && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'r' | b'b' => {
                // Raw strings (r"", r#""#), byte strings (b"", br#""#),
                // byte chars (b'x'), raw identifiers (r#type) — or a plain
                // identifier starting with r/b.
                if let Some(ni) = lex_r_or_b(src, b, i, &mut line, &mut out) {
                    i = ni;
                } else {
                    i = lex_ident(src, b, i, line, &mut out);
                }
            }
            b'"' => i = lex_string(src, b, i, &mut line, &mut out),
            b'\'' => i = lex_quote(src, b, i, line, &mut out),
            _ if is_ident_start(c) => i = lex_ident(src, b, i, line, &mut out),
            _ if c.is_ascii_digit() => i = lex_number(src, b, i, line, &mut out),
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn lex_ident(src: &str, b: &[u8], start: usize, line: u32, out: &mut Lexed) -> usize {
    let mut i = start;
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    out.tokens.push(Token {
        kind: TokKind::Ident,
        text: src[start..i].to_string(),
        line,
    });
    i
}

fn lex_number(src: &str, b: &[u8], start: usize, line: u32, out: &mut Lexed) -> usize {
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    // A fractional part, but not a `..` range operator.
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Num,
        text: src[start..i].to_string(),
        line,
    });
    i
}

/// Handles the `r`/`b` prefixed literal forms. Returns the new position if a
/// literal (or raw identifier) was consumed, `None` if this is a plain
/// identifier the caller should lex.
fn lex_r_or_b(src: &str, b: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> Option<usize> {
    let len = b.len();
    let mut i = start;
    let is_b = b[i] == b'b';
    i += 1;
    if is_b {
        if i < len && b[i] == b'\'' {
            // Byte char literal b'x'.
            return Some(lex_quote(src, b, i, *line, out));
        }
        if i < len && b[i] == b'r' {
            i += 1; // br"..." / br#"..."#
        } else if i < len && b[i] == b'"' {
            return Some(lex_string(src, b, i, line, out));
        } else {
            return None; // identifier starting with `b`
        }
    }
    // Here: after `r` (or `br`). Count hashes.
    let mut hashes = 0usize;
    while i < len && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < len && b[i] == b'"' {
        // Raw string: content runs to `"` followed by `hashes` hashes.
        let content_start = i + 1;
        let start_line = *line;
        let mut j = content_start;
        while j < len {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if b[j] == b'"' {
                let mut k = 0usize;
                while k < hashes && j + 1 + k < len && b[j + 1 + k] == b'#' {
                    k += 1;
                }
                if k == hashes {
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: src[content_start..j].to_string(),
                        line: start_line,
                    });
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
        // Unterminated raw string: consume the rest.
        out.tokens.push(Token {
            kind: TokKind::Str,
            text: src[content_start..].to_string(),
            line: start_line,
        });
        return Some(len);
    }
    if !is_b && hashes == 1 && i < len && is_ident_start(b[i]) {
        // Raw identifier r#type.
        let id_start = i;
        let mut j = i;
        while j < len && is_ident_continue(b[j]) {
            j += 1;
        }
        out.tokens.push(Token {
            kind: TokKind::Ident,
            text: src[id_start..j].to_string(),
            line: *line,
        });
        return Some(j);
    }
    None
}

fn lex_string(src: &str, b: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    debug_assert_eq!(b[start], b'"');
    let len = b.len();
    let start_line = *line;
    let content_start = start + 1;
    let mut i = content_start;
    while i < len {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => {
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: src[content_start..i].to_string(),
                    line: start_line,
                });
                return i + 1;
            }
            _ => i += 1,
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Str,
        text: src[content_start..].to_string(),
        line: start_line,
    });
    len
}

/// A `'`: either a lifetime/loop label or a char literal.
fn lex_quote(src: &str, b: &[u8], start: usize, line: u32, out: &mut Lexed) -> usize {
    debug_assert_eq!(b[start], b'\'');
    let len = b.len();
    let mut i = start + 1;
    if i < len && is_ident_start(b[i]) && b[i] != b'\\' {
        // Could be 'a' (char) or 'a / 'static (lifetime): scan the ident
        // run; a closing quote right after makes it a char literal.
        let id_start = i;
        let mut j = i;
        while j < len && is_ident_continue(b[j]) {
            j += 1;
        }
        if j < len && b[j] == b'\'' {
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: src[id_start..j].to_string(),
                line,
            });
            return j + 1;
        }
        out.tokens.push(Token {
            kind: TokKind::Lifetime,
            text: src[id_start..j].to_string(),
            line,
        });
        return j;
    }
    // Char literal with an escape or non-ident content ('\n', '\'', '.').
    let content_start = i;
    if i < len && b[i] == b'\\' {
        i += 2; // skip the escape introducer and its first char
        if i <= len && i >= 2 {
            match b[i - 1] {
                b'x' => i += 2,
                b'u' => {
                    while i < len && b[i] != b'}' {
                        i += 1;
                    }
                    i += 1;
                }
                _ => {}
            }
        }
    } else if i < len {
        // One (possibly multi-byte) character.
        i += 1;
        while i < len && (b[i] & 0xC0) == 0x80 {
            i += 1;
        }
    }
    let content_end = i.min(len);
    if i < len && b[i] == b'\'' {
        i += 1;
    }
    out.tokens.push(Token {
        kind: TokKind::Char,
        text: src[content_start..content_end].to_string(),
        line,
    });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn panic_inside_plain_string_is_not_an_ident() {
        let l = lex(r#"let s = "do not panic! here";"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("panic!")));
    }

    #[test]
    fn panic_inside_raw_string_is_not_an_ident() {
        let src = "let s = r#\"x.unwrap() and panic!(\"boom\") inside\"#; s.len()";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn raw_string_with_hashes_and_inner_quote() {
        let src = "r##\"she said \"#hi\"# loudly\"## ; unwrap";
        let l = lex(src);
        let s: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "she said \"#hi\"# loudly");
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn unwrap_in_line_and_doc_comments_is_not_an_ident() {
        let src =
            "// call .unwrap() here\n/// docs: .unwrap() is fine\n//! also .unwrap()\nlet x = 1;";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(l.comments.len(), 3);
        assert!(l.comments[1].text.starts_with("///"));
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let src = "/* outer /* inner .unwrap() */ still comment panic! */ let real = 2;";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l.tokens.iter().any(|t| t.is_ident("real")));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn block_comment_tracks_lines() {
        let src = "/* a\nb\nc */\nfn f() {}";
        let l = lex(src);
        let f = l.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        // A naive scanner treats '"' as opening a string and swallows code.
        let src = "let q = '\"'; let p = '\\''; x.unwrap()";
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap")));
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { loop { break 'outer; } }";
        let l = lex(src);
        let lt: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lt, ["a", "a", "static", "outer"]);
        assert!(!l.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn single_letter_char_vs_lifetime() {
        let src = "let c = 'a'; fn g<'a>() {}";
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            1
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!\"; let c = b'x'; let r = br#\"unwrap()\"#; keep";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("keep")));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1; r#fn"), ["let", "type", "fn"]);
    }

    #[test]
    fn escaped_quote_in_string() {
        let src = r#"let s = "she \"said\" panic!"; after"#;
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..16 { let x = 1.25 + 1e-9; }";
        let l = lex(src);
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0"));
        assert!(nums.contains(&"16"));
        assert!(nums.contains(&"1.25"));
    }

    #[test]
    fn metric_literal_content_is_preserved() {
        let l = lex(r#"reg.histogram("dram.read_latency")"#);
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "dram.read_latency");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "fn a() {}\n\nfn b() {\n    x.unwrap();\n}\n";
        let l = lex(src);
        let u = l.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(u.line, 4);
    }
}
