//! Diagnostics and their human / JSON renderings.

use std::fmt;

/// One lint finding, pinned to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the lint that produced it (`no-panic-hot-path`, …).
    pub lint: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(lint: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            lint: lint.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}:{}: {}",
            self.lint, self.file, self.line, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (stable field order, no deps).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"lint\":\"{}\",", escape(&d.lint)));
        out.push_str(&format!("\"file\":\"{}\",", escape(&d.file)));
        out.push_str(&format!("\"line\":{},", d.line));
        out.push_str(&format!("\"message\":\"{}\"", escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders diagnostics as a versioned JSON report object:
/// `{"schema_version": N, "diagnostics": [...]}`. Consumers key on
/// `schema_version` to survive future field additions.
pub fn to_json_report(diags: &[Diagnostic]) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"diagnostics\":{}}}",
        to_json(diags)
    )
}

/// Version of the `--json` report schema.
pub const SCHEMA_VERSION: u32 = 1;

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering() {
        let d = Diagnostic::new(
            "no-panic-hot-path",
            "crates/x/src/a.rs",
            7,
            "call to `unwrap`",
        );
        assert_eq!(
            d.to_string(),
            "error[no-panic-hot-path]: crates/x/src/a.rs:7: call to `unwrap`"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic::new("metric-registry", "a.rs", 1, "name \"x\\y\" bad");
        let j = to_json(&[d]);
        assert!(j.contains("\\\"x\\\\y\\\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_is_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn report_carries_schema_version() {
        let r = to_json_report(&[]);
        assert_eq!(r, "{\"schema_version\":1,\"diagnostics\":[]}");
        let d = Diagnostic::new("cycle-arith", "a.rs", 3, "m");
        let r = to_json_report(&[d]);
        assert!(r.starts_with("{\"schema_version\":1,\"diagnostics\":["));
        assert!(r.contains("\"lint\":\"cycle-arith\""));
        assert!(r.ends_with("]}"));
    }
}
