//! End-to-end CLI tests: the exit-code contract (0 clean / 1 violations /
//! 2 internal error) and the report formats CI consumes. These run the
//! real binary against throwaway workspaces so a regression in argument
//! parsing or exit mapping fails here, not in CI.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_sim-lint");

/// A fresh scratch workspace root, deleted when dropped.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!("sim-lint-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch root");
        Scratch { root }
    }

    /// Writes `src` at `rel` under the scratch root, creating parents.
    fn file(&self, rel: &str, src: &str) -> &Scratch {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).expect("create parents");
        fs::write(&path, src).expect("write fixture file");
        self
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn sim-lint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("sim-lint terminated by signal")
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub fn next_ready(now: u64, latency: u64) -> u64 { now.saturating_add(latency) }\n";

const DIRTY_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";

#[test]
fn clean_workspace_exits_zero() {
    let s = Scratch::new("clean");
    s.file("crates/dram-sim/src/lib.rs", CLEAN_LIB);
    let out = run(&["--workspace", "--root", s.path().to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 0, "stderr: {stderr}");
    assert!(stderr.contains("workspace clean"), "stderr: {stderr}");
}

#[test]
fn violations_exit_one_with_diagnostics_on_stdout() {
    let s = Scratch::new("dirty");
    s.file("crates/dram-sim/src/lib.rs", DIRTY_LIB);
    let out = run(&["--workspace", "--root", s.path().to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout: {stdout}");
    assert!(stdout.contains("no-panic-hot-path"), "stdout: {stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("violation(s)"),
        "violation count goes to stderr"
    );
}

#[test]
fn unreadable_workspace_exits_two_not_one() {
    // An empty root has nothing to lint: that is a broken lint run, never a
    // green one, and must be distinguishable from "violations found".
    let s = Scratch::new("empty");
    let out = run(&["--workspace", "--root", s.path().to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(exit_code(&out), 2, "stderr: {stderr}");
    assert!(stderr.contains("no Rust sources"), "stderr: {stderr}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(exit_code(&run(&["--workspace", "--frobnicate"])), 2);
    assert_eq!(
        exit_code(&run(&[])),
        2,
        "missing --workspace is a usage error"
    );
    assert_eq!(exit_code(&run(&["--workspace", "--root"])), 2);
    assert_eq!(exit_code(&run(&["--workspace", "--sarif"])), 2);
}

#[test]
fn json_report_carries_schema_version() {
    let s = Scratch::new("json");
    s.file("crates/dram-sim/src/lib.rs", DIRTY_LIB);
    let out = run(&[
        "--workspace",
        "--json",
        "--root",
        s.path().to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1);
    assert!(stdout.contains("\"schema_version\":1"), "stdout: {stdout}");
    assert!(stdout.contains("\"diagnostics\":["), "stdout: {stdout}");
    assert!(stdout.contains("no-panic-hot-path"), "stdout: {stdout}");
}

#[test]
fn sarif_export_writes_a_2_1_0_log() {
    let s = Scratch::new("sarif");
    s.file("crates/dram-sim/src/lib.rs", DIRTY_LIB);
    let sarif_path = s.path().join("lint.sarif");
    let out = run(&[
        "--workspace",
        "--sarif",
        sarif_path.to_str().unwrap(),
        "--root",
        s.path().to_str().unwrap(),
    ]);
    assert_eq!(
        exit_code(&out),
        1,
        "SARIF export must not mask the exit code"
    );
    let log = fs::read_to_string(&sarif_path).expect("SARIF file written");
    assert!(log.contains("\"version\": \"2.1.0\""), "{log}");
    assert!(log.contains("\"name\": \"sim-lint\""), "{log}");
    assert!(log.contains("no-panic-hot-path"), "{log}");
    assert!(log.contains("crates/dram-sim/src/lib.rs"), "{log}");
}

#[test]
fn unwritable_sarif_path_exits_two() {
    let s = Scratch::new("sarif-bad");
    s.file("crates/dram-sim/src/lib.rs", CLEAN_LIB);
    let bad = s.path().join("no-such-dir/lint.sarif");
    let out = run(&[
        "--workspace",
        "--sarif",
        bad.to_str().unwrap(),
        "--root",
        s.path().to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 2);
}
