//! Call-graph fixtures: the item index and call graph drive the
//! interprocedural passes, so their resolution rules get their own
//! regression gate. Each fixture pins a true-positive edge the graph must
//! find AND a conservative case where it must refuse to guess — a false
//! edge here becomes a false panic-reachability diagnostic downstream.

use sim_lint::callgraph::CallGraph;
use sim_lint::items::ItemIndex;
use sim_lint::source::SourceFile;
use sim_lint::workspace::Workspace;
use sim_lint::Analysis;

fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
    Workspace {
        files: files
            .into_iter()
            .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
            .collect(),
        manifest: None,
        manifest_path: "docs/metrics.md".to_string(),
    }
}

/// `caller` has an edge to `callee` in the graph (names as `FnItem::display`).
fn has_edge(idx: &ItemIndex, g: &CallGraph, caller: &str, callee: &str) -> bool {
    g.sites
        .iter()
        .any(|s| idx.fns[s.caller].display() == caller && idx.fns[s.callee].display() == callee)
}

// ------------------------------------------------------------ trait objects

#[test]
fn trait_object_call_fans_out_to_every_impl() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "pub trait Policy { fn decide(&self) -> bool; }\n\
         pub struct Open;\n\
         impl Policy for Open { fn decide(&self) -> bool { true } }\n\
         pub struct Closed;\n\
         impl Policy for Closed { fn decide(&self) -> bool { false } }\n\
         pub fn drive(p: &dyn Policy) { p.decide(); }\n",
    )]);
    let a = Analysis::new(&w);
    // A `dyn Trait` receiver conservatively reaches every implementor.
    assert!(has_edge(&a.items, &a.calls, "drive", "Open::decide"));
    assert!(has_edge(&a.items, &a.calls, "drive", "Closed::decide"));
}

#[test]
fn typed_receiver_does_not_fan_out_across_impls() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "pub trait Policy { fn decide(&self) -> bool; }\n\
         pub struct Open;\n\
         impl Policy for Open { fn decide(&self) -> bool { true } }\n\
         pub struct Closed;\n\
         impl Policy for Closed { fn decide(&self) -> bool { false } }\n\
         pub fn drive(p: &Open) { p.decide(); }\n",
    )]);
    let a = Analysis::new(&w);
    assert!(has_edge(&a.items, &a.calls, "drive", "Open::decide"));
    assert!(
        !has_edge(&a.items, &a.calls, "drive", "Closed::decide"),
        "a concretely-typed receiver must not produce edges to sibling impls"
    );
}

// ------------------------------------------------- closures inside iterators

#[test]
fn closure_in_iterator_chain_attributes_calls_to_enclosing_fn() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "fn cost(x: u64) -> u64 { x }\n\
         pub fn total(xs: &[u64]) -> u64 {\n\
             xs.iter().map(|&x| cost(x)).sum()\n\
         }\n",
    )]);
    let a = Analysis::new(&w);
    // The call inside `|&x| cost(x)` belongs to `total`, not to a phantom
    // closure item — reachability must flow through iterator plumbing.
    assert!(has_edge(&a.items, &a.calls, "total", "cost"));
}

// ------------------------------------------------------ shadowed method names

#[test]
fn shadowed_method_name_resolves_by_receiver_type() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "pub struct Bank;\n\
         impl Bank { pub fn reset(&mut self) {} }\n\
         pub struct Rank { bank: Bank }\n\
         impl Rank { pub fn reset(&mut self) { self.bank.reset(); } }\n\
         pub fn hard_reset(r: &mut Rank) { r.reset(); }\n",
    )]);
    let a = Analysis::new(&w);
    // `r.reset()` binds to Rank::reset via the parameter's type...
    assert!(has_edge(&a.items, &a.calls, "hard_reset", "Rank::reset"));
    // ...and must not also claim the same-named method on Bank.
    assert!(
        !has_edge(&a.items, &a.calls, "hard_reset", "Bank::reset"),
        "typed receiver must disambiguate shadowed method names"
    );
    // `self.<field>.m()` has an opaque receiver; with two candidates the
    // graph refuses to guess rather than risk a false edge.
    assert!(!has_edge(&a.items, &a.calls, "Rank::reset", "Bank::reset"));
}

#[test]
fn unique_method_name_resolves_through_opaque_receiver() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "pub struct Bank;\n\
         impl Bank { pub fn precharge_all(&mut self) {} }\n\
         pub struct Rank { bank: Bank }\n\
         impl Rank { pub fn idle(&mut self) { self.bank.precharge_all(); } }\n",
    )]);
    let a = Analysis::new(&w);
    // A workspace-unique method name is safe to bind even when the
    // receiver's type is not syntactically known.
    assert!(has_edge(
        &a.items,
        &a.calls,
        "Rank::idle",
        "Bank::precharge_all"
    ));
}

// ------------------------------------------------- cross-module use renames

#[test]
fn use_rename_resolves_to_the_imported_fn() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "mod util {\n    pub fn refresh_all() {}\n}\n\
         mod other {\n    pub fn unrelated() {}\n}\n\
         use util::refresh_all as refresh;\n\
         pub fn maintain() { refresh(); }\n",
    )]);
    let a = Analysis::new(&w);
    assert!(has_edge(&a.items, &a.calls, "maintain", "refresh_all"));
    assert!(!has_edge(&a.items, &a.calls, "maintain", "unrelated"));
}

#[test]
fn ambiguous_free_fn_name_produces_no_edge() {
    // Two same-named free fns in different modules, the caller in a third
    // module with no import naming either: the graph must not guess.
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "mod a {\n    pub fn drain() {}\n}\n\
         mod b {\n    pub fn drain() {}\n}\n\
         mod c {\n    pub fn run() { drain(); }\n}\n",
    )]);
    let a = Analysis::new(&w);
    assert!(!a
        .calls
        .sites
        .iter()
        .any(|s| a.items.fns[s.caller].display() == "run"));
}

// -------------------------------------------------------- BFS chain shapes

#[test]
fn reachability_chain_spans_crates_and_is_shortest() {
    let w = ws(vec![
        (
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "pub struct Channel;\n\
             impl Channel {\n    pub fn tick(&mut self, r: &mut Recorder) { r.record(); }\n}\n",
        ),
        (
            "sim-obs",
            "crates/sim-obs/src/lib.rs",
            "pub struct Recorder;\n\
             impl Recorder {\n    pub fn record(&mut self) { flush(); }\n}\n\
             pub fn flush() { sink(); }\n\
             pub fn sink() {}\n",
        ),
    ]);
    let a = Analysis::new(&w);
    let root = a
        .items
        .fns
        .iter()
        .position(|f| f.display() == "Channel::tick")
        .expect("root indexed");
    let parents = a.calls.reach_with_parents(&[root]);
    let sink = a
        .items
        .fns
        .iter()
        .position(|f| f.display() == "sink")
        .expect("sink indexed");
    let chain: Vec<String> = CallGraph::chain_to(&parents, sink)
        .into_iter()
        .map(|i| a.items.fns[i].display())
        .collect();
    assert_eq!(
        chain,
        vec!["Channel::tick", "Recorder::record", "flush", "sink"],
        "BFS parents must reconstruct the full cross-crate chain"
    );
}

#[test]
fn test_functions_are_not_reachability_roots_or_targets() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "pub fn helper() {}\n\
         #[cfg(test)]\nmod tests {\n\
         #[test]\n    fn exercises() { super::helper(); }\n}\n",
    )]);
    let a = Analysis::new(&w);
    let helper = a
        .items
        .fns
        .iter()
        .position(|f| f.display() == "helper")
        .expect("helper indexed");
    // Any edge landing on helper must come from non-test code only.
    for s in &a.calls.sites {
        if s.callee == helper {
            assert!(
                !a.items.fns[s.caller].is_test,
                "calls from test code must not create production edges"
            );
        }
    }
}
