//! The lint gate as a test: the real workspace must be clean. This is what
//! makes `cargo test` fail on a new violation even when nobody runs the
//! `sim-lint` binary directly.

use std::path::Path;

#[test]
fn real_workspace_has_no_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/sim-lint sits two levels below the workspace root")
        .to_path_buf();
    let diags = sim_lint::lint_workspace(&root).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "sim-lint found {} violation(s) in the workspace:\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
