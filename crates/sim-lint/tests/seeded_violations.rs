//! Per-pass fixtures: each lint must flag a deliberately seeded violation
//! and honour an inline `// sim-lint: allow(...)` pragma on the same site.
//! This is the regression gate for the analyzer itself — if a pass stops
//! firing, these tests fail before the workspace quietly rots.

use sim_lint::source::SourceFile;
use sim_lint::workspace::{Manifest, Workspace};

/// Builds a synthetic workspace from `(crate_name, rel_path, source)`.
fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
    Workspace {
        files: files
            .into_iter()
            .map(|(c, p, s)| SourceFile::parse(c, p, s, false))
            .collect(),
        manifest: None,
        manifest_path: "docs/metrics.md".to_string(),
    }
}

fn lints_named<'a>(diags: &'a [sim_lint::Diagnostic], lint: &str) -> Vec<&'a sim_lint::Diagnostic> {
    diags.iter().filter(|d| d.lint == lint).collect()
}

// ---------------------------------------------------------------- no-panic

#[test]
fn no_panic_flags_seeded_unwrap() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "no-panic-hot-path");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].line, 1);
}

#[test]
fn no_panic_pragma_suppresses_seeded_unwrap() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "// sim-lint: allow(no-panic-hot-path): fixture — provably Some\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(
        lints_named(&diags, "no-panic-hot-path").is_empty(),
        "{diags:?}"
    );
    assert!(lints_named(&diags, "pragma").is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- checker-parity

const SEEDED_TIMING: &str = "pub struct TimingParams {\n    pub tzap: u64,\n}\n";

fn parity_files(timing: &'static str) -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("dram-sim", "crates/dram-sim/src/timing.rs", timing),
        (
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "pub fn fence(t: &TimingParams) -> u64 { t.tzap }\n",
        ),
        (
            "dram-sim",
            "crates/dram-sim/src/checker.rs",
            "pub fn observe() {}\n",
        ),
    ]
}

#[test]
fn parity_flags_scheduler_only_field() {
    let diags = sim_lint::lint_sources(&ws(parity_files(SEEDED_TIMING)));
    let hits = lints_named(&diags, "checker-parity");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(hits[0].message.contains("tzap"), "{}", hits[0].message);
    assert!(
        hits[0]
            .message
            .contains("never verified by the protocol checker"),
        "{}",
        hits[0].message
    );
    assert_eq!(hits[0].file, "crates/dram-sim/src/timing.rs");
}

#[test]
fn parity_pragma_on_field_line_suppresses() {
    let timing = "pub struct TimingParams {\n\
         // sim-lint: allow(checker-parity): fixture — pin-side timing\n\
         pub tzap: u64,\n\
         }\n";
    let diags = sim_lint::lint_sources(&ws(parity_files(timing)));
    assert!(
        lints_named(&diags, "checker-parity").is_empty(),
        "{diags:?}"
    );
}

// ---------------------------------------------------------- metric-registry

#[test]
fn metrics_flags_undeclared_name_and_unused_entry() {
    let mut w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/stats.rs",
        "pub fn publish(reg: &mut R) { reg.counter(\"dram.seeded_metric\"); }\n",
    )]);
    w.manifest = Some(Manifest::parse(
        "| `dram.declared_but_never_emitted` | counter | fixture |\n",
    ));
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "metric-registry");
    assert_eq!(hits.len(), 2, "{diags:?}");
    assert!(hits
        .iter()
        .any(|d| d.message.contains("dram.seeded_metric") && d.file.ends_with("stats.rs")));
    assert!(hits
        .iter()
        .any(|d| d.message.contains("dram.declared_but_never_emitted")
            && d.file == "docs/metrics.md"));
}

#[test]
fn metrics_flags_undocumented_power_metric_both_ways() {
    // A power-telemetry publication site that registers a counter the
    // manifest does not know, next to a manifest that declares a power
    // gauge no code emits — the reconciliation must fire in BOTH
    // directions, and the correctly declared pair stays quiet.
    let mut w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/memory_system.rs",
        "fn publish_power_telemetry(reg: &mut R) {\n\
         reg.counter(\"energy.total_pj\");\n\
         reg.gauge(\"power.total_mw\");\n\
         reg.counter(\"energy.leakage_pj\");\n\
         }\n",
    )]);
    w.manifest = Some(Manifest::parse(
        "| `energy.total_pj` | counter | fixture |\n\
         | `power.total_mw` | gauge | fixture |\n\
         | `power.phantom_rail_mw` | gauge | declared, never emitted |\n",
    ));
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "metric-registry");
    assert_eq!(hits.len(), 2, "{diags:?}");
    assert!(
        hits.iter().any(|d| d.message.contains("energy.leakage_pj")
            && d.message.contains("not declared")
            && d.file.ends_with("memory_system.rs")),
        "{diags:?}"
    );
    assert!(
        hits.iter()
            .any(|d| d.message.contains("power.phantom_rail_mw") && d.file == "docs/metrics.md"),
        "{diags:?}"
    );
}

#[test]
fn metrics_flags_power_metric_kind_mismatch() {
    // Publishing a rail as a counter when the manifest declares a gauge
    // (or vice versa) is a reconciliation error, not a silent pass.
    let mut w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/memory_system.rs",
        "fn publish(reg: &mut R) { reg.counter(\"power.total_mw\"); }\n",
    )]);
    w.manifest = Some(Manifest::parse("| `power.total_mw` | gauge | fixture |\n"));
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "metric-registry");
    assert!(
        hits.iter()
            .any(|d| d.message.contains("power.total_mw")
                && d.message.contains("emitted as a counter")),
        "{diags:?}"
    );
}

#[test]
fn metrics_flags_bad_naming_convention() {
    let mut w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/stats.rs",
        "pub fn publish(reg: &mut R) { reg.counter(\"BadName\"); }\n",
    )]);
    w.manifest = Some(Manifest::default());
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "metric-registry");
    assert!(
        hits.iter()
            .any(|d| d.message.contains("convention") && d.message.contains("BadName")),
        "{diags:?}"
    );
}

#[test]
fn metrics_pragma_suppresses_undeclared_name() {
    let mut w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/stats.rs",
        "pub fn publish(reg: &mut R) {\n\
         // sim-lint: allow(metric-registry): fixture — experimental metric\n\
         reg.counter(\"dram.seeded_metric\");\n\
         }\n",
    )]);
    w.manifest = Some(Manifest::default());
    let diags = sim_lint::lint_sources(&w);
    assert!(
        lints_named(&diags, "metric-registry").is_empty(),
        "{diags:?}"
    );
}

// ---------------------------------------- forbid-wallclock-and-unsafe

#[test]
fn wallclock_flags_instant_and_missing_forbid() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/lib.rs",
        "pub fn now_ms() -> u64 { Instant::now().elapsed().as_millis() as u64 }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "forbid-wallclock-and-unsafe");
    assert!(
        hits.iter().any(|d| d.message.contains("`Instant`")),
        "{diags:?}"
    );
    assert!(
        hits.iter()
            .any(|d| d.message.contains("#![forbid(unsafe_code)]") && d.line == 1),
        "{diags:?}"
    );
}

#[test]
fn wallclock_exempts_bench_crate_but_not_unsafe() {
    let w = ws(vec![(
        "bench",
        "crates/bench/src/timing.rs",
        "pub fn t() { let _ = Instant::now(); unsafe { core::hint::unreachable_unchecked() } }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "forbid-wallclock-and-unsafe");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(hits[0].message.contains("unsafe"), "{}", hits[0].message);
}

#[test]
fn wallclock_pragma_suppresses_seeded_instant() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/clock.rs",
        "// sim-lint: allow(forbid-wallclock-and-unsafe): fixture — host-time probe\n\
         pub fn now() -> Instant { Instant::now() }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(
        lints_named(&diags, "forbid-wallclock-and-unsafe").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn wallclock_exempts_sim_harness_runner_but_not_its_digest_module() {
    // The campaign runner legitimately times wall-clock; the digest module
    // keys journal resume and must stay pure. Same crate, opposite verdicts.
    let w = ws(vec![
        (
            "sim-harness",
            "crates/sim-harness/src/runner.rs",
            "pub fn elapsed() { let _ = Instant::now(); }\n",
        ),
        (
            "sim-harness",
            "crates/sim-harness/src/digest.rs",
            "pub fn stamp() -> u64 { Instant::now().elapsed().as_millis() as u64 }\n",
        ),
    ]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "forbid-wallclock-and-unsafe");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].file, "crates/sim-harness/src/digest.rs");
    assert!(hits[0].message.contains("`Instant`"), "{}", hits[0].message);
}

#[test]
fn no_panic_does_not_apply_to_the_sim_harness_crate() {
    // sim-harness is deliberately outside the hot-crate set: its whole job
    // is to *contain* panics behind catch_unwind, so unwrap/panic in the
    // harness is not a hot-path violation.
    let w = ws(vec![(
        "sim-harness",
        "crates/sim-harness/src/runner.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(
        lints_named(&diags, "no-panic-hot-path").is_empty(),
        "{diags:?}"
    );
}

// ------------------------------------------------------------------ pragma

#[test]
fn pragma_without_reason_is_rejected_and_does_not_suppress() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "// sim-lint: allow(no-panic-hot-path)\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(
        !lints_named(&diags, "pragma").is_empty(),
        "reasonless pragma must be reported: {diags:?}"
    );
    assert!(
        !lints_named(&diags, "no-panic-hot-path").is_empty(),
        "reasonless pragma must not suppress: {diags:?}"
    );
}

// ------------------------------------------------------ panic-reachability

/// A hot-loop entry point in `dram-sim` reaching, two calls deep, a panic
/// in a crate the lexical pass does not police.
fn panic_reach_files(obs_src: &'static str) -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "dram-sim",
            "crates/dram-sim/src/channel.rs",
            "pub struct Channel;\n\
             impl Channel {\n    pub fn tick(&mut self, obs: &mut Recorder) { obs.record(1); }\n}\n",
        ),
        ("sim-obs", "crates/sim-obs/src/lib.rs", obs_src),
    ]
}

#[test]
fn panic_reach_flags_seeded_panic_two_hops_deep() {
    let diags = sim_lint::lint_sources(&ws(panic_reach_files(
        "pub struct Recorder;\n\
         impl Recorder {\n    pub fn record(&mut self, v: u64) { bucket_of(v); }\n}\n\
         fn bucket_of(v: u64) -> usize { v.checked_ilog2().unwrap() as usize }\n",
    )));
    let hits = lints_named(&diags, "panic-reachability");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].file, "crates/sim-obs/src/lib.rs");
    // The chain is at least two calls deep and names the entry point.
    assert!(
        hits[0]
            .message
            .contains("Channel::tick → Recorder::record → bucket_of"),
        "{}",
        hits[0].message
    );
    // The lexical pass stays quiet: sim-obs is not a hot crate.
    assert!(
        lints_named(&diags, "no-panic-hot-path").is_empty(),
        "{diags:?}"
    );
}

#[test]
fn panic_reach_pragma_suppresses_seeded_site() {
    let diags = sim_lint::lint_sources(&ws(panic_reach_files(
        "pub struct Recorder;\n\
         impl Recorder {\n    pub fn record(&mut self, v: u64) { bucket_of(v); }\n}\n\
         fn bucket_of(v: u64) -> usize {\n\
         // sim-lint: allow(panic-reachability): fixture — caller passes v >= 1\n\
         v.checked_ilog2().unwrap() as usize\n\
         }\n",
    )));
    assert!(
        lints_named(&diags, "panic-reachability").is_empty(),
        "{diags:?}"
    );
    assert!(lints_named(&diags, "dead-pragma").is_empty(), "{diags:?}");
}

#[test]
fn panic_reach_honours_no_panic_voucher_in_hot_crate() {
    // In a hot crate, one reasoned allow(no-panic-hot-path) vouches the
    // site for both the lexical and the interprocedural view.
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/channel.rs",
        "pub struct Channel;\n\
         impl Channel {\n    pub fn tick(&mut self) { helper(); }\n}\n\
         fn helper() {\n\
         // sim-lint: allow(no-panic-hot-path): fixture — key inserted above\n\
         m.get(&k).unwrap();\n\
         }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(
        lints_named(&diags, "panic-reachability").is_empty(),
        "{diags:?}"
    );
    assert!(
        lints_named(&diags, "no-panic-hot-path").is_empty(),
        "{diags:?}"
    );
}

// ------------------------------------------------------- discarded-result

const SEEDED_RESULT_API: &str = "pub struct Scheduler;\n\
    impl Scheduler {\n    \
    pub fn issue(&mut self) -> Result<(), u8> { Ok(()) }\n}\n";

#[test]
fn discarded_result_flags_seeded_drops() {
    let src = format!(
        "{SEEDED_RESULT_API}\
         pub fn a(s: &mut Scheduler) {{ let _ = s.issue(); }}\n\
         pub fn b(s: &mut Scheduler) {{ s.issue().ok(); }}\n\
         pub fn c(s: &mut Scheduler) {{ s.issue(); }}\n"
    );
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/sched.rs",
        Box::leak(src.into_boxed_str()),
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "discarded-result");
    assert_eq!(hits.len(), 3, "{diags:?}");
    assert!(hits.iter().all(|d| d.message.contains("Scheduler::issue")));
}

#[test]
fn discarded_result_pragma_and_consumption_pass() {
    let src = format!(
        "{SEEDED_RESULT_API}\
         pub fn a(s: &mut Scheduler) -> Result<(), u8> {{ s.issue()?; Ok(()) }}\n\
         pub fn b(s: &mut Scheduler) {{\n\
         // sim-lint: allow(discarded-result): fixture — best-effort drain\n\
         let _ = s.issue();\n\
         }}\n"
    );
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/sched.rs",
        Box::leak(src.into_boxed_str()),
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(
        lints_named(&diags, "discarded-result").is_empty(),
        "{diags:?}"
    );
    assert!(lints_named(&diags, "dead-pragma").is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- cycle-arith

#[test]
fn cycle_arith_flags_seeded_unchecked_add() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "pub fn next(cycle: u64, latency: u64) -> u64 { cycle + latency }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "cycle-arith");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].line, 1);
}

#[test]
fn cycle_arith_pragma_and_saturating_pass() {
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "pub fn next(cycle: u64, latency: u64) -> u64 { cycle.saturating_add(latency) }\n\
         pub fn trace(epoch: u64) -> u64 {\n\
         // sim-lint: allow(cycle-arith): fixture — epoch < 2^32 by config validation\n\
         epoch * 2\n\
         }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(lints_named(&diags, "cycle-arith").is_empty(), "{diags:?}");
    assert!(lints_named(&diags, "dead-pragma").is_empty(), "{diags:?}");
}

// ----------------------------------------------------------- dead-pragma

#[test]
fn dead_pragma_flags_stale_suppression() {
    // The pragma names a real lint but the line below is clean.
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "// sim-lint: allow(no-panic-hot-path): stale — the unwrap was removed\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "dead-pragma");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].line, 1);
    assert!(hits[0].message.contains("no-panic-hot-path"));
}

#[test]
fn dead_pragma_shield_is_honoured_and_rots_alone() {
    // allow(dead-pragma) on the same pragma shields a transitional state.
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "// sim-lint: allow(no-panic-hot-path, dead-pragma): fixture — unwrap exists only under a feature flag\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    assert!(lints_named(&diags, "dead-pragma").is_empty(), "{diags:?}");
    // A shield with nothing to shield is itself dead.
    let w = ws(vec![(
        "dram-sim",
        "crates/dram-sim/src/seeded.rs",
        "// sim-lint: allow(dead-pragma): fixture — shields nothing\n\
         pub fn f() {}\n",
    )]);
    let diags = sim_lint::lint_sources(&w);
    let hits = lints_named(&diags, "dead-pragma");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(hits[0].message.contains("shields no dead pragma"));
}
