//! End-to-end campaign demo: a 26-run matrix with one panicking and one
//! hanging fixture, journaled resume, and corrupt-tail tolerance.

use std::path::PathBuf;

use sim_harness::{load_journal, run_campaign, Campaign, CampaignOptions, RunStatus};

const DEMO_MATRIX: &str = r#"
    [campaign]
    schemes = ["baseline", "pra"]
    workloads = ["GUPS", "lbm", "libquantum"]
    seeds = [1, 2, 3, 4]
    instructions = 300
    warmup = 1000
    determinism_sample = 8
    include_panic_fixture = true
    include_hang_fixture = true
"#;

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sim_harness_campaign_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn demo_campaign_survives_fixtures_and_resumes_idempotently() {
    let campaign = Campaign::from_toml_str(DEMO_MATRIX).unwrap();
    let journal = temp_journal("demo.jsonl");
    let options = CampaignOptions {
        jobs: 0,
        journal: journal.clone(),
        resume: false,
    };

    // 2 schemes x 3 workloads x 4 seeds + panic fixture + hang fixture.
    let summary = run_campaign(&campaign, &options).unwrap();
    assert_eq!(summary.total, 26);
    assert_eq!(summary.ok, 24);
    assert_eq!(
        summary.failed, 1,
        "the panic fixture must journal as failed"
    );
    assert_eq!(summary.hung, 1, "the hang fixture must journal as hung");
    assert_eq!(summary.skipped, 0);
    assert!(summary.determinism_checked >= 2);
    assert_eq!(summary.determinism_mismatches, 0);
    assert!(summary.has_failures());

    // Both failures carry a repro line; the hung one names its victim.
    assert_eq!(summary.failures.len(), 2);
    let hung = summary
        .failures
        .iter()
        .find(|f| f.status == RunStatus::Hung)
        .unwrap();
    assert!(
        hung.detail.contains("liveness violation"),
        "{}",
        hung.detail
    );
    assert!(hung.detail.contains("oldest pending"), "{}", hung.detail);
    assert!(
        hung.repro.contains("--watchdog-no-retire 20"),
        "{}",
        hung.repro
    );
    let failed = summary
        .failures
        .iter()
        .find(|f| f.status == RunStatus::Failed)
        .unwrap();
    assert!(
        failed.detail.contains("synthetic panic fixture"),
        "{}",
        failed.detail
    );

    // Metrics mirror the counters.
    assert_eq!(summary.metrics.counter_value("campaign.runs_ok"), Some(24));
    assert_eq!(
        summary.metrics.counter_value("campaign.runs_failed"),
        Some(1)
    );
    assert_eq!(summary.metrics.counter_value("campaign.runs_hung"), Some(1));
    assert_eq!(
        summary.metrics.counter_value("campaign.runs_skipped"),
        Some(0)
    );
    let hist = summary
        .metrics
        .histogram_value("campaign.run_cycles")
        .unwrap();
    assert_eq!(hist.count(), 24);

    // Every run — including both failures — is journaled exactly once.
    let loaded = load_journal(&journal).unwrap();
    assert_eq!(loaded.records.len(), 26);
    assert_eq!(loaded.dropped_lines, 0);
    assert_eq!(loaded.completed_keys().len(), 26);
    let render = summary.render();
    assert!(render.contains("26 runs"), "{render}");
    assert!(render.contains("repro:"), "{render}");

    // Resume skips everything (failed runs are not silently retried) and
    // leaves the journal byte-identical: resuming twice is idempotent.
    let before = std::fs::metadata(&journal).unwrap().len();
    let resume_options = CampaignOptions {
        jobs: 2,
        journal: journal.clone(),
        resume: true,
    };
    let resumed = run_campaign(&campaign, &resume_options).unwrap();
    assert_eq!(resumed.skipped, 26);
    assert_eq!(resumed.ok + resumed.failed + resumed.hung, 0);
    assert_eq!(
        resumed.metrics.counter_value("campaign.runs_skipped"),
        Some(26)
    );
    let second = run_campaign(&campaign, &resume_options).unwrap();
    assert_eq!(second.skipped, 26);
    assert_eq!(std::fs::metadata(&journal).unwrap().len(), before);

    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn resume_reexecutes_only_the_truncated_tail() {
    let matrix = r#"
        schemes = ["baseline"]
        workloads = ["GUPS"]
        seeds = [1, 2, 3]
        instructions = 300
        warmup = 1000
    "#;
    let campaign = Campaign::from_toml_str(matrix).unwrap();
    let journal = temp_journal("truncated.jsonl");
    let options = CampaignOptions {
        jobs: 1,
        journal: journal.clone(),
        resume: false,
    };
    let first = run_campaign(&campaign, &options).unwrap();
    assert_eq!(first.ok, 3);

    // Chop the final line in half — the kill-mid-write artifact.
    let text = std::fs::read_to_string(&journal).unwrap();
    let keep: Vec<&str> = text.lines().collect();
    let truncated = format!(
        "{}\n{}\n{}",
        keep[0],
        keep[1],
        &keep[2][..keep[2].len() / 2]
    );
    std::fs::write(&journal, truncated).unwrap();

    let resume_options = CampaignOptions {
        jobs: 1,
        journal: journal.clone(),
        resume: true,
    };
    let resumed = run_campaign(&campaign, &resume_options).unwrap();
    assert_eq!(resumed.skipped, 2, "intact records must be skipped");
    assert_eq!(resumed.ok, 1, "the truncated run must re-execute");

    // The journal is whole again: 2 intact + 1 garbage tail + 1 re-run.
    let loaded = load_journal(&journal).unwrap();
    assert_eq!(loaded.records.len(), 3);
    assert_eq!(loaded.dropped_lines, 1);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn identical_configs_share_digests_across_seeds_only() {
    let campaign = Campaign::from_toml_str(
        "schemes = [\"baseline\", \"pra\"]\nworkloads = [\"GUPS\"]\nseeds = [1, 2]\n",
    )
    .unwrap();
    let specs = campaign.expand();
    let digests: Vec<u64> = specs.iter().map(sim_harness::config_digest).collect();
    // Same scheme, different seed: same digest. Different scheme: different.
    assert_eq!(digests[0], digests[1]);
    assert_ne!(digests[0], digests[2]);
}
