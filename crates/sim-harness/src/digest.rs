//! Deterministic configuration digests.
//!
//! The journal keys resumability on `(config_digest, seed)`: the digest
//! covers every field of a [`RunSpec`] *except* the seed, so one matrix row
//! shares a digest across its seed axis and a resumed campaign can tell
//! exactly which (row, seed) pairs already ran. Everything here must stay a
//! pure function of the spec — this module is held to the strict
//! `forbid-wallclock` lint even though the rest of the crate (timing the
//! campaign) is exempt.

use crate::matrix::{policy_cli_name, scheme_cli_name, Fixture, RunSpec};

/// 64-bit FNV-1a over a byte string — the same digest primitive
/// [`pra_core::Report::state_digest`] uses, kept dependency-free.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a run's configuration, excluding its seed. Two specs collide
/// exactly when they would simulate the same system on the same workload —
/// the identity the journal's resume logic needs.
///
/// Checkpoint knobs (`checkpoint_every`, `checkpoint_dir`) are deliberately
/// excluded: checkpointing is observational — a checkpointed or restored
/// run finishes with the same state digest as an uninterrupted one — so
/// changing the cadence between `campaign run` and `campaign resume` must
/// not force completed runs to re-execute.
pub fn config_digest(spec: &RunSpec) -> u64 {
    let fixture = match spec.fixture {
        Fixture::None => "none",
        Fixture::Panic => "panic",
        Fixture::Hang => "hang",
    };
    let canonical = format!(
        "scheme={};workload={};policy={};cores={};instructions={};warmup={};\
         no_retire={};queue_age={};faults={};recovery={};fixture={}",
        scheme_cli_name(spec.scheme),
        spec.workload,
        policy_cli_name(spec.policy),
        spec.cores,
        spec.instructions,
        spec.warmup,
        spec.watchdog_no_retire,
        spec.watchdog_queue_age,
        spec.fault_plan.as_deref().unwrap_or("-"),
        spec.recovery,
        fixture,
    );
    fnv1a_64(canonical.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_core::Scheme;

    fn spec() -> RunSpec {
        RunSpec {
            scheme: Scheme::Pra,
            workload: "GUPS".to_string(),
            policy: dram_sim::PagePolicy::RelaxedClosePage,
            cores: 1,
            instructions: 5_000,
            warmup: 10_000,
            seed: 1,
            watchdog_no_retire: 1_000_000,
            watchdog_queue_age: 0,
            fault_plan: None,
            recovery: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            fixture: Fixture::None,
        }
    }

    #[test]
    fn digest_ignores_seed_but_not_config() {
        let base = spec();
        let mut reseeded = spec();
        reseeded.seed = 99;
        assert_eq!(config_digest(&base), config_digest(&reseeded));
        let mut other_scheme = spec();
        other_scheme.scheme = Scheme::Baseline;
        assert_ne!(config_digest(&base), config_digest(&other_scheme));
        let mut other_fixture = spec();
        other_fixture.fixture = Fixture::Panic;
        assert_ne!(config_digest(&base), config_digest(&other_fixture));
        let mut recovered = spec();
        recovered.recovery = true;
        assert_ne!(config_digest(&base), config_digest(&recovered));
    }

    #[test]
    fn digest_ignores_checkpoint_knobs() {
        // Checkpointing never changes what a run computes (the restore
        // contract guarantees digest identity), so resuming a campaign with
        // a different cadence must still skip its completed runs.
        let base = spec();
        let mut checkpointed = spec();
        checkpointed.checkpoint_every = 5_000;
        checkpointed.checkpoint_dir = Some("/tmp/snaps".to_string());
        assert_eq!(config_digest(&base), config_digest(&checkpointed));
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
