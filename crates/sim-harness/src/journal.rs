//! The append-only campaign journal.
//!
//! One JSON line per completed run, flushed as each run finishes, so a
//! killed campaign loses at most the in-flight runs. Loading is tolerant:
//! a malformed or truncated trailing line (the artifact of killing the
//! process mid-write) is dropped and counted, never fatal — the affected
//! run simply re-executes on resume.

use std::collections::HashSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// How a journaled run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The simulation completed and produced a report.
    Ok,
    /// The simulation completed, but only because the recovery pipeline
    /// engaged: at least one parity alert fired and was replayed or
    /// degraded. Counts as success for [`crate::CampaignSummary`]
    /// purposes, but is reported separately so fault campaigns can assert
    /// the pipeline actually ran.
    Recovered,
    /// The run panicked or returned a non-liveness error.
    Failed,
    /// A liveness watchdog (or the protocol checker) tripped mid-run.
    Hung,
}

impl RunStatus {
    /// The journal's string encoding of this status.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Recovered => "recovered",
            RunStatus::Failed => "failed",
            RunStatus::Hung => "hung",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "recovered" => Some(RunStatus::Recovered),
            "failed" => Some(RunStatus::Failed),
            "hung" => Some(RunStatus::Hung),
            _ => None,
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journaled run: identity, outcome and enough context to reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// [`crate::config_digest`] of the run's spec (seed excluded).
    pub config_digest: u64,
    /// Workload RNG seed of the run.
    pub seed: u64,
    /// How the run ended.
    pub status: RunStatus,
    /// Scheme name, for human-readable reports.
    pub scheme: String,
    /// Workload name, for human-readable reports.
    pub workload: String,
    /// CPU cycles the run simulated (0 for failed/hung runs).
    pub cycles: u64,
    /// Host wall-clock nanoseconds the run took to execute (build + run,
    /// measured around the panic-isolation boundary). 0 when the record
    /// predates this field — old journals parse fine.
    pub host_nanos: u64,
    /// Total DRAM energy of a successful run in whole picojoules
    /// (`Report::energy.total().round()`). 0 for failed/hung runs and for
    /// records that predate power telemetry.
    pub energy_pj: u64,
    /// Average DRAM power of a successful run in whole milliwatts
    /// (`Report::power.total().round()`). 0 for failed/hung runs and old
    /// records.
    pub avg_power_mw: u64,
    /// Memory cycle this run was restored from before executing (0 when it
    /// ran from cycle 0). Non-zero means the harness found a valid
    /// checkpoint from an earlier killed or failed attempt and resumed the
    /// simulation mid-flight instead of repeating the prefix.
    pub resumed_from_cycle: u64,
    /// [`pra_core::Report::state_digest`] of a successful run.
    pub state_digest: Option<u64>,
    /// Failure detail: panic payload or error message (empty when ok).
    pub detail: String,
    /// Copy-pasteable reproduction command.
    pub repro: String,
}

impl JournalRecord {
    /// Serialises the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"config\":\"{:016x}\",\"seed\":{},\"status\":\"{}\",\"scheme\":\"{}\",\
             \"workload\":\"{}\",\"cycles\":{},\"host_nanos\":{},\
             \"energy_pj\":{},\"avg_power_mw\":{},\"resumed_from_cycle\":{}",
            self.config_digest,
            self.seed,
            self.status,
            escape(&self.scheme),
            escape(&self.workload),
            self.cycles,
            self.host_nanos,
            self.energy_pj,
            self.avg_power_mw,
            self.resumed_from_cycle,
        );
        if let Some(digest) = self.state_digest {
            line.push_str(&format!(",\"state_digest\":\"{digest:016x}\""));
        }
        line.push_str(&format!(
            ",\"detail\":\"{}\",\"repro\":\"{}\"}}",
            escape(&self.detail),
            escape(&self.repro)
        ));
        line
    }

    /// Parses one journal line; `None` for malformed or truncated input.
    pub fn parse(line: &str) -> Option<Self> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(JournalRecord {
            config_digest: u64::from_str_radix(&json_str(line, "config")?, 16).ok()?,
            seed: json_u64(line, "seed")?,
            status: RunStatus::from_str(&json_str(line, "status")?)?,
            scheme: json_str(line, "scheme")?,
            workload: json_str(line, "workload")?,
            cycles: json_u64(line, "cycles")?,
            // Absent in journals written before host timing existed.
            host_nanos: json_u64(line, "host_nanos").unwrap_or(0),
            // Absent in journals written before power telemetry existed.
            energy_pj: json_u64(line, "energy_pj").unwrap_or(0),
            avg_power_mw: json_u64(line, "avg_power_mw").unwrap_or(0),
            // Absent in journals written before checkpoint recovery existed.
            resumed_from_cycle: json_u64(line, "resumed_from_cycle").unwrap_or(0),
            state_digest: match json_str(line, "state_digest") {
                Some(s) => Some(u64::from_str_radix(&s, 16).ok()?),
                None => None,
            },
            detail: json_str(line, "detail")?,
            repro: json_str(line, "repro")?,
        })
    }

    /// The resume key: a run is "already done" when its (config, seed)
    /// pair appears in the journal, whatever its status — failed runs are
    /// not silently retried.
    pub fn key(&self) -> (u64, u64) {
        (self.config_digest, self.seed)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Extracts the raw (still-escaped) value of a `"key":"value"` pair.
fn json_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    // Scan for the closing quote, honouring backslash escapes.
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(unescape(&rest[..end?]))
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A journal read back from disk.
#[derive(Debug, Clone, Default)]
pub struct LoadedJournal {
    /// Every well-formed record, in file order.
    pub records: Vec<JournalRecord>,
    /// Lines that failed to parse (typically a truncated tail after a
    /// mid-write kill) — dropped, their runs will re-execute on resume.
    pub dropped_lines: usize,
}

impl LoadedJournal {
    /// The set of (config-digest, seed) pairs already journaled.
    pub fn completed_keys(&self) -> HashSet<(u64, u64)> {
        self.records.iter().map(JournalRecord::key).collect()
    }
}

/// Reads a journal, tolerating malformed lines.
///
/// # Errors
///
/// Only on I/O failure; parse failures are counted in
/// [`LoadedJournal::dropped_lines`] instead.
pub fn load_journal(path: &Path) -> io::Result<LoadedJournal> {
    let text = std::fs::read_to_string(path)?;
    let mut loaded = LoadedJournal::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalRecord::parse(line) {
            Some(record) => loaded.records.push(record),
            None => loaded.dropped_lines += 1,
        }
    }
    Ok(loaded)
}

/// An append-only journal writer: one flushed JSON line per record.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it (and nothing else) when
    /// missing. If the existing file ends mid-line (a kill landed inside a
    /// write), a newline is emitted first so the stranded fragment cannot
    /// merge with — and masquerade as — the next record.
    ///
    /// # Errors
    ///
    /// Any underlying [`io::Error`].
    pub fn open_append(path: &Path) -> io::Result<Self> {
        use std::io::{Read, Seek, SeekFrom};
        let needs_newline = match File::open(path) {
            Ok(mut file) => {
                if file.metadata()?.len() == 0 {
                    false
                } else {
                    file.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    file.read_exact(&mut last)?;
                    last[0] != b'\n'
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut out = BufWriter::new(file);
        if needs_newline {
            out.write_all(b"\n")?;
            out.flush()?;
        }
        Ok(JournalWriter { out })
    }

    /// Appends one record and flushes, so a kill right after loses
    /// nothing.
    ///
    /// # Errors
    ///
    /// Any underlying [`io::Error`].
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        writeln!(self.out, "{}", record.to_json_line())?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64, status: RunStatus) -> JournalRecord {
        JournalRecord {
            config_digest: 0xdead_beef_0123_4567,
            seed,
            status,
            scheme: "PRA".to_string(),
            workload: "GUPS".to_string(),
            cycles: if status == RunStatus::Ok { 12_345 } else { 0 },
            host_nanos: 987_654_321,
            energy_pj: if status == RunStatus::Ok {
                55_123_456
            } else {
                0
            },
            avg_power_mw: if status == RunStatus::Ok { 1_234 } else { 0 },
            resumed_from_cycle: if status == RunStatus::Ok { 48_000 } else { 0 },
            state_digest: (status == RunStatus::Ok).then_some(0xabcd),
            detail: if status == RunStatus::Ok {
                String::new()
            } else {
                "panicked: \"quoted\"\nsecond line".to_string()
            },
            repro: "pra run --scheme pra --workload GUPS --seed 1".to_string(),
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        for status in [
            RunStatus::Ok,
            RunStatus::Recovered,
            RunStatus::Failed,
            RunStatus::Hung,
        ] {
            let r = record(7, status);
            let parsed = JournalRecord::parse(&r.to_json_line()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn journals_without_host_nanos_still_parse() {
        // A line as written before the host_nanos field existed.
        let old = "{\"config\":\"00000000deadbeef\",\"seed\":3,\"status\":\"ok\",\
                   \"scheme\":\"PRA\",\"workload\":\"GUPS\",\"cycles\":42,\
                   \"state_digest\":\"000000000000abcd\",\"detail\":\"\",\"repro\":\"pra run\"}";
        let parsed = JournalRecord::parse(old).unwrap();
        assert_eq!(parsed.host_nanos, 0);
        assert_eq!(parsed.cycles, 42);
    }

    #[test]
    fn power_fields_default_to_zero_on_old_journals() {
        // A line as written before the energy/power fields existed.
        let old = "{\"config\":\"00000000deadbeef\",\"seed\":4,\"status\":\"ok\",\
                   \"scheme\":\"PRA\",\"workload\":\"GUPS\",\"cycles\":42,\"host_nanos\":7,\
                   \"state_digest\":\"000000000000abcd\",\"detail\":\"\",\"repro\":\"pra run\"}";
        let parsed = JournalRecord::parse(old).unwrap();
        assert_eq!(parsed.energy_pj, 0);
        assert_eq!(parsed.avg_power_mw, 0);
        // And the new encoding round-trips them.
        let r = record(5, RunStatus::Ok);
        let parsed = JournalRecord::parse(&r.to_json_line()).unwrap();
        assert_eq!(parsed.energy_pj, 55_123_456);
        assert_eq!(parsed.avg_power_mw, 1_234);
    }

    #[test]
    fn truncated_and_garbage_lines_are_dropped_not_fatal() {
        let dir = std::env::temp_dir().join("sim_harness_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.jsonl");
        let good = record(1, RunStatus::Ok).to_json_line();
        let half = &good[..good.len() / 2];
        std::fs::write(&path, format!("{good}\nnot json\n{half}")).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.dropped_lines, 2);
        assert!(loaded
            .completed_keys()
            .contains(&(0xdead_beef_0123_4567, 1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resumed_from_cycle_roundtrips_and_defaults_to_zero() {
        let r = record(6, RunStatus::Ok);
        let parsed = JournalRecord::parse(&r.to_json_line()).unwrap();
        assert_eq!(parsed.resumed_from_cycle, 48_000);
        // A journal written before checkpoint recovery existed.
        let old = "{\"config\":\"00000000deadbeef\",\"seed\":4,\"status\":\"ok\",\
                   \"scheme\":\"PRA\",\"workload\":\"GUPS\",\"cycles\":42,\
                   \"detail\":\"\",\"repro\":\"pra run\"}";
        assert_eq!(JournalRecord::parse(old).unwrap().resumed_from_cycle, 0);
    }

    /// A tiny deterministic xorshift generator — no external fuzzing crate,
    /// no wall-clock seed, fully reproducible.
    struct Xorshift(u64);

    impl Xorshift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn fuzzed_mutations_never_panic_and_never_misparse() {
        let good = record(1, RunStatus::Ok).to_json_line();
        let bytes = good.as_bytes();
        let mut rng = Xorshift(0x5eed_cafe_f00d_1234);
        for _ in 0..2_000 {
            let mut mutated = bytes.to_vec();
            match rng.next() % 4 {
                // Truncate at a random point (the kill-mid-write artifact).
                0 => mutated.truncate((rng.next() as usize) % (bytes.len() + 1)),
                // Flip a random byte.
                1 => {
                    let i = (rng.next() as usize) % mutated.len();
                    mutated[i] ^= (rng.next() % 255) as u8 + 1;
                }
                // Insert a random byte.
                2 => {
                    let i = (rng.next() as usize) % (mutated.len() + 1);
                    mutated.insert(i, (rng.next() % 256) as u8);
                }
                // Splice two halves of different records together.
                _ => {
                    let other = record(2, RunStatus::Failed).to_json_line();
                    let cut = (rng.next() as usize) % mutated.len();
                    let other_cut = (rng.next() as usize) % other.len();
                    mutated.truncate(cut);
                    mutated.extend_from_slice(&other.as_bytes()[other_cut..]);
                }
            }
            let line = String::from_utf8_lossy(&mutated);
            // Must never panic; when it does parse, the numeric fields must
            // have come from real `"key":value` pairs, not from garbage.
            if let Some(r) = JournalRecord::parse(&line) {
                assert!(!r.scheme.is_empty() || line.contains("\"scheme\":\"\""));
            }
        }
    }

    #[test]
    fn adversarial_lines_are_rejected_not_trusted() {
        // Keys smuggled inside string values stay escaped and must not be
        // picked up by the scanner.
        let smuggled = "{\"detail\":\"\\\"config\\\":\\\"0123456789abcdef\\\",\
                        \\\"seed\\\":9,\\\"status\\\":\\\"ok\\\"\",\"repro\":\"x\"}";
        assert!(JournalRecord::parse(smuggled).is_none());
        // Negative, overflowing and non-numeric numbers all reject the line.
        for bad in [
            "\"seed\":-5",
            "\"seed\":99999999999999999999999999",
            "\"seed\":\"7\"",
        ] {
            let line = record(1, RunStatus::Ok)
                .to_json_line()
                .replace("\"seed\":1", bad);
            assert!(JournalRecord::parse(&line).is_none(), "must reject {bad:?}");
        }
        // An unknown status string is rejected, not defaulted.
        let line = record(1, RunStatus::Ok)
            .to_json_line()
            .replace("\"status\":\"ok\"", "\"status\":\"exploded\"");
        assert!(JournalRecord::parse(&line).is_none());
        // Unterminated strings and non-object lines are rejected.
        assert!(JournalRecord::parse("{\"config\":\"00ff").is_none());
        assert!(JournalRecord::parse("[1,2,3]").is_none());
        assert!(JournalRecord::parse("").is_none());
        // NUL bytes and control characters don't panic the unescaper.
        assert!(JournalRecord::parse("{\"config\":\"\u{0}\u{1}\"}").is_none());
    }

    #[test]
    fn journal_full_of_garbage_loads_with_every_line_counted() {
        let dir = std::env::temp_dir().join("sim_harness_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        let good = record(3, RunStatus::Ok).to_json_line();
        let mut text = String::new();
        for i in 0..50 {
            text.push_str(&format!("garbage line {i} \u{fffd}\t{{{{\n"));
        }
        text.push_str(&good);
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.dropped_lines, 50);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_appends_without_rewriting() {
        let dir = std::env::temp_dir().join("sim_harness_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open_append(&path).unwrap();
            w.append(&record(1, RunStatus::Ok)).unwrap();
        }
        let first_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut w = JournalWriter::open_append(&path).unwrap();
            w.append(&record(2, RunStatus::Hung)).unwrap();
        }
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert!(std::fs::metadata(&path).unwrap().len() > first_len);
        assert_eq!(loaded.records[0].seed, 1, "append must not rewrite");
        std::fs::remove_file(&path).unwrap();
    }
}
