//! The panic-isolated parallel campaign executor.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use pra_core::{Report, SimBuilder, SimError, SnapOutcome};
use sim_obs::MetricsRegistry;

use crate::digest::config_digest;
use crate::journal::{load_journal, JournalRecord, JournalWriter, LoadedJournal, RunStatus};
use crate::matrix::{Campaign, Fixture, RunSpec};

/// Error starting or finishing a campaign (the individual runs inside it
/// never error the campaign — they journal as failed/hung instead).
#[derive(Debug)]
pub struct HarnessError(String);

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign: {}", self.0)
    }
}

impl std::error::Error for HarnessError {}

fn harness_err(msg: impl Into<String>) -> HarnessError {
    HarnessError(msg.into())
}

/// How to execute a campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads; 0 means one per available CPU.
    pub jobs: usize,
    /// Journal path (created when missing unless `resume` is set).
    pub journal: PathBuf,
    /// Resume mode: the journal must already exist, and journaled
    /// (config, seed) pairs are skipped. A plain run against an existing
    /// journal also skips completed pairs — resume merely refuses to start
    /// from scratch by accident.
    pub resume: bool,
}

/// One failed or hung run, with everything needed to triage it.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Final status ([`RunStatus::Failed`] or [`RunStatus::Hung`]).
    pub status: RunStatus,
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Workload RNG seed.
    pub seed: u64,
    /// Config digest (seed excluded), the journal's resume key.
    pub config_digest: u64,
    /// Panic payload, liveness trail or error message.
    pub detail: String,
    /// Copy-pasteable reproduction command.
    pub repro: String,
}

/// Host timing of one executed run, kept for the "slowest runs" trail.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Workload RNG seed.
    pub seed: u64,
    /// Final status.
    pub status: RunStatus,
    /// Host wall-clock nanoseconds the run took.
    pub host_nanos: u64,
    /// CPU cycles the run simulated (0 for failed/hung runs).
    pub cycles: u64,
}

impl RunTiming {
    /// Simulated CPU cycles per host second (0 when nothing was timed).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            return 0.0;
        }
        self.cycles as f64 * 1e9 / self.host_nanos as f64
    }
}

/// Slowest runs kept in the summary trail.
pub const SLOWEST_KEPT: usize = 5;

/// What a campaign did: counters, failures and the per-run metrics.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Runs in the expanded matrix.
    pub total: usize,
    /// Runs that completed with a report and no recovery activity.
    pub ok: usize,
    /// Runs that completed, but only via the recovery pipeline (at least
    /// one parity alert was replayed or degraded). Success, not failure.
    pub recovered: usize,
    /// Runs that panicked or errored.
    pub failed: usize,
    /// Runs a liveness watchdog (or the protocol checker) stopped.
    pub hung: usize,
    /// Runs skipped because the journal already had their key.
    pub skipped: usize,
    /// Runs executed twice for the determinism spot-check.
    pub determinism_checked: usize,
    /// Spot-checked runs whose two state digests differed.
    pub determinism_mismatches: usize,
    /// Runs that completed after restoring from a mid-run checkpoint (a
    /// previous attempt was killed or failed after making progress).
    pub resumed: usize,
    /// Wall-clock duration of the execution phase, in milliseconds.
    pub elapsed_ms: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Every failed or hung run, in completion order.
    pub failures: Vec<RunFailure>,
    /// The [`SLOWEST_KEPT`] slowest executed runs by host time, slowest
    /// first.
    pub slowest: Vec<RunTiming>,
    /// Campaign counters and the per-run cycle histogram.
    pub metrics: MetricsRegistry,
}

impl CampaignSummary {
    /// `true` when at least one run failed, hung or mismatched — the
    /// condition behind the CLI's campaign-with-failures exit code.
    pub fn has_failures(&self) -> bool {
        self.failed > 0 || self.hung > 0 || self.determinism_mismatches > 0
    }

    /// Renders the human-readable campaign report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "campaign: {} runs ({} ok, {} recovered, {} failed, {} hung, {} skipped) in {} ms on {} worker{}",
            self.total,
            self.ok,
            self.recovered,
            self.failed,
            self.hung,
            self.skipped,
            self.elapsed_ms,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
        );
        if self.determinism_checked > 0 {
            out.push_str(&format!(
                "\ndeterminism: {} spot-checked, {} mismatch{}",
                self.determinism_checked,
                self.determinism_mismatches,
                if self.determinism_mismatches == 1 {
                    ""
                } else {
                    "es"
                },
            ));
        }
        if self.resumed > 0 {
            out.push_str(&format!(
                "\ncheckpoint recovery: {} run{} resumed from a mid-run snapshot",
                self.resumed,
                if self.resumed == 1 { "" } else { "s" },
            ));
        }
        if let Some(skipped_lines) = self.metrics.counter_value("campaign.journal_skipped_lines") {
            if skipped_lines > 0 {
                out.push_str(&format!(
                    "\njournal: {skipped_lines} malformed line{} skipped \
                     (campaign.journal_skipped_lines={skipped_lines})",
                    if skipped_lines == 1 { "" } else { "s" },
                ));
            }
        }
        if let Some(hist) = self.metrics.histogram_value("campaign.run_cycles") {
            if hist.count() > 0 {
                out.push_str(&format!(
                    "\nrun cycles: p50 {} p95 {} max {}",
                    hist.p50(),
                    hist.p95(),
                    hist.max()
                ));
            }
        }
        let executed = self.ok + self.recovered + self.failed + self.hung;
        if let Some(energy_pj) = self.metrics.counter_value("campaign.energy_pj") {
            let completed = self.ok + self.recovered;
            if energy_pj > 0 && completed > 0 {
                out.push_str(&format!(
                    "\ndram energy: {:.3} mJ across {} completed run{}",
                    energy_pj as f64 / 1e9,
                    completed,
                    if completed == 1 { "" } else { "s" },
                ));
            }
        }
        if let Some(host_nanos) = self.metrics.counter_value("campaign.host_nanos") {
            if host_nanos > 0 {
                out.push_str(&format!(
                    "\nhost time: {:.2} s of simulation across {} executed run{}",
                    host_nanos as f64 / 1e9,
                    executed,
                    if executed == 1 { "" } else { "s" },
                ));
            }
        }
        if !self.slowest.is_empty() {
            out.push_str(&format!("\nslowest {} runs:", self.slowest.len()));
            for t in &self.slowest {
                out.push_str(&format!(
                    "\n  {:>9.3} s  [{}] {}/{} seed {} ({:.0} cycles/s)",
                    t.host_nanos as f64 / 1e9,
                    t.status,
                    t.scheme,
                    t.workload,
                    t.seed,
                    t.cycles_per_sec(),
                ));
            }
        }
        for failure in &self.failures {
            out.push_str(&format!(
                "\n[{}] {}/{} seed {} (config {:016x}): {}\n  repro: {}",
                failure.status,
                failure.scheme,
                failure.workload,
                failure.seed,
                failure.config_digest,
                failure.detail,
                failure.repro,
            ));
        }
        out
    }
}

/// Builds the simulator for one spec and runs it (optionally twice, for
/// the determinism spot-check). Runs on a worker thread inside
/// `catch_unwind`; panics (including the synthetic fixture's) unwind to
/// the isolation boundary in [`execute_spec`].
///
/// With checkpointing configured, the run writes snapshots into the spec's
/// private subdirectory and — when a previous attempt (killed campaign,
/// failed run) left a valid snapshot behind — restores from the newest one
/// instead of repeating the simulated prefix. The restore contract
/// guarantees the final state digest is unchanged either way.
fn run_spec(spec: &RunSpec, verify: bool) -> Result<(Report, SnapOutcome), SimError> {
    if spec.fixture == Fixture::Panic {
        panic!(
            "synthetic panic fixture: poisoned configuration for {}",
            spec.workload
        );
    }
    let mut builder = SimBuilder::new()
        .scheme(spec.scheme)
        .policy(spec.policy)
        .instructions(spec.instructions)
        .seed(spec.seed)
        .warmup_mem_ops(spec.warmup)
        .liveness_watchdog(spec.watchdog_no_retire, spec.watchdog_queue_age);
    if let Some(mix) = workloads::all_mixes()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(&spec.workload))
    {
        builder = builder.name(mix.name).mix(mix.apps);
    } else {
        let profile = workloads::by_name(&spec.workload)
            .unwrap_or_else(|| panic!("workload {:?} vanished after validation", spec.workload));
        builder = builder.homogeneous(profile, spec.cores);
    }
    if let Some(path) = &spec.fault_plan {
        let text = std::fs::read_to_string(path).map_err(|e| SimError::Io {
            path: PathBuf::from(path),
            source: e,
        })?;
        let plan = sim_fault::FaultPlan::from_toml_str(&text)?;
        builder = builder.faults(plan);
    }
    if spec.recovery {
        builder = builder.recovery(pra_core::RecoveryConfig::default());
    }
    if let Some(subdir) = spec.checkpoint_subdir() {
        builder = builder
            .checkpoint_every(spec.checkpoint_every)
            .checkpoint_dir(&subdir);
        // Torn or mismatched snapshots are skipped by latest_valid; the
        // run simply starts further back (or from cycle 0).
        if let Ok(Some(found)) = sim_snap::latest_valid(&subdir, Some(builder.config_digest())) {
            builder = builder.restore(found.path);
        }
    }
    let (report, snap) = builder.try_run_snap()?;
    if verify {
        let (second, _) = builder.try_run_snap()?;
        let (a, b) = (report.state_digest(), second.state_digest());
        if a != b {
            return Err(SimError::Nondeterministic {
                first: a,
                second: b,
            });
        }
    }
    Ok((report, snap))
}

/// The cycle of the newest valid snapshot in the spec's checkpoint
/// subdirectory, or `None` when checkpointing is off or no valid snapshot
/// exists. Used to detect whether a failed attempt made checkpoint
/// progress (and a retry is therefore worth starting).
fn newest_checkpoint_cycle(spec: &RunSpec) -> Option<u64> {
    let subdir = spec.checkpoint_subdir()?;
    sim_snap::latest_valid(&subdir, None)
        .ok()
        .flatten()
        .map(|found| found.header.cycle)
}

fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The raw result of one attempt: panic payload or simulation outcome.
type AttemptOutcome =
    Result<Result<(Report, SnapOutcome), SimError>, Box<dyn std::any::Any + Send>>;

/// Classifies one attempt's outcome into the journal record. Returns
/// whether the attempt exposed a determinism mismatch.
fn classify_attempt(record: &mut JournalRecord, outcome: AttemptOutcome) -> bool {
    match outcome {
        Ok(Ok((report, snap))) => {
            // A completed run that needed the recovery pipeline is journaled
            // distinctly so fault campaigns can assert it engaged.
            record.status = if report.recovery.engaged() {
                RunStatus::Recovered
            } else {
                RunStatus::Ok
            };
            record.cycles = report.cpu_cycles;
            record.energy_pj = report.energy.total().round() as u64;
            record.avg_power_mw = report.power.total().round() as u64;
            record.resumed_from_cycle = snap.restored_from_cycle.unwrap_or(0);
            record.state_digest = Some(report.state_digest());
            record.detail = String::new();
            false
        }
        Ok(Err(e @ (SimError::Liveness(_) | SimError::Protocol(_)))) => {
            record.status = RunStatus::Hung;
            record.detail = e.to_string();
            false
        }
        Ok(Err(e)) => {
            record.status = RunStatus::Failed;
            record.detail = e.to_string();
            matches!(e, SimError::Nondeterministic { .. })
        }
        Err(payload) => {
            record.status = RunStatus::Failed;
            record.detail = format!("panicked: {}", panic_payload(payload));
            false
        }
    }
}

/// Executes one spec behind the panic-isolation boundary and classifies
/// the outcome into a journal record. Never panics, never errors.
///
/// With checkpointing configured, a failed or hung attempt that made
/// checkpoint progress (its newest valid snapshot advanced past whatever
/// was on disk before the attempt) is retried exactly once; the retry
/// restores from that snapshot instead of starting over. Deterministic
/// failures fail again quickly — the retry resumes just before the failure
/// point — while host-level flukes (and runs re-executed after a killed
/// campaign) complete with `resumed_from_cycle` journaled.
fn execute_spec(spec: &RunSpec, verify: bool) -> (JournalRecord, bool) {
    let digest = config_digest(spec);
    let mut record = JournalRecord {
        config_digest: digest,
        seed: spec.seed,
        status: RunStatus::Failed,
        scheme: spec.scheme.name().to_string(),
        workload: spec.workload.clone(),
        cycles: 0,
        host_nanos: 0,
        energy_pj: 0,
        avg_power_mw: 0,
        resumed_from_cycle: 0,
        state_digest: None,
        detail: String::new(),
        repro: spec.repro_line(),
    };
    let started = Instant::now();
    let before = newest_checkpoint_cycle(spec);
    let outcome = catch_unwind(AssertUnwindSafe(|| run_spec(spec, verify)));
    let mut mismatch = classify_attempt(&mut record, outcome);
    if !matches!(record.status, RunStatus::Ok | RunStatus::Recovered)
        && newest_checkpoint_cycle(spec) > before
    {
        let first_detail = std::mem::take(&mut record.detail);
        let retry = catch_unwind(AssertUnwindSafe(|| run_spec(spec, verify)));
        mismatch = classify_attempt(&mut record, retry);
        if !matches!(record.status, RunStatus::Ok | RunStatus::Recovered) {
            record.detail = format!(
                "{} (retry from checkpoint; first attempt: {first_detail})",
                record.detail
            );
        }
    }
    record.host_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (record, mismatch)
}

/// Expands the campaign, skips journaled runs, and executes the rest on a
/// worker pool, journaling each result as it lands.
///
/// # Errors
///
/// [`HarnessError`] when the matrix is inconsistent, resume is requested
/// without an existing journal, or the journal cannot be read or written.
/// Individual run failures do *not* error — they are journaled and
/// reported in the summary (see [`CampaignSummary::has_failures`]).
pub fn run_campaign(
    campaign: &Campaign,
    options: &CampaignOptions,
) -> Result<CampaignSummary, HarnessError> {
    campaign
        .validate()
        .map_err(|e| harness_err(e.to_string()))?;
    let specs = campaign.expand();

    let journal_exists = options.journal.exists();
    if options.resume && !journal_exists {
        return Err(harness_err(format!(
            "cannot resume: journal {} does not exist (use `campaign run` to start one)",
            options.journal.display()
        )));
    }
    let loaded = if journal_exists {
        load_journal(&options.journal)
            .map_err(|e| harness_err(format!("reading {}: {e}", options.journal.display())))?
    } else {
        LoadedJournal::default()
    };
    if options.resume {
        // Refuse to resume against a journal another campaign wrote: every
        // journaled config digest must be producible by the re-expanded
        // matrix, else "skip completed runs" would silently skip runs of a
        // *different* experiment.
        let expected: std::collections::HashSet<u64> = specs.iter().map(config_digest).collect();
        if let Some(alien) = loaded
            .records
            .iter()
            .find(|r| !expected.contains(&r.config_digest))
        {
            return Err(harness_err(format!(
                "cannot resume: journal {} was written by a different campaign — \
                 record {}/{} seed {} has config digest {:016x}, which the \
                 re-expanded matrix does not produce (did the matrix file change?)",
                options.journal.display(),
                alien.scheme,
                alien.workload,
                alien.seed,
                alien.config_digest,
            )));
        }
    }
    let completed = loaded.completed_keys();

    let mut todo: Vec<(RunSpec, bool)> = Vec::new();
    let mut skipped = 0usize;
    for spec in &specs {
        if completed.contains(&(config_digest(spec), spec.seed)) {
            skipped += 1;
        } else {
            let sample = campaign.determinism_sample;
            let verify = sample > 0
                && spec.fixture == Fixture::None
                && (todo.len() as u64 + 1).is_multiple_of(sample);
            todo.push((spec.clone(), verify));
        }
    }

    let mut writer = JournalWriter::open_append(&options.journal)
        .map_err(|e| harness_err(format!("opening {}: {e}", options.journal.display())))?;

    let jobs = if options.jobs == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        options.jobs
    }
    .min(todo.len().max(1));

    let mut summary = CampaignSummary {
        total: specs.len(),
        ok: 0,
        recovered: 0,
        failed: 0,
        hung: 0,
        skipped,
        determinism_checked: todo.iter().filter(|(_, v)| *v).count(),
        determinism_mismatches: 0,
        resumed: 0,
        elapsed_ms: 0,
        jobs,
        failures: Vec::new(),
        slowest: Vec::new(),
        metrics: MetricsRegistry::new(),
    };
    let ok_id = summary.metrics.counter("campaign.runs_ok");
    let recovered_id = summary.metrics.counter("campaign.runs_recovered");
    let failed_id = summary.metrics.counter("campaign.runs_failed");
    let hung_id = summary.metrics.counter("campaign.runs_hung");
    let skipped_id = summary.metrics.counter("campaign.runs_skipped");
    let mismatch_id = summary.metrics.counter("campaign.determinism_mismatches");
    let host_id = summary.metrics.counter("campaign.host_nanos");
    let energy_id = summary.metrics.counter("campaign.energy_pj");
    let resumed_id = summary.metrics.counter("campaign.runs_resumed");
    let journal_skipped_id = summary.metrics.counter("campaign.journal_skipped_lines");
    let cycles_id = summary.metrics.histogram("campaign.run_cycles");
    summary.metrics.add(skipped_id, skipped as u64);
    summary
        .metrics
        .add(journal_skipped_id, loaded.dropped_lines as u64);

    let started = Instant::now();
    let pending = todo.len();
    let queue = Mutex::new(todo.into_iter().collect::<VecDeque<_>>());
    let (tx, rx) = mpsc::channel::<(JournalRecord, bool)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || loop {
                let job = queue.lock().map(|mut q| q.pop_front());
                match job {
                    Ok(Some((spec, verify))) => {
                        if tx.send(execute_spec(&spec, verify)).is_err() {
                            return;
                        }
                    }
                    // Queue empty or poisoned (a sibling panicked while
                    // holding the lock — impossible with pop_front alone,
                    // but stop cleanly rather than spin).
                    _ => return,
                }
            });
        }
        drop(tx);
        for done in 1..=pending {
            let Ok((record, mismatch)) = rx.recv() else {
                break;
            };
            match record.status {
                RunStatus::Ok => {
                    summary.ok += 1;
                    summary.metrics.add(ok_id, 1);
                    summary.metrics.observe(cycles_id, record.cycles);
                }
                RunStatus::Recovered => {
                    summary.recovered += 1;
                    summary.metrics.add(recovered_id, 1);
                    summary.metrics.observe(cycles_id, record.cycles);
                }
                RunStatus::Failed => {
                    summary.failed += 1;
                    summary.metrics.add(failed_id, 1);
                }
                RunStatus::Hung => {
                    summary.hung += 1;
                    summary.metrics.add(hung_id, 1);
                }
            }
            if mismatch {
                summary.determinism_mismatches += 1;
                summary.metrics.add(mismatch_id, 1);
            }
            if record.resumed_from_cycle > 0 {
                summary.resumed += 1;
                summary.metrics.add(resumed_id, 1);
            }
            summary.metrics.add(host_id, record.host_nanos);
            summary.metrics.add(energy_id, record.energy_pj);
            let timing = RunTiming {
                scheme: record.scheme.clone(),
                workload: record.workload.clone(),
                seed: record.seed,
                status: record.status,
                host_nanos: record.host_nanos,
                cycles: record.cycles,
            };
            // Per-run heartbeat, so a long campaign is observable while it
            // runs (stderr: the report itself goes to stdout).
            eprintln!(
                "[campaign {done}/{pending}] {}/{} seed {}: {} in {:.2} s ({:.0} cycles/s) | {} ok {} recovered {} failed {} hung",
                timing.scheme,
                timing.workload,
                timing.seed,
                timing.status,
                timing.host_nanos as f64 / 1e9,
                timing.cycles_per_sec(),
                summary.ok,
                summary.recovered,
                summary.failed,
                summary.hung,
            );
            summary.slowest.push(timing);
            summary
                .slowest
                .sort_by_key(|t| std::cmp::Reverse(t.host_nanos));
            summary.slowest.truncate(SLOWEST_KEPT);
            if !matches!(record.status, RunStatus::Ok | RunStatus::Recovered) {
                summary.failures.push(RunFailure {
                    status: record.status,
                    scheme: record.scheme.clone(),
                    workload: record.workload.clone(),
                    seed: record.seed,
                    config_digest: record.config_digest,
                    detail: record.detail.clone(),
                    repro: record.repro.clone(),
                });
            }
            if let Err(e) = writer.append(&record) {
                return Err(harness_err(format!(
                    "writing {}: {e}",
                    options.journal.display()
                )));
            }
        }
        Ok(())
    })?;
    summary.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_core::Scheme;

    fn tiny_spec(fixture: Fixture) -> RunSpec {
        RunSpec {
            scheme: Scheme::Baseline,
            workload: "GUPS".to_string(),
            policy: dram_sim::PagePolicy::RelaxedClosePage,
            cores: 1,
            instructions: 300,
            warmup: 1_000,
            seed: 1,
            watchdog_no_retire: if fixture == Fixture::Hang { 20 } else { 0 },
            watchdog_queue_age: 0,
            fault_plan: None,
            recovery: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            fixture,
        }
    }

    /// A fresh (pre-cleaned) checkpoint root for one test.
    fn snap_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sim_harness_snap_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn panic_fixture_is_isolated_and_classified_failed() {
        let (record, mismatch) = execute_spec(&tiny_spec(Fixture::Panic), false);
        assert_eq!(record.status, RunStatus::Failed);
        assert!(
            record.detail.contains("synthetic panic fixture"),
            "{}",
            record.detail
        );
        assert!(record.repro.starts_with('#'));
        assert!(!mismatch);
    }

    #[test]
    fn hang_fixture_is_classified_hung_with_trail() {
        let (record, _) = execute_spec(&tiny_spec(Fixture::Hang), false);
        assert_eq!(record.status, RunStatus::Hung);
        assert!(
            record.detail.contains("liveness violation"),
            "{}",
            record.detail
        );
        assert!(
            record.repro.contains("--watchdog-no-retire 20"),
            "{}",
            record.repro
        );
    }

    #[test]
    fn normal_spec_reports_cycles_and_digest() {
        let (record, _) = execute_spec(&tiny_spec(Fixture::None), true);
        assert_eq!(record.status, RunStatus::Ok, "{}", record.detail);
        assert!(record.cycles > 0);
        assert!(record.state_digest.is_some());
        assert!(record.detail.is_empty());
    }

    #[test]
    fn faulted_run_with_recovery_classifies_recovered() {
        let dir = std::env::temp_dir().join("sim_harness_recovery_test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan = dir.join("storm.toml");
        std::fs::write(
            &plan,
            "[faults]\nseed = 4\nmask_corrupt_rate = 0.5\ncommand_drop_rate = 0.1\n\
             persistent_rate = 0.1\ntransient_burst_len = 2\n",
        )
        .unwrap();
        let mut spec = tiny_spec(Fixture::None);
        spec.scheme = Scheme::Pra;
        spec.instructions = 3_000;
        spec.fault_plan = Some(plan.to_str().unwrap().to_string());
        spec.recovery = true;
        let (record, mismatch) = execute_spec(&spec, true);
        assert_eq!(record.status, RunStatus::Recovered, "{}", record.detail);
        assert!(!mismatch, "recovery must stay digest-deterministic");
        assert!(record.state_digest.is_some());
        assert!(record.repro.ends_with("--recovery"), "{}", record.repro);
        // Same spec without recovery still completes (legacy degrade path)
        // and journals plain ok.
        spec.recovery = false;
        let (record, _) = execute_spec(&spec, false);
        assert_eq!(record.status, RunStatus::Ok, "{}", record.detail);
        std::fs::remove_file(&plan).ok();
    }

    #[test]
    fn missing_fault_plan_file_fails_cleanly() {
        let mut spec = tiny_spec(Fixture::None);
        spec.fault_plan = Some("/no/such/plan.toml".to_string());
        let (record, _) = execute_spec(&spec, false);
        assert_eq!(record.status, RunStatus::Failed);
        assert!(
            record.detail.contains("/no/such/plan.toml"),
            "{}",
            record.detail
        );
        assert!(record.repro.contains("--faults /no/such/plan.toml"));
    }

    #[test]
    fn reexecuted_run_resumes_from_leftover_checkpoints_with_identical_digest() {
        // Models a campaign killed after this run's checkpoints hit disk
        // but before its journal record did: the run re-executes, finds its
        // own snapshots, resumes mid-flight, and must finish bit-identical.
        let root = snap_root("reexec");
        let mut spec = tiny_spec(Fixture::None);
        spec.instructions = 4_000;
        spec.warmup = 2_000;
        spec.checkpoint_every = 300;
        spec.checkpoint_dir = Some(root.to_str().unwrap().to_string());
        let (first, _) = execute_spec(&spec, false);
        assert_eq!(first.status, RunStatus::Ok, "{}", first.detail);
        assert_eq!(first.resumed_from_cycle, 0, "first run starts at cycle 0");
        let subdir = spec.checkpoint_subdir().unwrap();
        assert!(
            std::fs::read_dir(&subdir).unwrap().count() > 0,
            "checkpoints must have been written"
        );
        let (second, _) = execute_spec(&spec, false);
        assert_eq!(second.status, RunStatus::Ok, "{}", second.detail);
        assert!(
            second.resumed_from_cycle > 0,
            "re-execution must resume from a snapshot"
        );
        assert_eq!(
            second.state_digest, first.state_digest,
            "a resumed run must finish bit-identical to an uninterrupted one"
        );
        assert!(
            second.repro.contains("--checkpoint-every 300"),
            "{}",
            second.repro
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_run_without_checkpoint_progress_is_not_retried() {
        // The fault-plan file is missing, so the attempt fails before
        // simulating anything: no checkpoint progress, no retry — the
        // detail carries a single failure, not a retry trail.
        let root = snap_root("noretry");
        let mut spec = tiny_spec(Fixture::None);
        spec.fault_plan = Some("/no/such/plan.toml".to_string());
        spec.checkpoint_every = 300;
        spec.checkpoint_dir = Some(root.to_str().unwrap().to_string());
        let (record, _) = execute_spec(&spec, false);
        assert_eq!(record.status, RunStatus::Failed);
        assert!(
            !record.detail.contains("retry from checkpoint"),
            "{}",
            record.detail
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn hung_run_with_checkpoint_progress_is_retried_once_from_snapshot() {
        // A 20-cycle no-retire watchdog trips shortly into the measured
        // phase, after the 10-cycle checkpoint cadence has written at least
        // one snapshot. The retry resumes from it, deterministically hangs
        // again, and the detail records both attempts.
        let root = snap_root("hungretry");
        let mut spec = tiny_spec(Fixture::Hang);
        spec.checkpoint_every = 10;
        spec.checkpoint_dir = Some(root.to_str().unwrap().to_string());
        let (record, _) = execute_spec(&spec, false);
        assert_eq!(record.status, RunStatus::Hung, "{}", record.detail);
        assert!(
            record.detail.contains("retry from checkpoint"),
            "progress was made, so a retry must have happened: {}",
            record.detail
        );
        assert!(
            record.detail.contains("first attempt:"),
            "{}",
            record.detail
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_with_checkpointing_survives_and_resumes() {
        let root = snap_root("campaign");
        let journal = root.join("journal.jsonl");
        let matrix = format!(
            "schemes = [\"baseline\", \"pra\"]\nworkloads = [\"GUPS\"]\nseeds = [1]\n\
             instructions = 4000\nwarmup = 2000\ncheckpoint_every = 300\n\
             checkpoint_dir = \"{}\"\n",
            root.join("snaps").display()
        );
        let campaign = Campaign::from_toml_str(&matrix).unwrap();
        let options = CampaignOptions {
            jobs: 1,
            journal: journal.clone(),
            resume: false,
        };
        let summary = run_campaign(&campaign, &options).unwrap();
        assert_eq!(summary.ok, 2, "{}", summary.render());
        assert_eq!(summary.resumed, 0, "fresh runs start at cycle 0");
        // Drop one journal record (as if the campaign died before writing
        // it); its checkpoints remain. The resumed campaign re-executes
        // exactly that run, restoring mid-flight.
        let text = std::fs::read_to_string(&journal).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let dropped_line = lines.pop().unwrap().to_string();
        let dropped = JournalRecord::parse(&dropped_line).unwrap();
        std::fs::write(&journal, format!("{}\n", lines.join("\n"))).unwrap();
        let resume_options = CampaignOptions {
            jobs: 1,
            journal: journal.clone(),
            resume: true,
        };
        let summary = run_campaign(&campaign, &resume_options).unwrap();
        assert_eq!(summary.skipped, 1, "{}", summary.render());
        assert_eq!(summary.ok, 1, "{}", summary.render());
        assert_eq!(summary.resumed, 1, "{}", summary.render());
        assert!(
            summary
                .render()
                .contains("checkpoint recovery: 1 run resumed"),
            "{}",
            summary.render()
        );
        // The re-executed run's digest matches the killed attempt's.
        let reloaded = load_journal(&journal).unwrap();
        let rerun = reloaded
            .records
            .iter()
            .find(|r| r.key() == dropped.key())
            .unwrap();
        assert!(rerun.resumed_from_cycle > 0);
        assert_eq!(rerun.state_digest, dropped.state_digest);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_campaign() {
        let root = snap_root("alienresume");
        let journal = root.join("journal.jsonl");
        let matrix_a = "schemes = [\"baseline\"]\nworkloads = [\"GUPS\"]\nseeds = [1]\n\
                        instructions = 300\nwarmup = 1000\n";
        let campaign_a = Campaign::from_toml_str(matrix_a).unwrap();
        let options = CampaignOptions {
            jobs: 1,
            journal: journal.clone(),
            resume: false,
        };
        run_campaign(&campaign_a, &options).unwrap();
        // Same journal, different instruction count: every journaled digest
        // is now alien to the re-expanded matrix.
        let matrix_b = matrix_a.replace("instructions = 300", "instructions = 500");
        let campaign_b = Campaign::from_toml_str(&matrix_b).unwrap();
        let resume_options = CampaignOptions {
            jobs: 1,
            journal: journal.clone(),
            resume: true,
        };
        let e = run_campaign(&campaign_b, &resume_options).unwrap_err();
        assert!(e.to_string().contains("different campaign"), "{e}");
        assert!(e.to_string().contains("config digest"), "{e}");
        // The original campaign still resumes cleanly (everything skipped).
        let summary = run_campaign(&campaign_a, &resume_options).unwrap();
        assert_eq!(summary.skipped, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn malformed_journal_lines_are_counted_in_campaign_metrics() {
        let root = snap_root("skiplines");
        let journal = root.join("journal.jsonl");
        std::fs::write(&journal, "this is not a journal line\n{\"torn\":\n").unwrap();
        let campaign = Campaign::from_toml_str(
            "schemes = [\"baseline\"]\nworkloads = [\"GUPS\"]\nseeds = [1]\n\
             instructions = 300\nwarmup = 1000\n",
        )
        .unwrap();
        let options = CampaignOptions {
            jobs: 1,
            journal: journal.clone(),
            resume: true,
        };
        let summary = run_campaign(&campaign, &options).unwrap();
        assert_eq!(
            summary
                .metrics
                .counter_value("campaign.journal_skipped_lines"),
            Some(2),
            "{}",
            summary.render()
        );
        assert!(
            summary.render().contains("2 malformed lines skipped"),
            "{}",
            summary.render()
        );
        assert_eq!(summary.ok, 1, "the run itself executes normally");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn resume_without_journal_is_an_error() {
        let campaign = Campaign::from_toml_str(
            "schemes = [\"baseline\"]\nworkloads = [\"GUPS\"]\nseeds = [1]\n",
        )
        .unwrap();
        let options = CampaignOptions {
            jobs: 1,
            journal: std::env::temp_dir().join("sim_harness_no_such_journal.jsonl"),
            resume: true,
        };
        let e = run_campaign(&campaign, &options).unwrap_err();
        assert!(e.to_string().contains("cannot resume"), "{e}");
    }
}
