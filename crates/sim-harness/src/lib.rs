//! Panic-isolated parallel campaign runner for the PRA simulation stack.
//!
//! A *campaign* is a batch of simulations over an experiment matrix —
//! scheme × workload × seed (× optional fault plan) — executed by a pool of
//! worker threads. The harness is built for overnight sweeps that must
//! survive individual bad runs:
//!
//! * **Panic isolation** — each run executes behind `catch_unwind`, so a
//!   poisoned configuration produces a structured failure record (panic
//!   payload, config digest, copy-pasteable repro command) instead of
//!   aborting the whole campaign.
//! * **Liveness classification** — runs that trip the DRAM scheduler's
//!   cycle-domain watchdogs ([`dram_sim::LivenessError`]) are classified
//!   [`RunStatus::Hung`], carrying the starved request's address/bank trail.
//! * **Journaled resume** — every completed run is appended to a JSONL
//!   journal as it finishes; an interrupted campaign resumes by skipping
//!   already-journaled (config-digest, seed) pairs. A truncated trailing
//!   line (the classic kill-mid-write artifact) is tolerated and re-run.
//! * **Determinism spot-checks** — an optional sampled fraction of runs is
//!   executed twice and the two [`pra_core::Report::state_digest`]s
//!   compared.
//!
//! Per-run counters route through [`sim_obs::MetricsRegistry`]
//! (`campaign.runs_ok`, `campaign.runs_recovered`, `campaign.runs_failed`, `campaign.runs_hung`,
//! `campaign.runs_skipped`, `campaign.determinism_mismatches`,
//! `campaign.host_nanos`) plus a `campaign.run_cycles` histogram over
//! successful runs. Each completed run also prints a stderr heartbeat
//! (`[campaign done/total] …`) with its host time and simulated
//! cycles-per-second, and the summary keeps the [`SLOWEST_KEPT`] slowest
//! runs for the report's "slowest runs" table.
//!
//! The `pra campaign run|resume|report` subcommands are thin wrappers over
//! [`run_campaign`] and [`load_journal`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
mod journal;
mod matrix;
mod runner;

pub use digest::{config_digest, fnv1a_64};
pub use journal::{load_journal, JournalRecord, JournalWriter, LoadedJournal, RunStatus};
pub use matrix::{Campaign, Fixture, MatrixError, RunSpec};
pub use runner::{
    run_campaign, CampaignOptions, CampaignSummary, HarnessError, RunFailure, RunTiming,
    SLOWEST_KEPT,
};
