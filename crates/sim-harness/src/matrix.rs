//! The experiment matrix: a TOML-subset campaign description and its
//! expansion into individual run specifications.

use core::fmt;

use dram_sim::PagePolicy;
use pra_core::Scheme;

/// Error parsing or validating a campaign matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixError(String);

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid campaign matrix: {}", self.0)
    }
}

impl std::error::Error for MatrixError {}

fn matrix_err(msg: impl Into<String>) -> MatrixError {
    MatrixError(msg.into())
}

/// Synthetic run kinds a campaign can inject to exercise the harness's
/// failure paths end to end (used by CI and the demo campaign).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fixture {
    /// A normal simulation run.
    #[default]
    None,
    /// Panics instead of simulating — proves panic isolation.
    Panic,
    /// Runs with an impossibly tight no-retire watchdog — trips a
    /// [`dram_sim::LivenessError`] and is classified hung.
    Hang,
}

/// One fully-resolved simulation the campaign will execute.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Activation scheme under test.
    pub scheme: Scheme,
    /// Workload name (a benchmark or `MIX1`..`MIX6`).
    pub workload: String,
    /// Page policy.
    pub policy: PagePolicy,
    /// Cores for benchmark workloads (mixes always use 4).
    pub cores: usize,
    /// Instructions each core retires.
    pub instructions: u64,
    /// Functional-warmup memory operations per core.
    pub warmup: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// No-retire liveness bound in memory cycles (0 disables).
    pub watchdog_no_retire: u64,
    /// Queue-age (starvation) liveness bound in memory cycles (0 disables).
    pub watchdog_queue_age: u64,
    /// Optional fault-plan file injected into the run.
    pub fault_plan: Option<String>,
    /// Arm the controller recovery pipeline (parity-alert replay with
    /// full-row fallback) for this run.
    pub recovery: bool,
    /// Checkpoint interval in memory cycles (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// Root checkpoint directory; each run writes snapshots into its own
    /// `<config_digest:016x>-<seed>` subdirectory so parallel runs never
    /// collide. Required exactly when `checkpoint_every > 0`.
    pub checkpoint_dir: Option<String>,
    /// Synthetic-fixture kind, [`Fixture::None`] for real runs.
    pub fixture: Fixture,
}

/// The CLI spelling of a scheme (`pra run --scheme <this>`).
pub(crate) fn scheme_cli_name(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Baseline => "baseline",
        Scheme::Fga => "fga",
        Scheme::HalfDram => "half-dram",
        Scheme::Pra => "pra",
        Scheme::HalfDramPra => "half-dram-pra",
        Scheme::Dbi => "dbi",
        Scheme::DbiPra => "dbi-pra",
    }
}

fn parse_scheme(name: &str) -> Result<Scheme, MatrixError> {
    match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "baseline" | "base" | "conventional" => Ok(Scheme::Baseline),
        "fga" => Ok(Scheme::Fga),
        "halfdram" | "half" => Ok(Scheme::HalfDram),
        "pra" => Ok(Scheme::Pra),
        "halfdrampra" | "combined" => Ok(Scheme::HalfDramPra),
        "dbi" => Ok(Scheme::Dbi),
        "dbipra" => Ok(Scheme::DbiPra),
        _ => Err(matrix_err(format!(
            "unknown scheme {name:?}; valid: baseline, fga, half-dram, pra, half-dram-pra, dbi, dbi-pra"
        ))),
    }
}

fn parse_policy(name: &str) -> Result<PagePolicy, MatrixError> {
    match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "relaxed" | "relaxedclosepage" => Ok(PagePolicy::RelaxedClosePage),
        "restricted" | "restrictedclosepage" => Ok(PagePolicy::RestrictedClosePage),
        "open" | "openpage" => Ok(PagePolicy::OpenPage),
        _ => Err(matrix_err(format!(
            "unknown policy {name:?}; valid: relaxed, restricted, open"
        ))),
    }
}

pub(crate) fn policy_cli_name(policy: PagePolicy) -> &'static str {
    match policy {
        PagePolicy::RelaxedClosePage => "relaxed",
        PagePolicy::RestrictedClosePage => "restricted",
        PagePolicy::OpenPage => "open",
    }
}

/// Resolves a workload name to its canonical spelling, or errors listing
/// the valid names.
fn canonical_workload(name: &str) -> Result<String, MatrixError> {
    if let Some(mix) = workloads::all_mixes()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
    {
        return Ok(mix.name.to_string());
    }
    if let Some(profile) = workloads::by_name(name) {
        return Ok(profile.name.to_string());
    }
    let names: Vec<&str> = workloads::all_benchmarks().iter().map(|b| b.name).collect();
    Err(matrix_err(format!(
        "unknown workload {name:?}; valid: {} or MIX1..MIX6",
        names.join(", ")
    )))
}

/// A campaign description: the axes of the experiment matrix plus the knobs
/// shared by every run. Parses from a minimal TOML subset
/// ([`Campaign::from_toml_str`]) and expands to the full cross product
/// ([`Campaign::expand`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Schemes axis (at least one).
    pub schemes: Vec<Scheme>,
    /// Workloads axis, canonical names (at least one).
    pub workloads: Vec<String>,
    /// Seeds axis (at least one).
    pub seeds: Vec<u64>,
    /// Page policy shared by every run.
    pub policy: PagePolicy,
    /// Cores for benchmark workloads (mixes always use 4).
    pub cores: usize,
    /// Instructions each core retires.
    pub instructions: u64,
    /// Functional-warmup memory operations per core.
    pub warmup: u64,
    /// No-retire liveness bound for every run (memory cycles, 0 disables).
    pub watchdog_no_retire: u64,
    /// Queue-age liveness bound for every run (memory cycles, 0 disables).
    pub watchdog_queue_age: u64,
    /// Re-run every Nth run twice and compare state digests (0 disables).
    pub determinism_sample: u64,
    /// Fault-plan files: each becomes an extra matrix axis value (a run
    /// without a plan is always included).
    pub fault_plans: Vec<String>,
    /// Arm the controller recovery pipeline on every run (detected faults
    /// replay instead of degrading immediately; completed runs that needed
    /// it journal as `recovered`).
    pub recovery: bool,
    /// Checkpoint every run's full simulator state at this memory-cycle
    /// interval (0 disables). A run that fails, hangs, or is killed
    /// mid-flight re-executes from its last valid checkpoint instead of
    /// cycle 0 — the restored run finishes with an identical state digest.
    pub checkpoint_every: u64,
    /// Root directory for per-run checkpoint subdirectories. Required
    /// exactly when `checkpoint_every > 0`.
    pub checkpoint_dir: Option<String>,
    /// Append one synthetic panicking run (harness self-test).
    pub include_panic_fixture: bool,
    /// Append one synthetic hanging run (harness self-test).
    pub include_hang_fixture: bool,
}

impl Campaign {
    /// Parses a campaign from a minimal TOML subset: `key = value` lines,
    /// `#` comments, string/integer arrays in `[...]`, and an optional
    /// `[campaign]` section header. Unknown keys are errors (a typo must
    /// not silently shrink the matrix).
    ///
    /// # Errors
    ///
    /// [`MatrixError`] naming the offending line, unknown scheme/workload
    /// names, or a missing required axis.
    pub fn from_toml_str(text: &str) -> Result<Self, MatrixError> {
        let mut schemes: Option<Vec<Scheme>> = None;
        let mut workload_names: Option<Vec<String>> = None;
        let mut seeds: Option<Vec<u64>> = None;
        let mut policy = PagePolicy::RelaxedClosePage;
        let mut cores = 1usize;
        let mut instructions = 5_000u64;
        let mut warmup = 10_000u64;
        let mut watchdog_no_retire = 1_000_000u64;
        let mut watchdog_queue_age = 0u64;
        let mut determinism_sample = 0u64;
        let mut fault_plans = Vec::new();
        let mut recovery = false;
        let mut checkpoint_every = 0u64;
        let mut checkpoint_dir: Option<String> = None;
        let mut include_panic_fixture = false;
        let mut include_hang_fixture = false;

        for (index, raw) in text.lines().enumerate() {
            let lineno = index + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                if line == "[campaign]" {
                    continue;
                }
                return Err(matrix_err(format!(
                    "line {lineno}: unknown section {line:?} (only [campaign] is allowed)"
                )));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(matrix_err(format!(
                    "line {lineno}: expected `key = value`, got {line:?}"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            let as_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| {
                    matrix_err(format!("line {lineno}: {key} wants an integer, got {v:?}"))
                })
            };
            let as_bool = |v: &str| match v {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(matrix_err(format!(
                    "line {lineno}: {key} wants true|false, got {v:?}"
                ))),
            };
            match key {
                "schemes" => {
                    let names = parse_string_array(value, key, lineno)?;
                    schemes = Some(
                        names
                            .iter()
                            .map(|n| parse_scheme(n))
                            .collect::<Result<_, _>>()?,
                    );
                }
                "workloads" => {
                    let names = parse_string_array(value, key, lineno)?;
                    workload_names = Some(
                        names
                            .iter()
                            .map(|n| canonical_workload(n))
                            .collect::<Result<_, _>>()?,
                    );
                }
                "seeds" => {
                    let items = parse_raw_array(value, key, lineno)?;
                    seeds = Some(items.iter().map(|v| as_u64(v)).collect::<Result<_, _>>()?);
                }
                "policy" => policy = parse_policy(value.trim_matches('"'))?,
                "cores" => cores = as_u64(value)? as usize,
                "instructions" => instructions = as_u64(value)?,
                "warmup" => warmup = as_u64(value)?,
                "watchdog_no_retire" => watchdog_no_retire = as_u64(value)?,
                "watchdog_queue_age" => watchdog_queue_age = as_u64(value)?,
                "determinism_sample" => determinism_sample = as_u64(value)?,
                "fault_plans" => {
                    fault_plans = parse_string_array(value, key, lineno)?;
                }
                "recovery" => recovery = as_bool(value)?,
                "checkpoint_every" => checkpoint_every = as_u64(value)?,
                "checkpoint_dir" => {
                    let dir = value.trim_matches('"');
                    if dir.is_empty() {
                        return Err(matrix_err(format!(
                            "line {lineno}: checkpoint_dir wants a non-empty quoted path"
                        )));
                    }
                    checkpoint_dir = Some(dir.to_string());
                }
                "include_panic_fixture" => include_panic_fixture = as_bool(value)?,
                "include_hang_fixture" => include_hang_fixture = as_bool(value)?,
                _ => {
                    return Err(matrix_err(format!("line {lineno}: unknown key {key:?}")));
                }
            }
        }
        let campaign = Campaign {
            schemes: schemes.ok_or_else(|| matrix_err("missing required axis `schemes`"))?,
            workloads: workload_names
                .ok_or_else(|| matrix_err("missing required axis `workloads`"))?,
            seeds: seeds.ok_or_else(|| matrix_err("missing required axis `seeds`"))?,
            policy,
            cores,
            instructions,
            warmup,
            watchdog_no_retire,
            watchdog_queue_age,
            determinism_sample,
            fault_plans,
            recovery,
            checkpoint_every,
            checkpoint_dir,
            include_panic_fixture,
            include_hang_fixture,
        };
        campaign.validate()?;
        Ok(campaign)
    }

    /// Checks the campaign for consistency.
    ///
    /// # Errors
    ///
    /// [`MatrixError`] when an axis is empty or `cores` is outside 1..=4.
    pub fn validate(&self) -> Result<(), MatrixError> {
        if self.schemes.is_empty() {
            return Err(matrix_err("schemes axis must not be empty"));
        }
        if self.workloads.is_empty() {
            return Err(matrix_err("workloads axis must not be empty"));
        }
        if self.seeds.is_empty() {
            return Err(matrix_err("seeds axis must not be empty"));
        }
        if self.cores == 0 || self.cores > 4 {
            return Err(matrix_err(format!(
                "cores must be 1..=4, got {}",
                self.cores
            )));
        }
        match (self.checkpoint_every, &self.checkpoint_dir) {
            (0, Some(_)) => {
                return Err(matrix_err(
                    "checkpoint_dir is set but checkpoint_every is 0; \
                     add `checkpoint_every = <memory cycles>`",
                ));
            }
            (n, None) if n > 0 => {
                return Err(matrix_err(
                    "checkpoint_every is set but checkpoint_dir is missing; \
                     add `checkpoint_dir = \"<directory>\"`",
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Expands the matrix into the full, deterministically-ordered run
    /// list: scheme-major, then workload, then fault plan, then seed, with
    /// the synthetic fixtures (when enabled) appended last.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut specs = Vec::new();
        let mut plans: Vec<Option<String>> = vec![None];
        plans.extend(self.fault_plans.iter().cloned().map(Some));
        for &scheme in &self.schemes {
            for workload in &self.workloads {
                for plan in &plans {
                    for &seed in &self.seeds {
                        specs.push(RunSpec {
                            scheme,
                            workload: workload.clone(),
                            policy: self.policy,
                            cores: self.cores,
                            instructions: self.instructions,
                            warmup: self.warmup,
                            seed,
                            watchdog_no_retire: self.watchdog_no_retire,
                            watchdog_queue_age: self.watchdog_queue_age,
                            fault_plan: plan.clone(),
                            recovery: self.recovery,
                            checkpoint_every: self.checkpoint_every,
                            checkpoint_dir: self.checkpoint_dir.clone(),
                            fixture: Fixture::None,
                        });
                    }
                }
            }
        }
        let template = specs.first().cloned();
        if let Some(first) = template {
            if self.include_panic_fixture {
                specs.push(RunSpec {
                    fixture: Fixture::Panic,
                    fault_plan: None,
                    ..first.clone()
                });
            }
            if self.include_hang_fixture {
                // A 20-cycle no-retire bound is below a single read's
                // latency: the run is guaranteed to classify as hung.
                specs.push(RunSpec {
                    fixture: Fixture::Hang,
                    watchdog_no_retire: 20,
                    watchdog_queue_age: 0,
                    fault_plan: None,
                    ..first
                });
            }
        }
        specs
    }
}

fn parse_raw_array(value: &str, key: &str, lineno: usize) -> Result<Vec<String>, MatrixError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            matrix_err(format!(
                "line {lineno}: {key} wants an array `[...]`, got {value:?}"
            ))
        })?;
    Ok(inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect())
}

fn parse_string_array(value: &str, key: &str, lineno: usize) -> Result<Vec<String>, MatrixError> {
    let items = parse_raw_array(value, key, lineno)?;
    items
        .into_iter()
        .map(|item| {
            item.strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| {
                    matrix_err(format!(
                        "line {lineno}: {key} wants quoted strings, got {item:?}"
                    ))
                })
        })
        .collect()
}

impl RunSpec {
    /// A copy-pasteable `pra run` invocation reproducing this run outside
    /// the campaign harness (the panic fixture has no CLI equivalent and
    /// renders as a comment).
    pub fn repro_line(&self) -> String {
        if self.fixture == Fixture::Panic {
            return "# synthetic panic fixture (harness self-test; no CLI equivalent)".to_string();
        }
        let mut line = format!(
            "pra run --scheme {} --workload {} --policy {} --cores {} --instructions {} --warmup {} --seed {}",
            scheme_cli_name(self.scheme),
            self.workload,
            policy_cli_name(self.policy),
            self.cores,
            self.instructions,
            self.warmup,
            self.seed,
        );
        if self.watchdog_no_retire > 0 {
            line.push_str(&format!(
                " --watchdog-no-retire {}",
                self.watchdog_no_retire
            ));
        }
        if self.watchdog_queue_age > 0 {
            line.push_str(&format!(
                " --watchdog-queue-age {}",
                self.watchdog_queue_age
            ));
        }
        if let Some(plan) = &self.fault_plan {
            line.push_str(&format!(" --faults {plan}"));
        }
        if self.recovery {
            line.push_str(" --recovery");
        }
        if let Some(subdir) = self.checkpoint_subdir() {
            line.push_str(&format!(
                " --checkpoint-every {} --checkpoint-dir {}",
                self.checkpoint_every,
                subdir.display()
            ));
        }
        line
    }

    /// This run's private checkpoint directory —
    /// `<checkpoint_dir>/<config_digest:016x>-<seed>` — or `None` when
    /// checkpointing is off. The digest/seed pair is the journal's resume
    /// key, so concurrent runs of one campaign never share a directory and
    /// a re-executed run finds exactly its own snapshots.
    pub fn checkpoint_subdir(&self) -> Option<std::path::PathBuf> {
        let dir = self.checkpoint_dir.as_ref()?;
        if self.checkpoint_every == 0 {
            return None;
        }
        Some(std::path::Path::new(dir).join(format!(
            "{:016x}-{}",
            crate::digest::config_digest(self),
            self.seed
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        # demo campaign
        [campaign]
        schemes = ["baseline", "pra"]
        workloads = ["GUPS", "lbm", "MIX1"]
        seeds = [1, 2]
    "#;

    #[test]
    fn minimal_matrix_parses_with_defaults() {
        let c = Campaign::from_toml_str(MINIMAL).unwrap();
        assert_eq!(c.schemes, vec![Scheme::Baseline, Scheme::Pra]);
        assert_eq!(c.workloads, vec!["GUPS", "lbm", "MIX1"]);
        assert_eq!(c.seeds, vec![1, 2]);
        assert_eq!(c.policy, PagePolicy::RelaxedClosePage);
        assert_eq!(c.cores, 1);
        assert_eq!(c.watchdog_no_retire, 1_000_000);
        assert_eq!(c.expand().len(), 2 * 3 * 2);
    }

    #[test]
    fn fixtures_and_fault_plans_extend_the_matrix() {
        let text = format!(
            "{MINIMAL}\nfault_plans = [\"plans/stress.toml\"]\n\
             include_panic_fixture = true\ninclude_hang_fixture = true\n"
        );
        let c = Campaign::from_toml_str(&text).unwrap();
        let specs = c.expand();
        // Each (scheme, workload, seed) runs once bare and once faulted.
        assert_eq!(specs.len(), 2 * 3 * 2 * 2 + 2);
        let panic_spec = &specs[specs.len() - 2];
        let hang_spec = &specs[specs.len() - 1];
        assert_eq!(panic_spec.fixture, Fixture::Panic);
        assert!(panic_spec.repro_line().starts_with('#'));
        assert_eq!(hang_spec.fixture, Fixture::Hang);
        assert_eq!(hang_spec.watchdog_no_retire, 20);
        assert!(hang_spec.repro_line().contains("--watchdog-no-retire 20"));
    }

    #[test]
    fn unknown_names_are_rejected_with_suggestions() {
        let bad_scheme = MINIMAL.replace("\"pra\"", "\"sra\"");
        let e = Campaign::from_toml_str(&bad_scheme).unwrap_err();
        assert!(e.to_string().contains("unknown scheme"), "{e}");
        let bad_workload = MINIMAL.replace("\"lbm\"", "\"lbn\"");
        let e = Campaign::from_toml_str(&bad_workload).unwrap_err();
        assert!(e.to_string().contains("unknown workload"), "{e}");
        let e = Campaign::from_toml_str("schemes = [\"pra\"]\nseeds = [1]").unwrap_err();
        assert!(e.to_string().contains("workloads"), "{e}");
        let e = Campaign::from_toml_str(&format!("{MINIMAL}\ntypo = 3")).unwrap_err();
        assert!(e.to_string().contains("unknown key"), "{e}");
    }

    #[test]
    fn workload_names_are_canonicalised() {
        let text = MINIMAL
            .replace("\"GUPS\"", "\"gups\"")
            .replace("\"MIX1\"", "\"mix1\"");
        let c = Campaign::from_toml_str(&text).unwrap();
        assert_eq!(c.workloads[0], "GUPS");
        assert_eq!(c.workloads[2], "MIX1");
    }

    #[test]
    fn recovery_knob_flows_into_specs_and_repro() {
        let text = format!("{MINIMAL}\nrecovery = true\n");
        let c = Campaign::from_toml_str(&text).unwrap();
        assert!(c.recovery);
        let specs = c.expand();
        assert!(specs.iter().all(|s| s.recovery));
        assert!(specs[0].repro_line().ends_with("--recovery"));
        let plain = Campaign::from_toml_str(MINIMAL).unwrap();
        assert!(!plain.recovery, "recovery defaults off");
        assert!(!plain.expand()[0].repro_line().contains("--recovery"));
    }

    #[test]
    fn checkpoint_knobs_parse_and_flow_into_specs() {
        let text = format!("{MINIMAL}\ncheckpoint_every = 5000\ncheckpoint_dir = \"/tmp/snaps\"\n");
        let c = Campaign::from_toml_str(&text).unwrap();
        assert_eq!(c.checkpoint_every, 5_000);
        assert_eq!(c.checkpoint_dir.as_deref(), Some("/tmp/snaps"));
        let specs = c.expand();
        let spec = &specs[0];
        assert_eq!(spec.checkpoint_every, 5_000);
        let subdir = spec.checkpoint_subdir().unwrap();
        let name = subdir.file_name().unwrap().to_str().unwrap();
        // <config_digest:016x>-<seed>
        let (digest_part, seed_part) = name.split_once('-').unwrap();
        assert_eq!(digest_part.len(), 16, "{name}");
        assert_eq!(
            u64::from_str_radix(digest_part, 16).unwrap(),
            crate::digest::config_digest(spec)
        );
        assert_eq!(seed_part, spec.seed.to_string());
        // Different seeds get different subdirectories.
        let other = specs.iter().find(|s| s.seed != spec.seed).unwrap();
        assert_ne!(subdir, other.checkpoint_subdir().unwrap());
        let line = spec.repro_line();
        assert!(line.contains("--checkpoint-every 5000"), "{line}");
        assert!(
            line.contains(&format!("--checkpoint-dir {}", subdir.display())),
            "{line}"
        );
        // Off by default: no flags, no subdir.
        let plain = Campaign::from_toml_str(MINIMAL).unwrap();
        let spec = &plain.expand()[0];
        assert!(spec.checkpoint_subdir().is_none());
        assert!(
            !spec.repro_line().contains("--checkpoint"),
            "{}",
            spec.repro_line()
        );
    }

    #[test]
    fn half_configured_checkpointing_is_rejected() {
        let e =
            Campaign::from_toml_str(&format!("{MINIMAL}\ncheckpoint_every = 5000\n")).unwrap_err();
        assert!(e.to_string().contains("checkpoint_dir is missing"), "{e}");
        let e = Campaign::from_toml_str(&format!("{MINIMAL}\ncheckpoint_dir = \"/tmp/snaps\"\n"))
            .unwrap_err();
        assert!(e.to_string().contains("checkpoint_every is 0"), "{e}");
        let e =
            Campaign::from_toml_str(&format!("{MINIMAL}\ncheckpoint_dir = \"\"\n")).unwrap_err();
        assert!(e.to_string().contains("non-empty"), "{e}");
    }

    #[test]
    fn repro_line_is_cli_shaped() {
        let c = Campaign::from_toml_str(MINIMAL).unwrap();
        let spec = &c.expand()[0];
        let line = spec.repro_line();
        assert!(
            line.starts_with("pra run --scheme baseline --workload GUPS"),
            "{line}"
        );
        assert!(line.contains("--seed 1"), "{line}");
        assert!(line.contains("--watchdog-no-retire 1000000"), "{line}");
    }
}
