//! Recording and replaying instruction traces.
//!
//! Generators are convenient but opaque; traces make runs inspectable and
//! portable: record any [`InstructionSource`] (including a [`WorkloadGen`])
//! into a [`Trace`], save it to a simple line-oriented text format, reload
//! it elsewhere, and replay it as a source again. Replay loops the trace,
//! so a recorded region can drive arbitrarily long runs the way SimPoint
//! regions do.
//!
//! Format: one op per line — `C <count>`, `L <hex addr>`, or
//! `S <hex addr> <mask bits as hex>`.
//!
//! [`WorkloadGen`]: crate::WorkloadGen

use std::io::{self, BufRead, Write};

use cpu_sim::{InstructionSource, Op};
use mem_model::{PhysAddr, WordMask};

/// A finite recorded instruction stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records `n_ops` operations from a source.
    pub fn record<S: InstructionSource + ?Sized>(source: &mut S, n_ops: usize) -> Self {
        Trace {
            ops: (0..n_ops).map(|_| source.next_op()).collect(),
        }
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Memory operations (loads + stores) in the trace.
    pub fn memory_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, Op::Compute(_)))
            .count()
    }

    /// Serialises the trace to a writer. A `&mut` reference works as the
    /// writer, e.g. `trace.save(&mut file)?`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut writer: W) -> io::Result<()> {
        for op in &self.ops {
            match op {
                Op::Compute(n) => writeln!(writer, "C {n}")?,
                Op::Load(a) => writeln!(writer, "L {:x}", a.raw())?,
                Op::Store(a, m) => writeln!(writer, "S {:x} {:x}", a.raw(), m.bits())?,
            }
        }
        Ok(())
    }

    /// Parses a trace from a reader (the format [`Trace::save`] writes).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed lines; propagates reader errors.
    pub fn load<R: BufRead>(reader: R) -> io::Result<Self> {
        let bad = |line: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed trace line: {line:?}"),
            )
        };
        let mut ops = Vec::new();
        for line in reader.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let kind = parts.next().ok_or_else(|| bad(&line))?;
            let op = match kind {
                "C" => {
                    let n = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad(&line))?;
                    Op::Compute(n)
                }
                "L" => {
                    let a = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| bad(&line))?;
                    Op::Load(PhysAddr::new(a))
                }
                "S" => {
                    let a = parts
                        .next()
                        .and_then(|v| u64::from_str_radix(v, 16).ok())
                        .ok_or_else(|| bad(&line))?;
                    let bits = parts
                        .next()
                        .and_then(|v| u8::from_str_radix(v, 16).ok())
                        .ok_or_else(|| bad(&line))?;
                    if bits == 0 {
                        return Err(bad(&line));
                    }
                    Op::Store(PhysAddr::new(a), WordMask::from_bits(bits))
                }
                _ => return Err(bad(&line)),
            };
            if parts.next().is_some() {
                return Err(bad(&line));
            }
            ops.push(op);
        }
        Ok(Trace { ops })
    }

    /// A replaying source that loops this trace forever.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (an empty loop would hang the core).
    pub fn replay(&self) -> TraceReplay {
        assert!(!self.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            trace: self.clone(),
            pos: 0,
        }
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

/// An [`InstructionSource`] that cycles through a recorded [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    pos: usize,
}

impl TraceReplay {
    /// Completed passes over the trace so far times trace length, plus the
    /// position inside the current pass.
    pub fn ops_replayed(&self) -> usize {
        self.pos
    }
}

impl InstructionSource for TraceReplay {
    fn next_op(&mut self) -> Op {
        let op = self.trace.ops[self.pos % self.trace.len()];
        self.pos += 1;
        op
    }

    fn snap_save_state(&self, w: &mut sim_snap::SnapWriter) {
        // The trace content is a construction parameter; its length doubles
        // as a shape check that the restoring replay loops the same trace.
        w.section("trace-replay");
        w.usize(self.trace.len());
        w.usize(self.pos);
    }

    fn snap_load_state(
        &mut self,
        r: &mut sim_snap::SnapReader<'_>,
    ) -> Result<(), sim_snap::SnapError> {
        r.section("trace-replay")?;
        let len = r.usize()?;
        if len != self.trace.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "trace length mismatch: snapshot has {len}, replay has {}",
                self.trace.len()
            )));
        }
        self.pos = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gups, WorkloadGen};

    #[test]
    fn record_and_replay_match_the_source() {
        let mut original = WorkloadGen::new(gups(), 3, 0);
        let trace = Trace::record(&mut original, 500);
        assert_eq!(trace.len(), 500);
        // A fresh generator with the same seed produces the trace again.
        let mut fresh = WorkloadGen::new(gups(), 3, 0);
        let mut replay = trace.replay();
        for _ in 0..500 {
            assert_eq!(replay.next_op(), fresh.next_op());
        }
        // Replay loops.
        assert_eq!(replay.next_op(), trace.ops()[0]);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut generator = WorkloadGen::new(gups(), 9, 1 << 31);
        let trace = Trace::record(&mut generator, 300);
        let mut buffer = Vec::new();
        trace.save(&mut buffer).unwrap();
        let loaded = Trace::load(buffer.as_slice()).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn load_skips_comments_and_blanks() {
        let text = "# a comment\n\nC 4\nL 40\nS 80 81\n";
        let trace = Trace::load(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.ops()[0], Op::Compute(4));
        assert_eq!(trace.ops()[1], Op::Load(PhysAddr::new(0x40)));
        assert_eq!(
            trace.ops()[2],
            Op::Store(PhysAddr::new(0x80), WordMask::from_bits(0x81))
        );
        assert_eq!(trace.memory_ops(), 2);
    }

    #[test]
    fn load_rejects_garbage() {
        for bad in ["X 1", "L zz", "S 40", "S 40 0", "C 1 2", "L"] {
            assert!(Trace::load(bad.as_bytes()).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = [Op::Compute(1), Op::Load(PhysAddr::new(64))]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_rejected() {
        let _ = Trace::new().replay();
    }

    #[test]
    fn replay_snapshot_restores_cursor() {
        let mut generator = WorkloadGen::new(gups(), 3, 0);
        let trace = Trace::record(&mut generator, 100);
        let mut live = trace.replay();
        for _ in 0..42 {
            live.next_op();
        }
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = trace.replay();
        let mut r = sim_snap::SnapReader::new(&bytes);
        restored.snap_load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.ops_replayed(), 42);
        // Identical from here on, including across the loop boundary.
        for _ in 0..200 {
            assert_eq!(live.next_op(), restored.next_op());
        }
    }

    #[test]
    fn replay_snapshot_rejects_different_trace() {
        let mut generator = WorkloadGen::new(gups(), 3, 0);
        let live = Trace::record(&mut generator, 100).replay();
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save_state(&mut w);
        let bytes = w.into_bytes();

        let mut generator = WorkloadGen::new(gups(), 3, 0);
        let mut other = Trace::record(&mut generator, 50).replay();
        let mut r = sim_snap::SnapReader::new(&bytes);
        let err = other.snap_load_state(&mut r).unwrap_err();
        assert!(
            format!("{err}").contains("trace length mismatch"),
            "unexpected error: {err}"
        );
    }
}
