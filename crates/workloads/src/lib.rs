//! Synthetic workload generators standing in for the paper's SPEC CPU2006 /
//! Olden / microbenchmark traces.
//!
//! The paper drives its simulations with 200M-instruction SimPoint regions
//! of bzip2, lbm, libquantum, mcf, omnetpp (SPEC CPU2006), em3d (Olden),
//! GUPS and LinkedList. Those traces are not redistributable, so this crate
//! provides deterministic synthetic generators whose *aggregate memory
//! characteristics* — the only thing the DRAM-level evaluation consumes —
//! are calibrated to the paper's Table 1 (row-buffer hit rates, read/write
//! traffic and activation shares) and Figure 3 (dirty words per evicted
//! line). See DESIGN.md for the substitution argument and EXPERIMENTS.md
//! for measured-vs-paper calibration numbers.
//!
//! # Example
//!
//! ```
//! use workloads::{all_workloads, WorkloadGen};
//! use cpu_sim::InstructionSource;
//!
//! let suite = all_workloads();
//! assert_eq!(suite.len(), 14); // 8 homogeneous + 6 mixes
//! let (name, apps) = &suite[0];
//! assert_eq!(name, "bzip2");
//! let mut gen = WorkloadGen::new(apps[0], 1, 0);
//! let _op = gen.next_op();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod benches;
mod generator;
mod profile;
mod trace;

pub use benches::{
    all_benchmarks, all_mixes, all_workloads, by_name, bzip2, em3d, gups, lbm, libquantum,
    linked_list, mcf, omnetpp, Mix,
};
pub use generator::WorkloadGen;
pub use profile::{AccessPattern, BenchProfile};
pub use trace::{Trace, TraceReplay};
