//! The paper's benchmark suite, as calibrated synthetic profiles, plus the
//! Table 4 multiprogrammed mixes.
//!
//! Calibration targets come from the paper's Table 1 (row-buffer hit rates,
//! read/write traffic and activation shares) and Figure 3 (dirty words per
//! evicted line); EXPERIMENTS.md records measured-vs-paper numbers for the
//! shipped constants.

use crate::profile::{AccessPattern, BenchProfile};

const KB_LINES: u64 = 1024 / 64; // lines per KB
const MB_LINES: u64 = 1024 * KB_LINES;

/// bzip2 (SPEC CPU2006): the compute-bound outlier. Moderate read
/// streaming over a small working set; writes show almost no row locality.
pub fn bzip2() -> BenchProfile {
    BenchProfile {
        name: "bzip2",
        compute_per_mem: 60,
        store_fraction: 0.28,
        rmw_prob: 0.15,
        pattern: AccessPattern::Streamed {
            streams: 4,
            stream_prob: 0.45,
            burst: 4,
        },
        stores_stream: false,
        footprint_lines: 16 * MB_LINES,
        dirty_words_dist: [0.72, 0.15, 0.05, 0.03, 0.01, 0.01, 0.01, 0.02],
    }
}

/// lbm (SPEC CPU2006): a streaming stencil. High memory intensity, heavy
/// write traffic with real row locality and many fully-dirty lines.
pub fn lbm() -> BenchProfile {
    BenchProfile {
        name: "lbm",
        compute_per_mem: 10,
        store_fraction: 0.52,
        rmw_prob: 0.3,
        pattern: AccessPattern::Streamed {
            streams: 8,
            stream_prob: 0.30,
            burst: 2,
        },
        stores_stream: true,
        footprint_lines: 64 * MB_LINES,
        dirty_words_dist: [0.55, 0.20, 0.08, 0.05, 0.03, 0.02, 0.02, 0.05],
    }
}

/// libquantum (SPEC CPU2006): near-perfect streaming over a large array
/// with single-field updates — the highest row-buffer locality of the
/// suite, for reads and writes alike.
pub fn libquantum() -> BenchProfile {
    BenchProfile {
        name: "libquantum",
        compute_per_mem: 12,
        store_fraction: 0.30,
        rmw_prob: 0.6,
        pattern: AccessPattern::Streamed {
            streams: 2,
            stream_prob: 0.85,
            burst: 2,
        },
        stores_stream: true,
        footprint_lines: 32 * MB_LINES,
        dirty_words_dist: [0.90, 0.06, 0.02, 0.01, 0.005, 0.0025, 0.0025, 0.0],
    }
}

/// mcf (SPEC CPU2006): pointer chasing over a huge graph; read-dominated,
/// poor locality everywhere.
pub fn mcf() -> BenchProfile {
    BenchProfile {
        name: "mcf",
        compute_per_mem: 15,
        store_fraction: 0.20,
        rmw_prob: 0.3,
        pattern: AccessPattern::Streamed {
            streams: 2,
            stream_prob: 0.18,
            burst: 2,
        },
        stores_stream: false,
        footprint_lines: 128 * MB_LINES,
        dirty_words_dist: [0.90, 0.07, 0.02, 0.01, 0.0, 0.0, 0.0, 0.0],
    }
}

/// omnetpp (SPEC CPU2006): discrete-event simulation; moderate read
/// locality from event queues, scattered small writes.
pub fn omnetpp() -> BenchProfile {
    BenchProfile {
        name: "omnetpp",
        compute_per_mem: 22,
        store_fraction: 0.26,
        rmw_prob: 0.2,
        pattern: AccessPattern::Streamed {
            streams: 4,
            stream_prob: 0.60,
            burst: 4,
        },
        stores_stream: false,
        footprint_lines: 32 * MB_LINES,
        dirty_words_dist: [0.80, 0.12, 0.04, 0.02, 0.01, 0.005, 0.005, 0.0],
    }
}

/// em3d (Olden): irregular electromagnetic solver; random node updates,
/// nearly half the traffic is writes.
pub fn em3d() -> BenchProfile {
    BenchProfile {
        name: "em3d",
        compute_per_mem: 10,
        store_fraction: 0.49,
        rmw_prob: 0.92,
        pattern: AccessPattern::Random,
        stores_stream: false,
        footprint_lines: 64 * MB_LINES,
        dirty_words_dist: [0.95, 0.04, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0],
    }
}

/// GUPS: random read-modify-write of single 8-byte words over a giant
/// table — the canonical worst case for row locality.
pub fn gups() -> BenchProfile {
    BenchProfile {
        name: "GUPS",
        compute_per_mem: 8,
        store_fraction: 0.47,
        rmw_prob: 0.97,
        pattern: AccessPattern::Random,
        stores_stream: false,
        footprint_lines: 256 * MB_LINES,
        dirty_words_dist: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    }
}

/// LinkedList: pointer chasing with occasional next-pointer updates.
pub fn linked_list() -> BenchProfile {
    BenchProfile {
        name: "LinkedList",
        compute_per_mem: 12,
        store_fraction: 0.33,
        rmw_prob: 0.9,
        pattern: AccessPattern::Random,
        stores_stream: false,
        footprint_lines: 64 * MB_LINES,
        dirty_words_dist: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    }
}

/// All eight single-application benchmarks, in the paper's Table 1 order.
pub fn all_benchmarks() -> Vec<BenchProfile> {
    vec![
        bzip2(),
        lbm(),
        libquantum(),
        mcf(),
        omnetpp(),
        em3d(),
        gups(),
        linked_list(),
    ]
}

/// Looks a benchmark up by its paper name (case-insensitive).
pub fn by_name(name: &str) -> Option<BenchProfile> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// A named 4-application mix (paper Table 4).
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix name (`MIX1`..`MIX6`).
    pub name: &'static str,
    /// The four applications, one per core.
    pub apps: [BenchProfile; 4],
}

/// The six Table 4 mixes.
pub fn all_mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "MIX1",
            apps: [bzip2(), lbm(), libquantum(), omnetpp()],
        },
        Mix {
            name: "MIX2",
            apps: [mcf(), em3d(), gups(), linked_list()],
        },
        Mix {
            name: "MIX3",
            apps: [bzip2(), mcf(), lbm(), em3d()],
        },
        Mix {
            name: "MIX4",
            apps: [libquantum(), gups(), omnetpp(), linked_list()],
        },
        Mix {
            name: "MIX5",
            apps: [bzip2(), linked_list(), lbm(), gups()],
        },
        Mix {
            name: "MIX6",
            apps: [libquantum(), em3d(), omnetpp(), mcf()],
        },
    ]
}

/// The paper's full 14-workload evaluation set: each application run as
/// four identical instances, plus the six mixes. Returns `(name, apps)`
/// pairs with four profiles each.
pub fn all_workloads() -> Vec<(String, [BenchProfile; 4])> {
    let mut out: Vec<(String, [BenchProfile; 4])> = all_benchmarks()
        .into_iter()
        .map(|b| (b.name.to_string(), [b, b, b, b]))
        .collect();
    out.extend(
        all_mixes()
            .into_iter()
            .map(|m| (m.name.to_string(), m.apps)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for b in all_benchmarks() {
            b.assert_valid();
        }
    }

    #[test]
    fn suite_covers_paper_table1() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            [
                "bzip2",
                "lbm",
                "libquantum",
                "mcf",
                "omnetpp",
                "em3d",
                "GUPS",
                "LinkedList"
            ]
        );
    }

    #[test]
    fn mixes_match_table4() {
        let mixes = all_mixes();
        assert_eq!(mixes.len(), 6);
        assert_eq!(
            mixes[0].apps.iter().map(|b| b.name).collect::<Vec<_>>(),
            ["bzip2", "lbm", "libquantum", "omnetpp"]
        );
        assert_eq!(
            mixes[5].apps.iter().map(|b| b.name).collect::<Vec<_>>(),
            ["libquantum", "em3d", "omnetpp", "mcf"]
        );
        for m in &mixes {
            for app in &m.apps {
                app.assert_valid();
            }
        }
    }

    #[test]
    fn fourteen_workloads() {
        assert_eq!(all_workloads().len(), 14);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(by_name("gups").unwrap().name, "GUPS");
        assert_eq!(by_name("LBM").unwrap().name, "lbm");
        assert!(by_name("dhrystone").is_none());
    }

    #[test]
    fn locality_ordering_matches_paper() {
        // Table 1: libquantum has the best read locality, GUPS/LinkedList/
        // em3d the worst. The profile proxies: stream_prob ordering.
        let streamy = |b: &BenchProfile| match b.pattern {
            AccessPattern::Streamed { stream_prob, .. } => stream_prob,
            AccessPattern::Random => 0.0,
        };
        assert!(streamy(&libquantum()) > streamy(&bzip2()));
        assert!(streamy(&bzip2()) > streamy(&mcf()));
        assert_eq!(streamy(&gups()), 0.0);
    }

    #[test]
    fn write_intensity_ordering_matches_paper() {
        // Table 1 traffic: em3d/GUPS near 50% writes, mcf the least.
        assert!(em3d().store_fraction > mcf().store_fraction);
        assert!(gups().store_fraction > bzip2().store_fraction);
    }
}
