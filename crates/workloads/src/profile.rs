//! Benchmark profiles: the tunable knobs of the synthetic workload
//! generators.
//!
//! Each profile captures the memory characteristics the paper's evaluation
//! is sensitive to (its Table 1 and Figure 3): memory intensity, read/write
//! mix, row-buffer locality (via streaming versus random addressing) and
//! the per-store dirty-word distribution. The constants in
//! [`crate::benches`] are calibrated so the emergent simulator statistics
//! approximate the paper's per-benchmark numbers; EXPERIMENTS.md records
//! the comparison.

use mem_model::WORDS_PER_LINE;

/// How a benchmark walks its address space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// A mixture of sequential streams and uniform-random accesses.
    ///
    /// With probability `stream_prob`, the next access advances one of
    /// `streams` sequential line streams (producing DRAM row locality:
    /// 128 consecutive lines share a row); otherwise it hits a uniformly
    /// random line. Models array/stencil codes (lbm, libquantum) and mixed
    /// codes (bzip2, omnetpp).
    Streamed {
        /// Concurrent sequential streams.
        streams: u32,
        /// Probability an access comes from a stream.
        stream_prob: f64,
        /// Consecutive accesses taken from a stream once picked (>= 1).
        /// Bursting clusters misses onto one DRAM row, which is what turns
        /// streaming into read row-buffer hits.
        burst: u32,
    },
    /// Uniformly random lines over the footprint: pointer chasing and
    /// scattered updates (mcf, em3d, GUPS, LinkedList).
    Random,
}

/// A synthetic benchmark's parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Non-memory instructions between memory operations (memory intensity:
    /// smaller is more intensive; bzip2 is the compute-bound outlier).
    pub compute_per_mem: u32,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
    /// Probability that a store targets the most recently loaded line
    /// (read-modify-write behaviour; GUPS is the pure case).
    pub rmw_prob: f64,
    /// Address pattern (drives loads; see `stores_stream` for stores).
    pub pattern: AccessPattern,
    /// Whether non-RMW stores follow the streamed pattern (array-writing
    /// codes like lbm/libquantum) or scatter uniformly over the footprint
    /// (everything else — this is what makes write row locality collapse
    /// for most benchmarks, Table 1's asymmetry).
    pub stores_stream: bool,
    /// Footprint in cache lines (per core).
    pub footprint_lines: u64,
    /// Distribution of dirty words per store: `dist[k]` is the probability
    /// the store dirties `k+1` words (contiguous, random start). This is
    /// the knob behind the paper's Figure 3 shape.
    pub dirty_words_dist: [f64; WORDS_PER_LINE],
}

impl BenchProfile {
    /// Checks distribution and parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are out of range or the dirty-word
    /// distribution does not sum to 1.
    pub fn assert_valid(&self) {
        assert!(
            self.compute_per_mem < 10_000,
            "{}: implausible intensity",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.store_fraction),
            "{}: store fraction out of range",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.rmw_prob),
            "{}: rmw prob out of range",
            self.name
        );
        if let AccessPattern::Streamed {
            streams,
            stream_prob,
            burst,
        } = self.pattern
        {
            assert!(streams > 0, "{}: need at least one stream", self.name);
            assert!(
                burst >= 1,
                "{}: burst must be at least one access",
                self.name
            );
            assert!(
                (0.0..=1.0).contains(&stream_prob),
                "{}: stream prob out of range",
                self.name
            );
        }
        assert!(
            self.footprint_lines >= 64,
            "{}: footprint too small to be meaningful",
            self.name
        );
        let sum: f64 = self.dirty_words_dist.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{}: dirty-word distribution sums to {sum}, expected 1",
            self.name
        );
        assert!(
            self.dirty_words_dist
                .iter()
                .all(|&p| (0.0..=1.0).contains(&p)),
            "{}: negative probability",
            self.name
        );
    }

    /// Expected dirty words per store under the profile's distribution.
    pub fn expected_dirty_words(&self) -> f64 {
        self.dirty_words_dist
            .iter()
            .enumerate()
            .map(|(k, &p)| (k as f64 + 1.0) * p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> BenchProfile {
        BenchProfile {
            name: "test",
            compute_per_mem: 4,
            store_fraction: 0.4,
            rmw_prob: 0.5,
            pattern: AccessPattern::Random,
            stores_stream: false,
            footprint_lines: 1 << 20,
            dirty_words_dist: [0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        }
    }

    #[test]
    fn valid_profile_passes() {
        valid().assert_valid();
        assert!((valid().expected_dirty_words() - 1.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_distribution_rejected() {
        let mut p = valid();
        p.dirty_words_dist = [0.5; 8];
        p.assert_valid();
    }

    #[test]
    #[should_panic(expected = "store fraction")]
    fn bad_store_fraction_rejected() {
        let mut p = valid();
        p.store_fraction = 1.5;
        p.assert_valid();
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let mut p = valid();
        p.pattern = AccessPattern::Streamed {
            streams: 0,
            stream_prob: 0.5,
            burst: 1,
        };
        p.assert_valid();
    }
}
