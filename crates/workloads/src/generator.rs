//! The deterministic instruction-stream generator.

use std::collections::VecDeque;

use cpu_sim::{InstructionSource, Op};
use mem_model::rng::Rng;
use mem_model::{PhysAddr, WordMask, LINE_BYTES, WORDS_PER_LINE};

use crate::profile::{AccessPattern, BenchProfile};

/// Generates an infinite instruction stream from a [`BenchProfile`].
///
/// The stream strictly alternates `Compute(compute_per_mem)` blocks with
/// memory operations. Determinism: a given `(profile, seed, base)` triple
/// always produces the same stream, so experiments are reproducible
/// run-to-run.
///
/// # Example
///
/// ```
/// use workloads::{gups, WorkloadGen};
/// use cpu_sim::InstructionSource;
///
/// let mut g = WorkloadGen::new(gups(), 42, 0);
/// let first = g.next_op();
/// let mut again = WorkloadGen::new(gups(), 42, 0);
/// assert_eq!(first, again.next_op(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    profile: BenchProfile,
    rng: Rng,
    /// Current line of each sequential stream.
    streams: Vec<u64>,
    /// Base byte address of this instance's footprint (per-core isolation).
    base: u64,
    /// Recently loaded lines, consumed (most-recent first) by
    /// read-modify-write stores: each store pairs with one prior load, as
    /// in GUPS's load-update-store loop, so RMW stores hit the cache and
    /// generate no write-allocate fill.
    loaded_history: VecDeque<u64>,
    /// Most recent load, kept (not consumed) as the RMW fallback when the
    /// history is empty: a burst of stores then re-dirties the same line
    /// instead of scattering fills, as a tight update loop would.
    last_loaded: Option<u64>,
    /// Active stream burst: `(stream index, accesses remaining)`. Bursting
    /// keeps consecutive accesses on one stream so misses cluster into the
    /// same DRAM row (the source of read row-buffer hits).
    burst: Option<(usize, u32)>,
    /// Pending memory op: emitted after the interleaved compute block.
    emit_compute_next: bool,
}

impl WorkloadGen {
    /// Creates a generator over the footprint starting at `base` (use one
    /// disjoint base per core to model separate address spaces).
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid.
    pub fn new(profile: BenchProfile, seed: u64, base: u64) -> Self {
        profile.assert_valid();
        let mut rng = Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15 ^ base);
        let streams = match profile.pattern {
            AccessPattern::Streamed { streams, .. } => (0..streams)
                .map(|_| rng.random_range(0..profile.footprint_lines))
                .collect(),
            AccessPattern::Random => Vec::new(),
        };
        WorkloadGen {
            profile,
            rng,
            streams,
            base,
            loaded_history: VecDeque::with_capacity(16),
            last_loaded: None,
            burst: None,
            emit_compute_next: true,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    fn advance_stream(&mut self, idx: usize) -> u64 {
        let line = self.streams[idx];
        self.streams[idx] = (line + 1) % self.profile.footprint_lines;
        line
    }

    fn pick_line(&mut self) -> u64 {
        match self.profile.pattern {
            AccessPattern::Streamed {
                stream_prob, burst, ..
            } => {
                if let Some((idx, remaining)) = self.burst {
                    self.burst = (remaining > 1).then_some((idx, remaining - 1));
                    return self.advance_stream(idx);
                }
                if self.rng.random_bool(stream_prob) {
                    let idx = self.rng.random_range(0..self.streams.len());
                    if burst > 1 {
                        self.burst = Some((idx, burst - 1));
                    }
                    self.advance_stream(idx)
                } else {
                    self.rng.random_range(0..self.profile.footprint_lines)
                }
            }
            AccessPattern::Random => self.rng.random_range(0..self.profile.footprint_lines),
        }
    }

    /// Placement of a non-RMW store: streamed for array-writing codes,
    /// scattered otherwise.
    fn pick_store_line(&mut self) -> u64 {
        if self.profile.stores_stream {
            self.pick_line()
        } else {
            self.rng.random_range(0..self.profile.footprint_lines)
        }
    }

    fn addr(&self, line: u64) -> PhysAddr {
        PhysAddr::new(self.base + line * LINE_BYTES)
    }

    fn sample_dirty_mask(&mut self, line: u64) -> WordMask {
        let mut x: f64 = self.rng.random_f64();
        let mut words = WORDS_PER_LINE; // fall through to full on fp residue
        for (k, &p) in self.profile.dirty_words_dist.iter().enumerate() {
            if x < p {
                words = k + 1;
                break;
            }
            x -= p;
        }
        if words == WORDS_PER_LINE {
            return WordMask::FULL;
        }
        // Contiguous run whose start is a *deterministic* function of the
        // line: the written field of a record lives at a fixed offset, so
        // repeated stores to one line re-dirty the same words instead of
        // accumulating a wide mask.
        let span = (WORDS_PER_LINE - words + 1) as u64;
        let start = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % span;
        WordMask::from_words((start as u8..start as u8 + words as u8).collect::<Vec<_>>())
    }

    fn memory_op(&mut self) -> Op {
        let is_store = self.rng.random_bool(self.profile.store_fraction);
        if is_store {
            let rmw_target = if self.rng.random_bool(self.profile.rmw_prob) {
                self.loaded_history.pop_back().or(self.last_loaded)
            } else {
                None
            };
            let line = rmw_target.unwrap_or_else(|| self.pick_store_line());
            let mask = self.sample_dirty_mask(line);
            Op::Store(self.addr(line), mask)
        } else {
            let line = self.pick_line();
            if self.loaded_history.len() == 16 {
                self.loaded_history.pop_front();
            }
            self.loaded_history.push_back(line);
            self.last_loaded = Some(line);
            Op::Load(self.addr(line))
        }
    }
}

impl InstructionSource for WorkloadGen {
    fn next_op(&mut self) -> Op {
        if self.emit_compute_next && self.profile.compute_per_mem > 0 {
            self.emit_compute_next = false;
            Op::Compute(self.profile.compute_per_mem)
        } else {
            self.emit_compute_next = true;
            self.memory_op()
        }
    }

    fn snap_save_state(&self, w: &mut sim_snap::SnapWriter) {
        // `profile` and `base` are construction parameters; everything the
        // stream position depends on is below.
        w.section("workload-gen");
        for word in self.rng.state() {
            w.u64(word);
        }
        w.seq(self.streams.len());
        for &line in &self.streams {
            w.u64(line);
        }
        w.seq(self.loaded_history.len());
        for &line in &self.loaded_history {
            w.u64(line);
        }
        w.opt_u64(self.last_loaded);
        w.bool(self.burst.is_some());
        if let Some((idx, remaining)) = self.burst {
            w.usize(idx);
            w.u32(remaining);
        }
        w.bool(self.emit_compute_next);
    }

    fn snap_load_state(
        &mut self,
        r: &mut sim_snap::SnapReader<'_>,
    ) -> Result<(), sim_snap::SnapError> {
        r.section("workload-gen")?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng.set_state(state);
        let n = r.seq()?;
        if n != self.streams.len() {
            return Err(sim_snap::SnapError::Decode(format!(
                "stream count mismatch: snapshot has {n}, profile has {}",
                self.streams.len()
            )));
        }
        for line in &mut self.streams {
            *line = r.u64()?;
        }
        let n = r.seq()?;
        self.loaded_history.clear();
        for _ in 0..n {
            self.loaded_history.push_back(r.u64()?);
        }
        self.last_loaded = r.opt_u64()?;
        self.burst = if r.bool()? {
            Some((r.usize()?, r.u32()?))
        } else {
            None
        };
        self.emit_compute_next = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benches;

    fn count_ops(profile: BenchProfile, n: usize) -> (usize, usize, usize) {
        let mut g = WorkloadGen::new(profile, 7, 0);
        let (mut c, mut l, mut s) = (0, 0, 0);
        for _ in 0..n {
            match g.next_op() {
                Op::Compute(_) => c += 1,
                Op::Load(_) => l += 1,
                Op::Store(..) => s += 1,
            }
        }
        (c, l, s)
    }

    #[test]
    fn alternates_compute_and_memory() {
        let (c, l, s) = count_ops(benches::gups(), 10_000);
        assert_eq!(c, 5_000);
        assert_eq!(l + s, 5_000);
    }

    #[test]
    fn store_fraction_respected() {
        let p = benches::gups();
        let (_, l, s) = count_ops(p, 40_000);
        let frac = s as f64 / (l + s) as f64;
        assert!(
            (frac - p.store_fraction).abs() < 0.03,
            "store fraction {frac} vs target {}",
            p.store_fraction
        );
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = benches::linked_list();
        let mut g = WorkloadGen::new(p, 3, 1 << 30);
        for _ in 0..10_000 {
            if let Op::Load(a) | Op::Store(a, _) = g.next_op() {
                assert!(a.raw() >= 1 << 30);
                assert!(a.raw() < (1 << 30) + p.footprint_lines * 64);
            }
        }
    }

    #[test]
    fn determinism_across_instances() {
        let a: Vec<Op> = {
            let mut g = WorkloadGen::new(benches::mcf(), 11, 0);
            (0..1000).map(|_| g.next_op()).collect()
        };
        let b: Vec<Op> = {
            let mut g = WorkloadGen::new(benches::mcf(), 11, 0);
            (0..1000).map(|_| g.next_op()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGen::new(benches::mcf(), 1, 0);
        let mut b = WorkloadGen::new(benches::mcf(), 2, 0);
        let ops_a: Vec<Op> = (0..100).map(|_| a.next_op()).collect();
        let ops_b: Vec<Op> = (0..100).map(|_| b.next_op()).collect();
        assert_ne!(ops_a, ops_b);
    }

    #[test]
    fn gups_stores_are_single_word_rmw() {
        let mut g = WorkloadGen::new(benches::gups(), 5, 0);
        let mut last_load = None;
        let mut rmw_hits = 0;
        let mut stores = 0;
        for _ in 0..20_000 {
            match g.next_op() {
                Op::Load(a) => last_load = Some(a.line_number()),
                Op::Store(a, mask) => {
                    assert_eq!(mask.count_words(), 1, "GUPS dirties single words");
                    stores += 1;
                    if Some(a.line_number()) == last_load {
                        rmw_hits += 1;
                    }
                }
                Op::Compute(_) => {}
            }
        }
        assert!(stores > 0);
        // One store pairs with one load; a store arriving after another
        // store picks a fresh line. With ~53% loads, roughly half the
        // stores land on the just-loaded line.
        assert!(
            rmw_hits as f64 / stores as f64 > 0.4,
            "GUPS stores are read-modify-write: {rmw_hits}/{stores}"
        );
    }

    #[test]
    fn streamed_pattern_produces_sequential_runs() {
        let p = benches::libquantum();
        let mut g = WorkloadGen::new(p, 9, 0);
        let mut lines = Vec::new();
        for _ in 0..40_000 {
            if let Op::Load(a) = g.next_op() {
                lines.push(a.line_number());
            }
        }
        // Count successor pairs anywhere within a small window: streams
        // interleave, so check that many accesses are line+1 of a recent one.
        let mut sequential = 0;
        for w in lines.windows(8) {
            let last = w[7];
            if w[..7].iter().any(|&p| p + 1 == last) {
                sequential += 1;
            }
        }
        let frac = sequential as f64 / (lines.len() - 7) as f64;
        assert!(
            frac > 0.5,
            "libquantum should stream, sequential fraction {frac}"
        );
    }

    #[test]
    fn snapshot_restores_mid_stream_position() {
        let mut live = WorkloadGen::new(benches::mcf(), 11, 0);
        for _ in 0..5_000 {
            live.next_op();
        }
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save_state(&mut w);
        let bytes = w.into_bytes();

        // Different seed: every overlaid field must come from the snapshot.
        let mut restored = WorkloadGen::new(benches::mcf(), 999, 0);
        let mut r = sim_snap::SnapReader::new(&bytes);
        restored.snap_load_state(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..5_000 {
            assert_eq!(live.next_op(), restored.next_op());
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_stream_shape() {
        let live = WorkloadGen::new(benches::libquantum(), 1, 0);
        let mut w = sim_snap::SnapWriter::new();
        live.snap_save_state(&mut w);
        let bytes = w.into_bytes();

        // GUPS is a random pattern: zero sequential streams, so the shape
        // check must refuse the overlay.
        let mut other = WorkloadGen::new(benches::gups(), 1, 0);
        let mut r = sim_snap::SnapReader::new(&bytes);
        let err = other.snap_load_state(&mut r).unwrap_err();
        assert!(
            format!("{err}").contains("stream count mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn dirty_mask_distribution_matches_profile() {
        let p = benches::lbm();
        let mut g = WorkloadGen::new(p, 13, 0);
        let mut hist = [0u64; 8];
        let mut stores = 0u64;
        for _ in 0..200_000 {
            if let Op::Store(_, mask) = g.next_op() {
                hist[(mask.count_words() - 1) as usize] += 1;
                stores += 1;
            }
        }
        for (k, (&count, &expected)) in hist.iter().zip(&p.dirty_words_dist).enumerate() {
            let measured = count as f64 / stores as f64;
            assert!(
                (measured - expected).abs() < 0.02,
                "bucket {k}: measured {measured} vs profile {expected}"
            );
        }
    }
}
