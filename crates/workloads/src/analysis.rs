//! Stream analysis: measures the emergent properties of any instruction
//! source — the quantities the profiles are calibrated against — without
//! running the full simulator. Used by the `pra` CLI's `trace info` and by
//! calibration tests; also the tool a user reaches for when shaping a
//! custom [`BenchProfile`](crate::BenchProfile) to match their application.

use std::collections::HashSet;

use cpu_sim::{InstructionSource, Op};
use mem_model::WORDS_PER_LINE;

/// Aggregate properties of an instruction stream prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Operations analysed.
    pub ops: u64,
    /// Non-memory instructions (the sum of `Compute` payloads).
    pub compute_instructions: u64,
    /// Loads seen.
    pub loads: u64,
    /// Stores seen.
    pub stores: u64,
    /// Distinct cache lines touched.
    pub footprint_lines: u64,
    /// Fraction of memory ops whose line is exactly the previous memory
    /// op's line plus one (raw sequentiality).
    pub sequential_fraction: f64,
    /// Fraction of memory ops whose line was already touched earlier
    /// (temporal reuse at infinite capacity).
    pub reuse_fraction: f64,
    /// Distribution of dirty words per store (`hist[k]` = `k+1` words).
    pub dirty_words_hist: [u64; WORDS_PER_LINE],
}

impl StreamSummary {
    /// Store share of memory operations.
    pub fn store_fraction(&self) -> f64 {
        let mem = self.loads + self.stores;
        if mem == 0 {
            0.0
        } else {
            self.stores as f64 / mem as f64
        }
    }

    /// Average non-memory instructions per memory operation.
    pub fn compute_per_mem(&self) -> f64 {
        let mem = self.loads + self.stores;
        if mem == 0 {
            0.0
        } else {
            self.compute_instructions as f64 / mem as f64
        }
    }

    /// Mean dirty words per store.
    pub fn avg_dirty_words(&self) -> f64 {
        let stores: u64 = self.dirty_words_hist.iter().sum();
        if stores == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .dirty_words_hist
            .iter()
            .enumerate()
            .map(|(k, &c)| (k as u64 + 1) * c)
            .sum();
        weighted as f64 / stores as f64
    }
}

/// Analyses the next `n_ops` operations of a source.
///
/// # Panics
///
/// Panics if `n_ops == 0`.
pub fn analyze<S: InstructionSource + ?Sized>(source: &mut S, n_ops: u64) -> StreamSummary {
    assert!(n_ops > 0, "analyse at least one op");
    let mut summary = StreamSummary {
        ops: n_ops,
        compute_instructions: 0,
        loads: 0,
        stores: 0,
        footprint_lines: 0,
        sequential_fraction: 0.0,
        reuse_fraction: 0.0,
        dirty_words_hist: [0; WORDS_PER_LINE],
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut last_line: Option<u64> = None;
    let mut sequential = 0u64;
    let mut reused = 0u64;
    for _ in 0..n_ops {
        let line = match source.next_op() {
            Op::Compute(n) => {
                summary.compute_instructions += u64::from(n);
                continue;
            }
            Op::Load(a) => {
                summary.loads += 1;
                a.line_number()
            }
            Op::Store(a, mask) => {
                summary.stores += 1;
                summary.dirty_words_hist[(mask.count_words() - 1) as usize] += 1;
                a.line_number()
            }
        };
        if last_line == Some(line.wrapping_sub(1)) {
            sequential += 1;
        }
        if !seen.insert(line) {
            reused += 1;
        }
        last_line = Some(line);
    }
    summary.footprint_lines = seen.len() as u64;
    let mem = summary.loads + summary.stores;
    if mem > 0 {
        summary.sequential_fraction = sequential as f64 / mem as f64;
        summary.reuse_fraction = reused as f64 / mem as f64;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gups, libquantum, WorkloadGen};

    #[test]
    fn gups_summary_matches_profile() {
        let mut g = WorkloadGen::new(gups(), 1, 0);
        let s = analyze(&mut g, 100_000);
        assert!((s.store_fraction() - 0.47).abs() < 0.02);
        assert!((s.compute_per_mem() - 8.0).abs() < 0.5);
        assert!(
            (s.avg_dirty_words() - 1.0).abs() < 1e-9,
            "GUPS stores one word"
        );
        assert!(s.sequential_fraction < 0.01, "random traffic");
        assert!(s.footprint_lines > 10_000);
    }

    #[test]
    fn libquantum_is_sequential_gups_is_not() {
        let mut quantum = WorkloadGen::new(libquantum(), 1, 0);
        let mut random = WorkloadGen::new(gups(), 1, 0);
        let sq = analyze(&mut quantum, 50_000);
        let sr = analyze(&mut random, 50_000);
        assert!(
            sq.sequential_fraction > 10.0 * sr.sequential_fraction.max(0.001),
            "libquantum {:.3} vs GUPS {:.3}",
            sq.sequential_fraction,
            sr.sequential_fraction
        );
    }

    #[test]
    fn reuse_reflects_rmw() {
        // GUPS re-touches almost every loaded line with its paired store.
        let mut g = WorkloadGen::new(gups(), 1, 0);
        let s = analyze(&mut g, 100_000);
        assert!(s.reuse_fraction > 0.3, "RMW reuse {:.3}", s.reuse_fraction);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn zero_ops_rejected() {
        let mut g = WorkloadGen::new(gups(), 1, 0);
        let _ = analyze(&mut g, 0);
    }
}
