//! Deterministic fault injection for the PRA simulation stack.
//!
//! The PRA mechanism is only correct if the mask-transfer path and the
//! cache's fine-grained dirty bits never silently lose state. This crate
//! provides the adversarial half of that argument: a seed-driven
//! [`FaultPlan`] describing *what* to perturb and how often, and per-domain
//! [`FaultInjector`]s that the DRAM controller and the cache hierarchy
//! consult behind `Option` hooks — zero branches taken, zero RNG draws,
//! and bit-identical behaviour when no injector is attached.
//!
//! # Fault taxonomy
//!
//! | knob | domain | models |
//! |---|---|---|
//! | `mask_corrupt_rate` | DRAM | a single-bit upset on the PRA mask transfer (Fig. 7a's extra address-bus cycle); detected by the even-parity bit and degraded to a full-row activation |
//! | `mask_escape_rate` | DRAM | the fraction of mask upsets that flip *two* bits — even parity matches and the corruption escapes detection |
//! | `persistent_rate` | DRAM | the fraction of mask upsets that are *persistent*: the (rank, bank, row) site joins a sticky set and every later masked activation there faults deterministically |
//! | `transient_burst_len` | DRAM | transient mask upsets repeat for this many consecutive masked activations of the same site before clearing (1 = single-shot) |
//! | `command_drop_rate` | DRAM | a command lost on the command bus; the scheduler's queue entry survives and the command retries |
//! | `command_stretch_rate` | DRAM | an activation whose mask transfer is retried, adding `command_stretch_cycles` to its activate-to-column delay |
//! | `refresh_interval_divisor` | DRAM | thermal refresh stress: tREFI divided by this factor |
//! | `dirty_flip_rate` | cache | an FGD dirty-bit upset on an L2 eviction; fail-safe direction only (a spurious *set* bit widens the writeback, never loses data) |
//!
//! # Determinism guarantee
//!
//! Each injector owns a private [`mem_model::rng::Rng`] seeded from
//! `plan.seed` XOR a per-[`Domain`] salt, and every injection decision is a
//! pure function of that stream. Two runs of the same configuration and the
//! same plan make identical decisions at identical points, so end-to-end
//! reports (and their `state_digest()`) are byte-identical. Knobs set to
//! zero draw nothing from the stream.
//!
//! # Example
//!
//! ```
//! use sim_fault::{Domain, FaultPlan};
//!
//! let plan = FaultPlan::from_toml_str(
//!     "# stress plan\nseed = 7\nmask_corrupt_rate = 0.25\n",
//! )
//! .unwrap();
//! let mut a = plan.injector(Domain::Dram);
//! let mut b = plan.injector(Domain::Dram);
//! let mask = mem_model::WordMask::single(3);
//! assert_eq!(a.corrupt_mask(mask), b.corrupt_mask(mask));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use mem_model::rng::Rng;
use mem_model::{WordMask, WORDS_PER_LINE};
use sim_obs::MetricsRegistry;
use sim_snap::{SnapError, SnapReader, SnapState, SnapWriter};

/// Even parity of a PRA mask's eight bits — the redundancy bit the
/// controller drives alongside the mask-transfer cycle. A single-bit upset
/// always flips the parity and is therefore always detected; an even number
/// of flips escapes (documented limitation of single-parity protection).
pub fn even_parity(mask: WordMask) -> bool {
    mask.bits().count_ones().is_multiple_of(2)
}

/// Error returned when a fault plan cannot be parsed or is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

fn plan_err(msg: impl Into<String>) -> PlanError {
    PlanError(msg.into())
}

/// Which simulation layer an injector perturbs. Each domain derives its own
/// RNG stream from the plan seed, so attaching the cache injector cannot
/// shift the DRAM domain's decisions (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The DRAM command path (mask transfers, command bus, refresh).
    Dram,
    /// The cache hierarchy (FGD dirty bits).
    Cache,
}

impl Domain {
    const fn salt(self) -> u64 {
        match self {
            Domain::Dram => 0x4452_414D_5F46_4C54,  // "DRAM_FLT"
            Domain::Cache => 0x4341_4348_5F46_4C54, // "CACH_FLT"
        }
    }
}

/// A declarative description of the faults one run injects.
///
/// All rates are per-opportunity probabilities in `[0, 1]`; the
/// [`FaultPlan::disabled`] plan (all zeros, divisor 1) injects nothing.
/// Plans parse from a minimal TOML subset via
/// [`FaultPlan::from_toml_str`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injectors' deterministic RNG streams.
    pub seed: u64,
    /// Probability a partial activation's mask transfer suffers a
    /// single-bit upset.
    pub mask_corrupt_rate: f64,
    /// Fraction of mask upsets that flip two bits instead of one. Even
    /// parity matches, so the chip cannot detect the corruption — the
    /// activation proceeds with the wrong coverage (counted as an escape).
    pub mask_escape_rate: f64,
    /// Fraction of detected mask upsets that are *persistent*: the
    /// faulted (rank, bank, row) site joins a sticky set, and every later
    /// masked activation of that site faults deterministically (retries
    /// cannot succeed until the row is demoted to full-row activations).
    pub persistent_rate: f64,
    /// How many consecutive masked activations of the same site a
    /// *transient* mask upset corrupts before clearing. 1 (the default)
    /// is a single-shot upset — the first retry succeeds.
    pub transient_burst_len: u64,
    /// Probability an issued column/activate command is lost on the bus.
    pub command_drop_rate: f64,
    /// Probability an activation is stretched by
    /// [`command_stretch_cycles`](FaultPlan::command_stretch_cycles).
    pub command_stretch_rate: f64,
    /// Extra activate-to-column cycles a stretched activation pays.
    pub command_stretch_cycles: u64,
    /// Probability an L2 eviction suffers a spurious FGD dirty-bit set.
    pub dirty_flip_rate: f64,
    /// tREFI is divided by this factor (1 = nominal; larger = thermal
    /// refresh stress).
    pub refresh_interval_divisor: u64,
}

impl FaultPlan {
    /// The all-off plan: every rate zero, nominal refresh.
    pub const fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            mask_corrupt_rate: 0.0,
            mask_escape_rate: 0.0,
            persistent_rate: 0.0,
            transient_burst_len: 1,
            command_drop_rate: 0.0,
            command_stretch_rate: 0.0,
            command_stretch_cycles: 0,
            dirty_flip_rate: 0.0,
            refresh_interval_divisor: 1,
        }
    }

    /// `true` when this plan can never inject anything — the caller may
    /// skip attaching injectors entirely, keeping the no-fault fast path
    /// bit-identical to a build without this crate.
    pub fn is_noop(&self) -> bool {
        self.mask_corrupt_rate == 0.0
            && self.command_drop_rate == 0.0
            && self.command_stretch_rate == 0.0
            && self.dirty_flip_rate == 0.0
            && self.refresh_interval_divisor <= 1
    }

    /// Checks rates and factors for consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first offending knob: rates must
    /// lie in `[0, 1]`, the refresh divisor must be at least 1, and a
    /// non-zero stretch rate needs a non-zero stretch length.
    pub fn validate(&self) -> Result<(), PlanError> {
        for (name, rate) in [
            ("mask_corrupt_rate", self.mask_corrupt_rate),
            ("mask_escape_rate", self.mask_escape_rate),
            ("persistent_rate", self.persistent_rate),
            ("command_drop_rate", self.command_drop_rate),
            ("command_stretch_rate", self.command_stretch_rate),
            ("dirty_flip_rate", self.dirty_flip_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(plan_err(format!(
                    "{name} must be within [0, 1], got {rate}"
                )));
            }
        }
        if self.refresh_interval_divisor == 0 {
            return Err(plan_err("refresh_interval_divisor must be at least 1"));
        }
        if self.transient_burst_len == 0 {
            return Err(plan_err(
                "transient_burst_len must be at least 1 (1 = single-shot)",
            ));
        }
        if self.command_stretch_rate > 0.0 && self.command_stretch_cycles == 0 {
            return Err(plan_err(
                "command_stretch_rate needs command_stretch_cycles >= 1",
            ));
        }
        Ok(())
    }

    /// Parses a plan from a minimal TOML subset: `key = value` lines, `#`
    /// comments, and an optional `[faults]` section header. Unknown keys
    /// are errors (a typo must not silently disable a fault).
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the offending line *and key*: parse
    /// failures, unknown keys/sections, and out-of-range values are all
    /// reported as `line N: <key> ...`. Cross-key inconsistencies (which
    /// have no single offending line) still come from
    /// [`FaultPlan::validate`] without a line number.
    pub fn from_toml_str(text: &str) -> Result<Self, PlanError> {
        let mut plan = FaultPlan::disabled();
        for (index, raw) in text.lines().enumerate() {
            let lineno = index + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                if line == "[faults]" {
                    continue;
                }
                return Err(plan_err(format!(
                    "line {lineno}: unknown section {line:?} (only [faults] is allowed)"
                )));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(plan_err(format!(
                    "line {lineno}: expected `key = value`, got {line:?}"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            let as_u64 = |v: &str| {
                v.parse::<u64>().map_err(|_| {
                    plan_err(format!("line {lineno}: {key} wants an integer, got {v:?}"))
                })
            };
            // Positive integer: an integer with a per-key lower bound of 1.
            let as_u64_min1 = |v: &str| {
                let n = as_u64(v)?;
                if n == 0 {
                    return Err(plan_err(format!(
                        "line {lineno}: {key} must be at least 1, got {v}"
                    )));
                }
                Ok(n)
            };
            let as_rate = |v: &str| {
                let rate = v.parse::<f64>().map_err(|_| {
                    plan_err(format!("line {lineno}: {key} wants a number, got {v:?}"))
                })?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(plan_err(format!(
                        "line {lineno}: {key} must be within [0, 1], got {v}"
                    )));
                }
                Ok(rate)
            };
            match key {
                "seed" => plan.seed = as_u64(value)?,
                "mask_corrupt_rate" => plan.mask_corrupt_rate = as_rate(value)?,
                "mask_escape_rate" => plan.mask_escape_rate = as_rate(value)?,
                "persistent_rate" => plan.persistent_rate = as_rate(value)?,
                "transient_burst_len" => plan.transient_burst_len = as_u64_min1(value)?,
                "command_drop_rate" => plan.command_drop_rate = as_rate(value)?,
                "command_stretch_rate" => plan.command_stretch_rate = as_rate(value)?,
                "command_stretch_cycles" => plan.command_stretch_cycles = as_u64(value)?,
                "dirty_flip_rate" => plan.dirty_flip_rate = as_rate(value)?,
                "refresh_interval_divisor" => plan.refresh_interval_divisor = as_u64_min1(value)?,
                other => {
                    return Err(plan_err(format!("line {lineno}: unknown key {other:?}")));
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// An injector for one simulation domain, with its own derived RNG
    /// stream.
    pub fn injector(&self, domain: Domain) -> FaultInjector {
        FaultInjector {
            plan: *self,
            rng: Rng::seed_from_u64(self.seed ^ domain.salt()),
            counts: FaultCounts::default(),
            persistent_sites: BTreeSet::new(),
            burst_remaining: BTreeMap::new(),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

/// Counters over every fault event an injector produced and how the
/// hardened layers responded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Total fault events injected (sum of the specific counters below).
    pub injected: u64,
    /// Injected faults the hardened path *noticed* (parity mismatches).
    pub detected: u64,
    /// Detected faults answered by graceful degradation (full-row
    /// fallback activations).
    pub degraded: u64,
    /// Injected faults that escaped detection entirely (even-flip mask
    /// corruptions whose parity still matched). Always `<= injected`;
    /// `masks_corrupted == detected-mask-faults + escaped` in the
    /// parity-protected model.
    pub escaped: u64,
    /// PRA mask transfers corrupted.
    pub masks_corrupted: u64,
    /// Commands dropped on the command bus.
    pub commands_dropped: u64,
    /// Activations stretched.
    pub commands_stretched: u64,
    /// Spurious FGD dirty bits set.
    pub dirty_bits_flipped: u64,
}

impl FaultCounts {
    /// Field-wise sum, for merging per-domain injector counts into one
    /// report record.
    #[must_use]
    pub fn merged(self, other: FaultCounts) -> FaultCounts {
        FaultCounts {
            injected: self.injected + other.injected,
            detected: self.detected + other.detected,
            degraded: self.degraded + other.degraded,
            escaped: self.escaped + other.escaped,
            masks_corrupted: self.masks_corrupted + other.masks_corrupted,
            commands_dropped: self.commands_dropped + other.commands_dropped,
            commands_stretched: self.commands_stretched + other.commands_stretched,
            dirty_bits_flipped: self.dirty_bits_flipped + other.dirty_bits_flipped,
        }
    }

    /// Mirrors the counts into a metrics registry under
    /// `{prefix}.injected`, `{prefix}.detected`, `{prefix}.degraded` and
    /// the per-kind counters.
    pub fn publish_to(&self, registry: &mut MetricsRegistry, prefix: &str) {
        let mut set = |name: String, value: u64| {
            let id = registry.counter(&name);
            registry.set_counter(id, value);
        };
        set(format!("{prefix}.injected"), self.injected);
        set(format!("{prefix}.detected"), self.detected);
        set(format!("{prefix}.degraded"), self.degraded);
        set(format!("{prefix}.masks_corrupted"), self.masks_corrupted);
        set(format!("{prefix}.commands_dropped"), self.commands_dropped);
        set(
            format!("{prefix}.commands_stretched"),
            self.commands_stretched,
        );
        set(
            format!("{prefix}.dirty_bits_flipped"),
            self.dirty_bits_flipped,
        );
    }
}

/// A DRAM location a fault can stick to, for transient-vs-persistent
/// classification: persistent faults key a sticky set by site, transient
/// bursts count down per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultSite {
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
}

/// The outcome of a site-classified mask-transfer fault draw
/// ([`FaultInjector::corrupt_mask_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskFault {
    /// The corrupted mask as the chip receives it.
    pub mask: WordMask,
    /// An even number of bits flipped: the parity bit still matches, so
    /// the chip cannot detect the corruption and the activation proceeds
    /// with the wrong coverage.
    pub escaped: bool,
    /// The site is (now) in the sticky persistent set: every later masked
    /// activation there faults deterministically — a retry cannot succeed.
    pub persistent: bool,
}

/// A per-domain fault source: consult it at each injection opportunity.
///
/// Every method with a zero-rate knob returns without touching the RNG, so
/// a plan that only exercises one fault class perturbs nothing else.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    counts: FaultCounts,
    /// Sites whose mask transfers fault deterministically (persistent
    /// faults); populated by [`FaultInjector::corrupt_mask_at`].
    persistent_sites: BTreeSet<FaultSite>,
    /// Remaining fault repetitions per site for in-flight transient
    /// bursts (`transient_burst_len > 1` plans only).
    burst_remaining: BTreeMap<FaultSite, u64>,
}

impl FaultInjector {
    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters accumulated so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Mirrors the counters into a metrics registry under `prefix`.
    pub fn publish_to(&self, registry: &mut MetricsRegistry, prefix: &str) {
        self.counts.publish_to(registry, prefix);
    }

    /// A single-bit upset on a PRA mask transfer: returns the corrupted
    /// mask (exactly one bit flipped) when the fault fires, `None`
    /// otherwise. The accompanying parity bit still describes the
    /// *original* mask, so the receiver always detects the flip.
    pub fn corrupt_mask(&mut self, mask: WordMask) -> Option<WordMask> {
        if self.plan.mask_corrupt_rate <= 0.0 || !self.rng.random_bool(self.plan.mask_corrupt_rate)
        {
            return None;
        }
        self.counts.injected += 1;
        self.counts.masks_corrupted += 1;
        let bit = self.rng.bounded_u64(WORDS_PER_LINE as u64) as u8;
        Some(WordMask::from_bits(mask.bits() ^ (1 << bit)))
    }

    /// Site-classified variant of [`FaultInjector::corrupt_mask`]: the
    /// fault decision consults the sticky persistent set and any in-flight
    /// transient burst for `site` before drawing fresh randomness, so
    /// retries of a persistent fault deterministically keep failing while
    /// single-shot transients succeed on replay. Fresh faults are
    /// classified on first fire: escaped (even flip, undetectable) with
    /// probability `mask_escape_rate`, else persistent with probability
    /// `persistent_rate` (the site turns sticky), else transient for
    /// `transient_burst_len` consecutive attempts.
    ///
    /// With the classification knobs at their defaults this draws exactly
    /// the same RNG sequence as [`FaultInjector::corrupt_mask`].
    pub fn corrupt_mask_at(&mut self, site: FaultSite, mask: WordMask) -> Option<MaskFault> {
        let sticky = self.persistent_sites.contains(&site);
        let burst = if sticky {
            0
        } else {
            self.burst_remaining.get(&site).copied().unwrap_or(0)
        };
        let fresh = !sticky && burst == 0;
        let fires = !fresh
            || (self.plan.mask_corrupt_rate > 0.0
                && self.rng.random_bool(self.plan.mask_corrupt_rate));
        if !fires {
            return None;
        }
        if burst > 0 {
            if burst == 1 {
                self.burst_remaining.remove(&site);
            } else {
                self.burst_remaining.insert(site, burst - 1);
            }
        }
        let mut escaped = false;
        let mut persistent = sticky;
        if fresh {
            if self.plan.mask_escape_rate > 0.0 && self.rng.random_bool(self.plan.mask_escape_rate)
            {
                escaped = true;
            } else if self.plan.persistent_rate > 0.0
                && self.rng.random_bool(self.plan.persistent_rate)
            {
                persistent = true;
                self.persistent_sites.insert(site);
            } else if self.plan.transient_burst_len > 1 {
                self.burst_remaining
                    .insert(site, self.plan.transient_burst_len - 1);
            }
        }
        self.counts.injected += 1;
        self.counts.masks_corrupted += 1;
        if escaped {
            self.counts.escaped += 1;
        }
        let bit = self.rng.bounded_u64(WORDS_PER_LINE as u64) as u8;
        let bits = if escaped {
            // Flip a second, distinct bit so the popcount parity of the
            // corruption is even and the parity bit still matches.
            let offset = 1 + self.rng.bounded_u64(WORDS_PER_LINE as u64 - 1) as u8;
            let second = (bit + offset) % WORDS_PER_LINE as u8;
            mask.bits() ^ (1 << bit) ^ (1 << second)
        } else {
            mask.bits() ^ (1 << bit)
        };
        Some(MaskFault {
            mask: WordMask::from_bits(bits),
            escaped,
            persistent,
        })
    }

    /// Whether `site` is currently in the sticky persistent-fault set.
    pub fn is_persistent_site(&self, site: FaultSite) -> bool {
        self.persistent_sites.contains(&site)
    }

    /// Records that a corrupted mask was caught (parity mismatch) and
    /// answered by a full-row fallback activation.
    pub fn record_mask_fault_handled(&mut self) {
        self.counts.detected += 1;
        self.counts.degraded += 1;
    }

    /// Records a detected fault (parity mismatch) *without* an immediate
    /// degradation — the recovery pipeline will retry it first.
    pub fn record_fault_detected(&mut self) {
        self.counts.detected += 1;
    }

    /// Records a terminal graceful degradation (retry budget exhausted,
    /// full-row fallback issued). Pairs with earlier
    /// [`FaultInjector::record_fault_detected`] calls.
    pub fn record_fault_degraded(&mut self) {
        self.counts.degraded += 1;
    }

    /// Whether the command about to issue is lost on the bus.
    pub fn drop_command(&mut self) -> bool {
        if self.plan.command_drop_rate <= 0.0 || !self.rng.random_bool(self.plan.command_drop_rate)
        {
            return false;
        }
        self.counts.injected += 1;
        self.counts.commands_dropped += 1;
        true
    }

    /// Extra activate-to-column cycles the activation about to issue pays
    /// (0 when the fault does not fire).
    pub fn stretch_command(&mut self) -> u64 {
        if self.plan.command_stretch_rate <= 0.0
            || !self.rng.random_bool(self.plan.command_stretch_rate)
        {
            return 0;
        }
        self.counts.injected += 1;
        self.counts.commands_stretched += 1;
        self.plan.command_stretch_cycles
    }

    /// A spurious FGD dirty-bit set on an eviction's merged mask: returns
    /// the widened mask when the fault fires and a clear bit exists.
    /// Fail-safe by construction — bits are only ever *set* (a cleared
    /// dirty bit would be silent data loss, which FGD cannot tolerate
    /// without ECC; see DESIGN.md).
    pub fn flip_dirty_bit(&mut self, mask: WordMask) -> Option<WordMask> {
        if self.plan.dirty_flip_rate <= 0.0 || !self.rng.random_bool(self.plan.dirty_flip_rate) {
            return None;
        }
        let clear: Vec<u8> = (0..WORDS_PER_LINE as u8)
            .filter(|&w| !mask.contains(w))
            .collect();
        if clear.is_empty() {
            return None; // already fully dirty; nothing to widen
        }
        self.counts.injected += 1;
        self.counts.dirty_bits_flipped += 1;
        let pick = clear[self.rng.bounded_u64(clear.len() as u64) as usize];
        Some(mask | WordMask::single(pick))
    }

    /// The refresh interval under stress: `trefi / divisor`, never below
    /// one cycle. Draws nothing from the RNG.
    pub fn effective_trefi(&self, trefi: u64) -> u64 {
        (trefi / self.plan.refresh_interval_divisor).max(1)
    }
}

impl SnapState for FaultInjector {
    // The plan itself is configuration (covered by the snapshot's config
    // digest), so only the mutable fault state travels: the RNG position,
    // the counters, the sticky persistent set and in-flight bursts.
    fn snap_save(&self, w: &mut SnapWriter) {
        w.section("fault-injector");
        for word in self.rng.state() {
            w.u64(word);
        }
        let c = self.counts;
        for v in [
            c.injected,
            c.detected,
            c.degraded,
            c.escaped,
            c.masks_corrupted,
            c.commands_dropped,
            c.commands_stretched,
            c.dirty_bits_flipped,
        ] {
            w.u64(v);
        }
        w.seq(self.persistent_sites.len());
        for site in &self.persistent_sites {
            w.u32(site.rank);
            w.u32(site.bank);
            w.u32(site.row);
        }
        w.seq(self.burst_remaining.len());
        for (site, left) in &self.burst_remaining {
            w.u32(site.rank);
            w.u32(site.bank);
            w.u32(site.row);
            w.u64(*left);
        }
    }

    fn snap_load(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("fault-injector")?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng.set_state(s);
        self.counts = FaultCounts {
            injected: r.u64()?,
            detected: r.u64()?,
            degraded: r.u64()?,
            escaped: r.u64()?,
            masks_corrupted: r.u64()?,
            commands_dropped: r.u64()?,
            commands_stretched: r.u64()?,
            dirty_bits_flipped: r.u64()?,
        };
        self.persistent_sites.clear();
        for _ in 0..r.seq()? {
            self.persistent_sites.insert(FaultSite {
                rank: r.u32()?,
                bank: r.u32()?,
                row: r.u32()?,
            });
        }
        self.burst_remaining.clear();
        for _ in 0..r.seq()? {
            let site = FaultSite {
                rank: r.u32()?,
                bank: r.u32()?,
                row: r.u32()?,
            };
            self.burst_remaining.insert(site, r.u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stress_plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            mask_corrupt_rate: 0.5,
            command_drop_rate: 0.25,
            command_stretch_rate: 0.25,
            command_stretch_cycles: 3,
            dirty_flip_rate: 0.5,
            refresh_interval_divisor: 4,
            ..FaultPlan::disabled()
        }
    }

    fn site(row: u32) -> FaultSite {
        FaultSite {
            rank: 0,
            bank: 0,
            row,
        }
    }

    #[test]
    fn disabled_plan_is_noop_and_valid() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_noop());
        plan.validate().unwrap();
        assert!(!stress_plan().is_noop());
    }

    #[test]
    fn validate_rejects_each_bad_knob() {
        let mut p = FaultPlan::disabled();
        p.mask_corrupt_rate = 1.5;
        assert!(p
            .validate()
            .unwrap_err()
            .to_string()
            .contains("mask_corrupt_rate"));
        let mut p = FaultPlan::disabled();
        p.command_drop_rate = -0.1;
        assert!(p.validate().is_err());
        let mut p = FaultPlan::disabled();
        p.refresh_interval_divisor = 0;
        assert!(p.validate().unwrap_err().to_string().contains("divisor"));
        let mut p = FaultPlan::disabled();
        p.command_stretch_rate = 0.5; // stretch length left at 0
        assert!(p.validate().unwrap_err().to_string().contains("stretch"));
    }

    #[test]
    fn toml_subset_parses_comments_header_and_keys() {
        let plan = FaultPlan::from_toml_str(
            "# stress\n[faults]\nseed = 9\nmask_corrupt_rate = 0.5 # inline\n\ncommand_drop_rate = 0.25\ncommand_stretch_rate = 0.1\ncommand_stretch_cycles = 2\ndirty_flip_rate = 0.01\nrefresh_interval_divisor = 2\n",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.mask_corrupt_rate, 0.5);
        assert_eq!(plan.command_stretch_cycles, 2);
        assert_eq!(plan.refresh_interval_divisor, 2);
    }

    #[test]
    fn toml_rejects_unknown_keys_sections_and_bad_values() {
        let e = FaultPlan::from_toml_str("mask_corupt_rate = 0.5\n").unwrap_err();
        assert!(e.to_string().contains("unknown key"), "{e}");
        let e = FaultPlan::from_toml_str("[refresh]\n").unwrap_err();
        assert!(e.to_string().contains("unknown section"), "{e}");
        let e = FaultPlan::from_toml_str("seed = banana\n").unwrap_err();
        assert!(e.to_string().contains("integer"), "{e}");
        let e = FaultPlan::from_toml_str("just some words\n").unwrap_err();
        assert!(e.to_string().contains("key = value"), "{e}");
        // Out-of-range rates are caught at parse time too.
        let e = FaultPlan::from_toml_str("dirty_flip_rate = 2.0\n").unwrap_err();
        assert!(e.to_string().contains("within [0, 1]"), "{e}");
    }

    #[test]
    fn toml_errors_name_the_offending_line_and_key_per_knob() {
        // One malformed assignment per knob; every error must carry the
        // 1-based line number of the bad assignment and the key name, so a
        // typo deep in a plan file is immediately locatable.
        let cases: &[(&str, &str)] = &[
            ("seed = 1.5", "seed"),
            ("mask_corrupt_rate = 1.01", "mask_corrupt_rate"),
            ("mask_escape_rate = -0.2", "mask_escape_rate"),
            ("persistent_rate = two", "persistent_rate"),
            ("transient_burst_len = 0", "transient_burst_len"),
            ("command_drop_rate = 7", "command_drop_rate"),
            ("command_stretch_rate = nan?", "command_stretch_rate"),
            ("command_stretch_cycles = -3", "command_stretch_cycles"),
            ("dirty_flip_rate = 100", "dirty_flip_rate"),
            ("refresh_interval_divisor = 0", "refresh_interval_divisor"),
        ];
        for (bad_line, key) in cases {
            // Two leading comment lines place the bad assignment on line 3.
            let text = format!("# chaos plan\n[faults]\n{bad_line}\n");
            let e = FaultPlan::from_toml_str(&text).unwrap_err().to_string();
            assert!(e.contains("line 3"), "{key}: missing line number in {e:?}");
            assert!(e.contains(key), "{key}: key not named in {e:?}");
        }
    }

    #[test]
    fn classification_knobs_parse_and_default() {
        let plan = FaultPlan::from_toml_str(
            "mask_corrupt_rate = 0.5\nmask_escape_rate = 0.1\npersistent_rate = 0.25\ntransient_burst_len = 3\n",
        )
        .unwrap();
        assert_eq!(plan.mask_escape_rate, 0.1);
        assert_eq!(plan.persistent_rate, 0.25);
        assert_eq!(plan.transient_burst_len, 3);
        assert_eq!(FaultPlan::disabled().transient_burst_len, 1);
        assert!(!plan.is_noop());
    }

    #[test]
    fn corrupt_mask_at_matches_corrupt_mask_without_classification_knobs() {
        // Same seed, classification knobs at defaults: both entry points
        // draw the same RNG stream and produce identical corruptions.
        let mut plan = FaultPlan::disabled();
        plan.mask_corrupt_rate = 0.5;
        let mut legacy = plan.injector(Domain::Dram);
        let mut classified = plan.injector(Domain::Dram);
        let mask = WordMask::from_words([0, 3]);
        for row in 0..200 {
            let a = legacy.corrupt_mask(mask);
            let b = classified.corrupt_mask_at(site(row), mask);
            assert_eq!(a, b.map(|f| f.mask));
            if let Some(f) = b {
                assert!(!f.escaped);
                assert!(!f.persistent);
            }
        }
        assert_eq!(legacy.counts(), classified.counts());
    }

    #[test]
    fn persistent_sites_stick_and_keep_failing() {
        let mut plan = FaultPlan::disabled();
        plan.mask_corrupt_rate = 1.0;
        plan.persistent_rate = 1.0;
        let mut inj = plan.injector(Domain::Dram);
        let mask = WordMask::from_words([1, 6]);
        let first = inj.corrupt_mask_at(site(9), mask).unwrap();
        assert!(first.persistent);
        assert!(inj.is_persistent_site(site(9)));
        // Every retry at the same site faults deterministically, even if
        // the rate draw would have spared it.
        for _ in 0..20 {
            let again = inj.corrupt_mask_at(site(9), mask).unwrap();
            assert!(again.persistent);
            assert!(!again.escaped);
        }
        assert_eq!(inj.counts().masks_corrupted, 21);
    }

    #[test]
    fn transient_bursts_clear_after_their_length() {
        let mut plan = FaultPlan::disabled();
        plan.mask_corrupt_rate = 1.0;
        plan.transient_burst_len = 3;
        let mut inj = plan.injector(Domain::Dram);
        let mask = WordMask::from_words([2, 5]);
        // First fire opens a burst covering the next 2 attempts...
        assert!(inj.corrupt_mask_at(site(4), mask).is_some());
        assert!(inj.corrupt_mask_at(site(4), mask).is_some());
        assert!(inj.corrupt_mask_at(site(4), mask).is_some());
        assert!(!inj.is_persistent_site(site(4)));
        // ...and the burst state is gone afterwards (the next fire is a
        // fresh rate draw, which at rate 1.0 fires again — so check the
        // internal burst map drained via the Debug rendering instead).
        assert!(
            !format!("{inj:?}").contains("FaultSite { rank: 0, bank: 0, row: 4 }: "),
            "burst entry must be removed once it drains"
        );
    }

    #[test]
    fn escaped_faults_flip_two_bits_and_keep_parity() {
        let mut plan = FaultPlan::disabled();
        plan.mask_corrupt_rate = 1.0;
        plan.mask_escape_rate = 1.0;
        let mut inj = plan.injector(Domain::Dram);
        let mask = WordMask::from_words([1, 6]);
        for row in 0..100 {
            let f = inj.corrupt_mask_at(site(row), mask).unwrap();
            assert!(f.escaped);
            assert_eq!((f.mask.bits() ^ mask.bits()).count_ones(), 2);
            assert_eq!(even_parity(f.mask), even_parity(mask), "parity matches");
            assert_ne!(f.mask, mask);
        }
        assert_eq!(inj.counts().escaped, 100);
        assert_eq!(inj.counts().masks_corrupted, 100);
        assert_eq!(inj.counts().detected, 0, "escapes are never detected");
    }

    #[test]
    fn detection_and_degradation_record_separately() {
        let plan = FaultPlan::disabled();
        let mut inj = plan.injector(Domain::Dram);
        inj.record_fault_detected();
        inj.record_fault_detected();
        inj.record_fault_degraded();
        assert_eq!(inj.counts().detected, 2);
        assert_eq!(inj.counts().degraded, 1);
        let merged = inj.counts().merged(FaultCounts {
            escaped: 3,
            ..FaultCounts::default()
        });
        assert_eq!(merged.escaped, 3);
    }

    #[test]
    fn injectors_are_deterministic_per_domain() {
        let plan = stress_plan();
        let mut a = plan.injector(Domain::Dram);
        let mut b = plan.injector(Domain::Dram);
        let mask = WordMask::from_words([0, 3]);
        for _ in 0..200 {
            assert_eq!(a.corrupt_mask(mask), b.corrupt_mask(mask));
            assert_eq!(a.drop_command(), b.drop_command());
            assert_eq!(a.stretch_command(), b.stretch_command());
        }
        assert_eq!(a.counts(), b.counts());
        // Different domains derive different streams from the same seed.
        let mut c = plan.injector(Domain::Cache);
        let drams: Vec<bool> = (0..64)
            .map(|_| plan.injector(Domain::Dram).drop_command())
            .collect();
        let caches: Vec<bool> = (0..64).map(|_| c.drop_command()).collect();
        assert_ne!(drams, caches);
    }

    #[test]
    fn corrupt_mask_flips_one_bit_and_parity_catches_it() {
        let mut plan = FaultPlan::disabled();
        plan.mask_corrupt_rate = 1.0;
        let mut inj = plan.injector(Domain::Dram);
        let mask = WordMask::from_words([1, 6]);
        for _ in 0..100 {
            let corrupted = inj.corrupt_mask(mask).expect("rate 1.0 always fires");
            assert_eq!((corrupted.bits() ^ mask.bits()).count_ones(), 1);
            assert_ne!(even_parity(corrupted), even_parity(mask));
        }
        assert_eq!(inj.counts().masks_corrupted, 100);
        assert_eq!(inj.counts().injected, 100);
    }

    #[test]
    fn dirty_flip_only_widens_masks() {
        let mut plan = FaultPlan::disabled();
        plan.dirty_flip_rate = 1.0;
        let mut inj = plan.injector(Domain::Cache);
        let mask = WordMask::from_words([0, 2]);
        for _ in 0..50 {
            let widened = inj.flip_dirty_bit(mask).expect("rate 1.0 always fires");
            assert!(mask.is_subset_of(widened), "bits are only ever set");
            assert_eq!(widened.count_words(), mask.count_words() + 1);
        }
        // A fully dirty line has nothing to widen; no fault is recorded.
        let before = inj.counts().dirty_bits_flipped;
        assert_eq!(inj.flip_dirty_bit(WordMask::FULL), None);
        assert_eq!(inj.counts().dirty_bits_flipped, before);
    }

    #[test]
    fn zero_rate_knobs_never_touch_the_rng() {
        let plan = FaultPlan::disabled();
        let mut inj = plan.injector(Domain::Dram);
        let pristine = inj.clone();
        assert_eq!(inj.corrupt_mask(WordMask::single(0)), None);
        assert!(!inj.drop_command());
        assert_eq!(inj.stretch_command(), 0);
        assert_eq!(inj.flip_dirty_bit(WordMask::single(0)), None);
        assert_eq!(inj.effective_trefi(6240), 6240);
        assert_eq!(format!("{inj:?}"), format!("{pristine:?}"));
    }

    #[test]
    fn refresh_stress_divides_trefi() {
        let mut plan = FaultPlan::disabled();
        plan.refresh_interval_divisor = 4;
        let inj = plan.injector(Domain::Dram);
        assert_eq!(inj.effective_trefi(6240), 1560);
        assert_eq!(inj.effective_trefi(2), 1, "never below one cycle");
    }

    #[test]
    fn counts_merge_and_publish() {
        let mut plan = FaultPlan::disabled();
        plan.command_drop_rate = 1.0;
        let mut a = plan.injector(Domain::Dram);
        assert!(a.drop_command());
        let b = FaultCounts {
            detected: 2,
            degraded: 1,
            ..FaultCounts::default()
        };
        let merged = a.counts().merged(b);
        assert_eq!(merged.injected, 1);
        assert_eq!(merged.detected, 2);
        assert_eq!(merged.commands_dropped, 1);
        let mut reg = MetricsRegistry::new();
        merged.publish_to(&mut reg, "fault");
        assert_eq!(reg.counter_value("fault.injected"), Some(1));
        assert_eq!(reg.counter_value("fault.detected"), Some(2));
        assert_eq!(reg.counter_value("fault.degraded"), Some(1));
        assert_eq!(reg.counter_value("fault.commands_dropped"), Some(1));
    }

    #[test]
    fn snapshot_roundtrip_resumes_the_fault_stream() {
        let mut plan = stress_plan();
        plan.persistent_rate = 0.3;
        plan.transient_burst_len = 2;
        let mask = WordMask::from_words([0, 3]);
        let mut reference = plan.injector(Domain::Dram);
        for row in 0..100 {
            let _ = reference.corrupt_mask_at(site(row), mask);
            let _ = reference.drop_command();
        }
        let mut w = SnapWriter::new();
        reference.snap_save(&mut w);
        let payload = w.into_bytes();
        // Restore onto a fresh injector from the same plan, then both must
        // produce the identical remaining stream and counters.
        let mut restored = plan.injector(Domain::Dram);
        let mut r = SnapReader::new(&payload);
        restored.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.counts(), reference.counts());
        for row in 0..100 {
            assert_eq!(
                reference.corrupt_mask_at(site(row), mask),
                restored.corrupt_mask_at(site(row), mask)
            );
            assert_eq!(reference.drop_command(), restored.drop_command());
        }
        assert_eq!(restored.counts(), reference.counts());
    }

    #[test]
    fn even_parity_tracks_popcount() {
        assert!(even_parity(WordMask::EMPTY));
        assert!(even_parity(WordMask::FULL));
        assert!(!even_parity(WordMask::single(5)));
        assert!(even_parity(WordMask::from_words([1, 4])));
    }
}
