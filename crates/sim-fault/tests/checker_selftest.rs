//! Checker self-test: replays deliberately corrupted command streams
//! through `dram_sim::ProtocolChecker` and asserts every violation class
//! is flagged with the right rule.
//!
//! Each case prepends a seed-randomised *legal* prefix on rank 0 (so the
//! checker is exercised with realistic warm state, not a blank slate) and
//! then issues an illegal suffix on rank 1. The suffix is legal except for
//! its final command; the checker must accept everything before it and
//! reject exactly that command, naming the violated rule. Run across ten
//! seeds per class, the harness demands a 100% detection rate.

use dram_sim::{DramCommand, ProtocolChecker, TimingParams};
use mem_model::rng::Rng;

const SEEDS: u64 = 10;

fn act(rank: u32, bank: u32, row: u32) -> DramCommand {
    DramCommand::Activate {
        rank,
        bank,
        row,
        mats: 16,
        extra_cycles: 0,
    }
}

/// A violation class: a suffix of (cycle offset, command) pairs whose last
/// command breaks `expect`, issued on rank 1 after a legal rank-0 prefix.
struct Violation {
    name: &'static str,
    expect: &'static str,
    suffix: Vec<(u64, DramCommand)>,
}

/// All violation classes the checker knows, one illegal stream each.
/// Offsets assume DDR3-1600 Table 3 timing (tRCD 11, tRP 11, tRAS 28,
/// tRRD 5, tFAW 24, tCCD 4, tWR 12, tRTP 6, WL 8, burst 4, tRFC 128).
fn violation_classes() -> Vec<Violation> {
    let rd = |bank| DramCommand::Read { rank: 1, bank };
    let wr = |bank| DramCommand::Write { rank: 1, bank };
    let pre = |bank| DramCommand::Precharge { rank: 1, bank };
    let refresh = DramCommand::Refresh { rank: 1 };
    vec![
        Violation {
            name: "mats above full row",
            expect: "mats out of range",
            suffix: vec![(
                0,
                DramCommand::Activate {
                    rank: 1,
                    bank: 0,
                    row: 1,
                    mats: 17,
                    extra_cycles: 0,
                },
            )],
        },
        Violation {
            name: "zero mats",
            expect: "mats out of range",
            suffix: vec![(
                0,
                DramCommand::Activate {
                    rank: 1,
                    bank: 0,
                    row: 1,
                    mats: 0,
                    extra_cycles: 0,
                },
            )],
        },
        Violation {
            name: "back-to-back ACTs inside tRRD",
            expect: "tRRD",
            suffix: vec![(0, act(1, 0, 1)), (4, act(1, 1, 1))],
        },
        Violation {
            name: "five ACTs inside the tFAW window",
            expect: "tFAW",
            suffix: vec![
                (0, act(1, 0, 1)),
                (5, act(1, 1, 1)),
                (10, act(1, 2, 1)),
                (15, act(1, 3, 1)),
                (20, act(1, 4, 1)),
            ],
        },
        Violation {
            name: "ACT to an already-open bank",
            expect: "ACT to an open bank",
            suffix: vec![(0, act(1, 0, 1)), (5, act(1, 0, 2))],
        },
        Violation {
            name: "re-ACT before tRP elapses",
            expect: "tRP",
            suffix: vec![
                (0, act(1, 0, 1)),
                (11, rd(0)),
                (28, pre(0)),
                (38, act(1, 0, 2)),
            ],
        },
        Violation {
            name: "ACT while the rank is refreshing",
            expect: "tRFC",
            suffix: vec![(0, refresh), (100, act(1, 0, 1))],
        },
        Violation {
            name: "column commands inside tCCD",
            expect: "tCCD",
            suffix: vec![(0, act(1, 0, 1)), (11, rd(0)), (14, rd(0))],
        },
        Violation {
            name: "read from a closed bank",
            expect: "column to a closed bank",
            suffix: vec![(0, rd(0))],
        },
        Violation {
            name: "read before tRCD elapses",
            expect: "tRCD",
            suffix: vec![(0, act(1, 0, 1)), (10, rd(0))],
        },
        Violation {
            name: "write ignoring the PRA mask-transfer cycle",
            expect: "tRCD",
            suffix: vec![
                (
                    0,
                    DramCommand::Activate {
                        rank: 1,
                        bank: 0,
                        row: 1,
                        mats: 2,
                        extra_cycles: 1,
                    },
                ),
                (11, wr(0)),
            ],
        },
        Violation {
            name: "PRE to a closed bank",
            expect: "PRE to a closed bank",
            suffix: vec![(0, pre(0))],
        },
        Violation {
            name: "PRE before tRAS elapses",
            expect: "tRAS",
            suffix: vec![(0, act(1, 0, 1)), (27, pre(0))],
        },
        Violation {
            name: "PRE cutting a late read short of tRTP",
            expect: "tRTP",
            suffix: vec![(0, act(1, 0, 1)), (25, rd(0)), (28, pre(0))],
        },
        Violation {
            name: "PRE before the write-recovery fence",
            expect: "tWR",
            suffix: vec![(0, act(1, 0, 1)), (11, wr(0)), (34, pre(0))],
        },
        Violation {
            name: "read inside the tWTR bus turnaround",
            expect: "tWTR",
            // Write burst occupies WL(8)..WL+4 after cycle 11; the read
            // burst (CL 11 after its command) starts inside end+tWTR(6).
            suffix: vec![(0, act(1, 0, 1)), (11, wr(0)), (16, rd(0))],
        },
        Violation {
            name: "rank switch inside tRTRS",
            expect: "tRTRS",
            // Rank-0 burst ends at +26; the rank-1 burst must wait
            // tRTRS(2) more, so a rank-1 RD at +16 (burst start +27) is
            // one cycle early.
            suffix: vec![
                (0, act(0, 7, 1)),
                (5, act(1, 0, 1)),
                (11, DramCommand::Read { rank: 0, bank: 7 }),
                (16, rd(0)),
            ],
        },
        Violation {
            name: "REF with a bank open",
            expect: "open",
            suffix: vec![(0, act(1, 0, 1)), (5, refresh)],
        },
        Violation {
            name: "REF before tRP elapses",
            expect: "tRP before REF",
            suffix: vec![(0, act(1, 0, 1)), (11, rd(0)), (28, pre(0)), (38, refresh)],
        },
    ]
}

/// Replays `rounds` legal closed-page rounds on rank 0 and returns the
/// first cycle safely past all rank-0 and cross-rank (tCCD) constraints.
fn legal_prefix(checker: &mut ProtocolChecker, rng: &mut Rng) -> u64 {
    let rounds = 3 + rng.bounded_u64(5);
    let mut cursor = 0u64;
    for round in 0..rounds {
        let bank = (round % 8) as u32;
        let row = round as u32;
        checker
            .observe(cursor, act(0, bank, row))
            .expect("prefix ACT must be legal");
        checker
            .observe(cursor + 11, DramCommand::Read { rank: 0, bank })
            .expect("prefix READ must be legal");
        checker
            .observe(cursor + 28, DramCommand::Precharge { rank: 0, bank })
            .expect("prefix PRE must be legal");
        cursor += 39 + 40 + rng.bounded_u64(20);
    }
    cursor + 200
}

#[test]
fn every_violation_class_is_flagged() {
    let classes = violation_classes();
    let mut streams = 0u64;
    let mut flagged = 0u64;
    for class in &classes {
        for seed in 0..SEEDS {
            let t = TimingParams::ddr3_1600_table3();
            let mut checker = ProtocolChecker::new(t, 2, 8, false, t.burst_cycles);
            let mut rng = Rng::seed_from_u64(seed);
            let base = legal_prefix(&mut checker, &mut rng);
            let (last, head) = class
                .suffix
                .split_last()
                .expect("violation suffix is non-empty");
            for &(offset, command) in head {
                checker
                    .observe(base + offset, command)
                    .unwrap_or_else(|e| panic!("{}: setup command rejected: {e}", class.name));
            }
            streams += 1;
            match checker.observe(base + last.0, last.1) {
                Err(e) => {
                    assert!(
                        e.rule.contains(class.expect),
                        "{}: flagged the wrong rule: got {e}, want {}",
                        class.name,
                        class.expect
                    );
                    flagged += 1;
                }
                Ok(()) => panic!("{}: illegal command accepted (seed {seed})", class.name),
            }
        }
    }
    assert_eq!(
        flagged, streams,
        "checker must flag 100% of injected-illegal streams"
    );
    assert_eq!(streams, classes.len() as u64 * SEEDS);
}

#[test]
fn clean_streams_stay_clean() {
    // The same harness minus the illegal suffix never trips the checker.
    for seed in 0..SEEDS {
        let t = TimingParams::ddr3_1600_table3();
        let mut checker = ProtocolChecker::new(t, 2, 8, false, t.burst_cycles);
        let mut rng = Rng::seed_from_u64(seed);
        let base = legal_prefix(&mut checker, &mut rng);
        checker
            .observe(base, act(1, 0, 1))
            .expect("legal ACT after the prefix");
        checker
            .observe(base + 11, DramCommand::Read { rank: 1, bank: 0 })
            .expect("legal READ at tRCD");
        checker
            .observe(base + 28, DramCommand::Precharge { rank: 1, bank: 0 })
            .expect("legal PRE at tRAS");
        assert!(checker.commands_checked() > 3);
    }
}
