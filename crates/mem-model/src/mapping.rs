//! Physical-address to DRAM-coordinate mappings.

use core::fmt;

use crate::{DramGeometry, PhysAddr, LINE_BYTES};

/// DRAM coordinates of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Cache-line-granularity column within the row (0..lines_per_row).
    pub column: u32,
}

impl Location {
    /// A dense index identifying this location's bank across the system.
    pub fn bank_index(&self, geometry: &DramGeometry) -> usize {
        ((self.channel as usize * geometry.ranks_per_channel) + self.rank as usize)
            * geometry.banks_per_rank
            + self.bank as usize
    }

    /// Identifier of the row this line lives in, unique across the system.
    ///
    /// Useful as a key for row-granularity bookkeeping such as the
    /// Dirty-Block Index.
    pub fn row_key(&self, geometry: &DramGeometry) -> u64 {
        self.bank_index(geometry) as u64 * geometry.rows_per_bank as u64 + u64::from(self.row)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{} rk{} bk{} row{:#x} col{}",
            self.channel, self.rank, self.bank, self.row, self.column
        )
    }
}

/// How physical addresses are scattered over the DRAM system.
///
/// * [`AddressMapping::RowInterleaved`] keeps consecutive cache lines within
///   the same row (open-page friendly); the paper pairs it with the relaxed
///   close-page policy.
/// * [`AddressMapping::LineInterleaved`] spreads consecutive cache lines
///   across channels, banks and ranks to maximise parallelism; the paper
///   pairs it with the restricted close-page policy.
///
/// Bit layouts (from least significant): both start with the 6 line-offset
/// bits. Row-interleaved then slices `column | channel | bank | rank | row`;
/// line-interleaved slices `channel | bank | rank | column | row`.
///
/// # Example
///
/// ```
/// use mem_model::{AddressMapping, DramGeometry, PhysAddr};
///
/// let g = DramGeometry::baseline_ddr3();
/// // Two consecutive lines stay in one row under row-interleaving...
/// let a = AddressMapping::RowInterleaved.decode(PhysAddr::new(0x0), &g);
/// let b = AddressMapping::RowInterleaved.decode(PhysAddr::new(64), &g);
/// assert_eq!((a.row, a.bank, b.row, b.bank), (0, 0, 0, 0));
/// assert_eq!(b.column, a.column + 1);
/// // ...but hit different channels under line-interleaving.
/// let c = AddressMapping::LineInterleaved.decode(PhysAddr::new(0x0), &g);
/// let d = AddressMapping::LineInterleaved.decode(PhysAddr::new(64), &g);
/// assert_ne!(c.channel, d.channel);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// `row | rank | bank | channel | column | offset` (default).
    #[default]
    RowInterleaved,
    /// `row | column | rank | bank | channel | offset`.
    LineInterleaved,
    /// Row-interleaved with the bank index XOR-hashed against the low row
    /// bits (permutation-based page interleaving). Spreads pathological
    /// same-bank row-conflict strides across banks; a common controller
    /// option not evaluated by the paper.
    RowInterleavedXor,
}

fn take(bits: &mut u64, count: u32) -> u32 {
    let field = (*bits & ((1u64 << count) - 1)) as u32;
    *bits >>= count;
    field
}

impl AddressMapping {
    /// Decodes a physical address into DRAM coordinates.
    ///
    /// Addresses beyond the installed capacity wrap (the row field simply
    /// truncates), mirroring how simulators commonly mirror small test
    /// address spaces onto the configured geometry.
    pub fn decode(self, addr: PhysAddr, geometry: &DramGeometry) -> Location {
        let mut bits = addr.raw() / LINE_BYTES;
        let col_bits = geometry.lines_per_row().trailing_zeros();
        let ch_bits = geometry.channels.trailing_zeros();
        let bank_bits = geometry.banks_per_rank.trailing_zeros();
        let rank_bits = geometry.ranks_per_channel.trailing_zeros();
        let row_bits = geometry.rows_per_bank.trailing_zeros();
        match self {
            AddressMapping::RowInterleaved | AddressMapping::RowInterleavedXor => {
                let column = take(&mut bits, col_bits);
                let channel = take(&mut bits, ch_bits);
                let bank = take(&mut bits, bank_bits);
                let rank = take(&mut bits, rank_bits);
                let row = take(&mut bits, row_bits);
                let bank = if matches!(self, AddressMapping::RowInterleavedXor) {
                    bank ^ (row & (geometry.banks_per_rank as u32 - 1))
                } else {
                    bank
                };
                Location {
                    channel,
                    rank,
                    bank,
                    row,
                    column,
                }
            }
            AddressMapping::LineInterleaved => {
                let channel = take(&mut bits, ch_bits);
                let bank = take(&mut bits, bank_bits);
                let rank = take(&mut bits, rank_bits);
                let column = take(&mut bits, col_bits);
                let row = take(&mut bits, row_bits);
                Location {
                    channel,
                    rank,
                    bank,
                    row,
                    column,
                }
            }
        }
    }

    /// Recomposes DRAM coordinates into the line-aligned physical address
    /// that decodes to them. Inverse of [`AddressMapping::decode`] for
    /// in-capacity addresses.
    pub fn encode(self, loc: Location, geometry: &DramGeometry) -> PhysAddr {
        let col_bits = geometry.lines_per_row().trailing_zeros();
        let ch_bits = geometry.channels.trailing_zeros();
        let bank_bits = geometry.banks_per_rank.trailing_zeros();
        let rank_bits = geometry.ranks_per_channel.trailing_zeros();
        let mut bits: u64 = 0;
        let mut shift = 0u32;
        let mut put = |field: u32, count: u32| {
            bits |= (u64::from(field)) << shift;
            shift += count;
        };
        match self {
            AddressMapping::RowInterleaved | AddressMapping::RowInterleavedXor => {
                let bank = if matches!(self, AddressMapping::RowInterleavedXor) {
                    loc.bank ^ (loc.row & (geometry.banks_per_rank as u32 - 1))
                } else {
                    loc.bank
                };
                put(loc.column, col_bits);
                put(loc.channel, ch_bits);
                put(bank, bank_bits);
                put(loc.rank, rank_bits);
                put(loc.row, geometry.rows_per_bank.trailing_zeros());
            }
            AddressMapping::LineInterleaved => {
                put(loc.channel, ch_bits);
                put(loc.bank, bank_bits);
                put(loc.rank, rank_bits);
                put(loc.column, col_bits);
                put(loc.row, geometry.rows_per_bank.trailing_zeros());
            }
        }
        PhysAddr::new(bits * LINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometries() -> Vec<DramGeometry> {
        vec![
            DramGeometry::baseline_ddr3(),
            DramGeometry::tiny_for_tests(),
        ]
    }

    #[test]
    fn decode_fields_in_range() {
        for g in geometries() {
            for mapping in [
                AddressMapping::RowInterleaved,
                AddressMapping::LineInterleaved,
            ] {
                for raw in (0..g.total_bytes()).step_by((g.total_bytes() / 1024) as usize) {
                    let loc = mapping.decode(PhysAddr::new(raw), &g);
                    assert!((loc.channel as usize) < g.channels);
                    assert!((loc.rank as usize) < g.ranks_per_channel);
                    assert!((loc.bank as usize) < g.banks_per_rank);
                    assert!((loc.row as usize) < g.rows_per_bank);
                    assert!((loc.column as u64) < g.lines_per_row());
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = DramGeometry::baseline_ddr3();
        for mapping in [
            AddressMapping::RowInterleaved,
            AddressMapping::LineInterleaved,
        ] {
            for raw in [0u64, 64, 4096, 0x1234_5640, (8u64 << 30) - 64] {
                let addr = PhysAddr::new(raw).line_aligned();
                let loc = mapping.decode(addr, &g);
                assert_eq!(mapping.encode(loc, &g), addr, "{mapping:?} {raw:#x}");
            }
        }
    }

    #[test]
    fn row_interleave_keeps_lines_in_row() {
        let g = DramGeometry::baseline_ddr3();
        let base = AddressMapping::RowInterleaved.decode(PhysAddr::new(0x100000), &g);
        for i in 1..g.lines_per_row() / 2 {
            let loc = AddressMapping::RowInterleaved.decode(PhysAddr::new(0x100000 + i * 64), &g);
            assert_eq!(
                (loc.row, loc.bank, loc.rank, loc.channel),
                (base.row, base.bank, base.rank, base.channel)
            );
        }
    }

    #[test]
    fn line_interleave_spreads_consecutive_lines() {
        let g = DramGeometry::baseline_ddr3();
        // The 32 consecutive lines starting at 0 must touch every bank of
        // every rank of every channel exactly once.
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u64 {
            let loc = AddressMapping::LineInterleaved.decode(PhysAddr::new(i * 64), &g);
            seen.insert((loc.channel, loc.rank, loc.bank));
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn xor_mapping_roundtrips_and_spreads_banks() {
        let g = DramGeometry::baseline_ddr3();
        let m = AddressMapping::RowInterleavedXor;
        for raw in [0u64, 64, 4096, 0x1234_5640, (8u64 << 30) - 64] {
            let addr = PhysAddr::new(raw).line_aligned();
            assert_eq!(m.encode(m.decode(addr, &g), &g), addr);
        }
        // A same-bank-under-plain-mapping row stride hits different banks.
        let plain = AddressMapping::RowInterleaved;
        let row_stride =
            g.lines_per_row() * 64 * (g.channels * g.banks_per_rank * g.ranks_per_channel) as u64;
        let mut plain_banks = std::collections::HashSet::new();
        let mut xor_banks = std::collections::HashSet::new();
        for i in 0..8u64 {
            plain_banks.insert(plain.decode(PhysAddr::new(i * row_stride), &g).bank);
            xor_banks.insert(m.decode(PhysAddr::new(i * row_stride), &g).bank);
        }
        assert_eq!(plain_banks.len(), 1, "plain mapping thrashes one bank");
        assert_eq!(
            xor_banks.len(),
            8,
            "XOR hashing spreads the stride over all banks"
        );
    }

    #[test]
    fn bank_index_is_dense_and_unique() {
        let g = DramGeometry::baseline_ddr3();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..g.channels as u32 {
            for rk in 0..g.ranks_per_channel as u32 {
                for bk in 0..g.banks_per_rank as u32 {
                    let loc = Location {
                        channel: ch,
                        rank: rk,
                        bank: bk,
                        row: 0,
                        column: 0,
                    };
                    let idx = loc.bank_index(&g);
                    assert!(idx < g.total_banks());
                    assert!(seen.insert(idx), "duplicate bank index {idx}");
                }
            }
        }
        assert_eq!(seen.len(), g.total_banks());
    }

    #[test]
    fn row_key_distinguishes_rows_and_banks() {
        let g = DramGeometry::baseline_ddr3();
        let a = Location {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 5,
            column: 0,
        };
        let b = Location {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 6,
            column: 0,
        };
        let c = Location {
            channel: 0,
            rank: 0,
            bank: 1,
            row: 5,
            column: 0,
        };
        assert_ne!(a.row_key(&g), b.row_key(&g));
        assert_ne!(a.row_key(&g), c.row_key(&g));
        // Same row, different column: same key.
        let d = Location { column: 9, ..a };
        assert_eq!(a.row_key(&g), d.row_key(&g));
    }
}
