//! DRAM system geometry.

use core::fmt;

use crate::LINE_BYTES;

/// Shape of the simulated DRAM system.
///
/// The default ([`DramGeometry::baseline_ddr3`]) matches the paper's baseline
/// (Table 3): 8 GB total, 2 channels, 2 ranks per channel, 8 x8 chips per
/// rank (2 Gb each), 8 banks per chip, 32 K rows, 1 K columns, with each bank
/// internally tiled into 64 sub-arrays of 16 MATs (512 x 512 cells each).
///
/// All fields are public: this is a passive configuration record, validated
/// once by [`DramGeometry::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Independent memory channels.
    pub channels: usize,
    /// Ranks sharing each channel's buses.
    pub ranks_per_channel: usize,
    /// Banks per rank (all chips of a rank operate in lockstep, so this is
    /// also banks per chip).
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Device columns per row per chip (each column supplies the chip's data
    /// width; for an x8 chip one column is one byte).
    pub columns_per_row: usize,
    /// DRAM chips ganged into each rank's 64-bit data bus.
    pub chips_per_rank: usize,
    /// Data-bus width of one chip in bits (x4 / x8 / x16).
    pub device_width_bits: usize,
    /// Sub-arrays a bank is tiled into.
    pub subarrays_per_bank: usize,
    /// MATs per sub-array. With the paper's data mapping two MATs form one
    /// PRA-selectable group, so `mats_per_subarray / 2` groups exist.
    pub mats_per_subarray: usize,
}

/// Error returned by [`DramGeometry::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError(String);

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DRAM geometry: {}", self.0)
    }
}

impl std::error::Error for GeometryError {}

impl DramGeometry {
    /// The paper's baseline: 2 Gb x8 DDR3-1600 chips, 8 GB system.
    ///
    /// ```
    /// use mem_model::DramGeometry;
    /// let g = DramGeometry::baseline_ddr3();
    /// assert_eq!(g.total_bytes(), 8 << 30);
    /// assert_eq!(g.row_bytes(), 8192); // 8 KB rank-level row
    /// assert_eq!(g.lines_per_row(), 128);
    /// ```
    pub fn baseline_ddr3() -> Self {
        DramGeometry {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank: 32 * 1024,
            columns_per_row: 1024,
            chips_per_rank: 8,
            device_width_bits: 8,
            subarrays_per_bank: 64,
            mats_per_subarray: 16,
        }
    }

    /// A DDR4-class geometry built from 8 Gb x8 chips: 16 banks per rank
    /// and 64 K rows, 32 GB total. Bank groups are not modelled (the
    /// simulator applies conservative same-group timing throughout).
    ///
    /// ```
    /// use mem_model::DramGeometry;
    /// let g = DramGeometry::ddr4_8gb_x8();
    /// assert_eq!(g.total_bytes(), 32u64 << 30);
    /// assert_eq!(g.chip_bits(), 8 << 30);
    /// ```
    pub fn ddr4_8gb_x8() -> Self {
        DramGeometry {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 16,
            rows_per_bank: 64 * 1024,
            columns_per_row: 1024,
            chips_per_rank: 8,
            device_width_bits: 8,
            subarrays_per_bank: 128,
            mats_per_subarray: 16,
        }
    }

    /// A small geometry useful for fast tests (keeps every structural
    /// property of the baseline but shrinks counts).
    pub fn tiny_for_tests() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 4,
            rows_per_bank: 64,
            columns_per_row: 1024,
            chips_per_rank: 8,
            device_width_bits: 8,
            subarrays_per_bank: 4,
            mats_per_subarray: 16,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] naming the first violated constraint:
    /// all counts must be non-zero powers of two (address decoding slices
    /// bit fields), the rank data bus must be 64 bits, and a row must hold a
    /// whole number of cache lines.
    pub fn validate(&self) -> Result<(), GeometryError> {
        let pow2 = |name: &str, v: usize| -> Result<(), GeometryError> {
            if v == 0 || !v.is_power_of_two() {
                Err(GeometryError(format!(
                    "{name} must be a non-zero power of two, got {v}"
                )))
            } else {
                Ok(())
            }
        };
        pow2("channels", self.channels)?;
        pow2("ranks_per_channel", self.ranks_per_channel)?;
        pow2("banks_per_rank", self.banks_per_rank)?;
        pow2("rows_per_bank", self.rows_per_bank)?;
        pow2("columns_per_row", self.columns_per_row)?;
        pow2("chips_per_rank", self.chips_per_rank)?;
        pow2("mats_per_subarray", self.mats_per_subarray)?;
        pow2("subarrays_per_bank", self.subarrays_per_bank)?;
        let bus = self.chips_per_rank * self.device_width_bits;
        if bus != 64 {
            return Err(GeometryError(format!(
                "rank data bus must be 64 bits, got {bus}"
            )));
        }
        if !self.row_bytes().is_multiple_of(LINE_BYTES) {
            return Err(GeometryError(format!(
                "row size {} is not a multiple of the {}B line",
                self.row_bytes(),
                LINE_BYTES
            )));
        }
        if !self.mats_per_subarray.is_multiple_of(2) {
            return Err(GeometryError("MATs must pair up into PRA groups".into()));
        }
        Ok(())
    }

    /// Bytes stored in one rank-level row (the unit the row buffer holds).
    pub fn row_bytes(&self) -> u64 {
        (self.columns_per_row * self.chips_per_rank * self.device_width_bits / 8) as u64
    }

    /// Cache lines per rank-level row.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes() / LINE_BYTES
    }

    /// Total capacity of the DRAM system in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes()
            * self.rows_per_bank as u64
            * self.banks_per_rank as u64
            * self.ranks_per_channel as u64
            * self.channels as u64
    }

    /// Total banks across the whole system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// PRA-selectable MAT groups per sub-array (two MATs per group).
    pub fn mat_groups(&self) -> usize {
        self.mats_per_subarray / 2
    }

    /// Capacity of a single chip in bits.
    pub fn chip_bits(&self) -> u64 {
        self.rows_per_bank as u64
            * self.banks_per_rank as u64
            * self.columns_per_row as u64
            * self.device_width_bits as u64
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry::baseline_ddr3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let g = DramGeometry::baseline_ddr3();
        g.validate().expect("baseline must validate");
        assert_eq!(g.total_bytes(), 8 << 30, "8 GB system");
        assert_eq!(g.chip_bits(), 2 << 30, "2 Gb chips");
        assert_eq!(g.row_bytes(), 8 * 1024, "8 KB rank-level row");
        assert_eq!(g.lines_per_row(), 128);
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.mat_groups(), 8, "8 PRA mask bits");
    }

    #[test]
    fn tiny_validates() {
        DramGeometry::tiny_for_tests().validate().unwrap();
    }

    #[test]
    fn ddr4_validates() {
        let g = DramGeometry::ddr4_8gb_x8();
        g.validate().unwrap();
        assert_eq!(g.total_banks(), 64);
        assert_eq!(g.row_bytes(), 8 * 1024, "same 8 KB rank-level row as DDR3");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut g = DramGeometry::baseline_ddr3();
        g.banks_per_rank = 6;
        assert!(g.validate().is_err());
    }

    #[test]
    fn rejects_wrong_bus_width() {
        let mut g = DramGeometry::baseline_ddr3();
        g.chips_per_rank = 4; // 4 x8 = 32-bit bus
        assert!(g.validate().is_err());
    }

    #[test]
    fn rejects_odd_mats() {
        let mut g = DramGeometry::baseline_ddr3();
        g.mats_per_subarray = 1;
        assert!(g.validate().is_err());
    }
}
