//! Memory requests as seen by the DRAM controller.

use core::fmt;

use crate::{PhysAddr, WordMask};

/// Monotonic identifier assigned to each request, used to correlate
/// completions with the issuing core.
pub type RequestId = u64;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// A demand fill (LLC read miss). Always transfers a full line.
    Read,
    /// A writeback of an evicted dirty LLC line. Carries the FGD mask of the
    /// words that are actually dirty.
    Write,
}

impl ReqKind {
    /// `true` for [`ReqKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, ReqKind::Read)
    }

    /// `true` for [`ReqKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, ReqKind::Write)
    }
}

impl fmt::Display for ReqKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReqKind::Read => "RD",
            ReqKind::Write => "WR",
        })
    }
}

/// A line-granularity memory request.
///
/// Reads always carry [`WordMask::FULL`] (the full line is fetched; PRA keeps
/// full bandwidth for reads). Writes carry the fine-grained dirty mask the
/// cache hierarchy collected, which the controller may use as a PRA mask.
///
/// # Example
///
/// ```
/// use mem_model::{MemRequest, PhysAddr, ReqKind, WordMask};
///
/// let rd = MemRequest::read(1, PhysAddr::new(0x40));
/// assert!(rd.mask.is_full());
/// let wr = MemRequest::write(2, PhysAddr::new(0x80), WordMask::single(3));
/// assert_eq!(wr.mask.count_words(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Unique request identifier.
    pub id: RequestId,
    /// Read or write.
    pub kind: ReqKind,
    /// Line-aligned physical address.
    pub addr: PhysAddr,
    /// Word mask: full for reads, the FGD dirty mask for writes.
    pub mask: WordMask,
    /// Core that generated the request (for per-core accounting); writebacks
    /// inherit the evicting core.
    pub core: usize,
}

impl MemRequest {
    /// Creates a read request for the line containing `addr`.
    pub fn read(id: RequestId, addr: PhysAddr) -> Self {
        MemRequest {
            id,
            kind: ReqKind::Read,
            addr: addr.line_aligned(),
            mask: WordMask::FULL,
            core: 0,
        }
    }

    /// Creates a write(back) request for the line containing `addr` with the
    /// given dirty mask.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is empty: a writeback with no dirty words is a cache
    /// bookkeeping bug, not a valid request.
    pub fn write(id: RequestId, addr: PhysAddr, mask: WordMask) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented # Panics contract — an empty writeback mask is a cache bookkeeping bug
        assert!(
            !mask.is_empty(),
            "write request must carry at least one dirty word"
        );
        MemRequest {
            id,
            kind: ReqKind::Write,
            addr: addr.line_aligned(),
            mask,
            core: 0,
        }
    }

    /// Tags the request with the generating core.
    #[must_use]
    pub fn with_core(mut self, core: usize) -> Self {
        self.core = core;
        self
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {} mask {}",
            self.id, self.kind, self.addr, self.mask
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_is_full_mask_and_aligned() {
        let r = MemRequest::read(7, PhysAddr::new(0x47));
        assert_eq!(r.addr, PhysAddr::new(0x40));
        assert!(r.mask.is_full());
        assert!(r.kind.is_read());
    }

    #[test]
    fn write_keeps_mask() {
        let m = WordMask::from_words([2, 3]);
        let w = MemRequest::write(8, PhysAddr::new(0x80), m);
        assert_eq!(w.mask, m);
        assert!(w.kind.is_write());
    }

    #[test]
    #[should_panic(expected = "at least one dirty word")]
    fn write_rejects_empty_mask() {
        let _ = MemRequest::write(9, PhysAddr::new(0x0), WordMask::EMPTY);
    }

    #[test]
    fn with_core_tags() {
        let r = MemRequest::read(1, PhysAddr::new(0)).with_core(3);
        assert_eq!(r.core, 3);
    }
}
