//! Physical byte addresses.

use core::fmt;

use crate::{LINE_BYTES, WORD_BYTES};

/// A physical byte address in the simulated machine.
///
/// The newtype keeps byte addresses, line numbers and DRAM coordinates from
/// being mixed up. Arithmetic helpers are provided for the line/word
/// granularities the rest of the workspace cares about.
///
/// # Example
///
/// ```
/// use mem_model::PhysAddr;
///
/// let addr = PhysAddr::new(0x1047);
/// assert_eq!(addr.line_aligned(), PhysAddr::new(0x1040));
/// assert_eq!(addr.word_in_line(), 0); // 0x1047 is inside word 0 of its line
/// assert_eq!(PhysAddr::new(0x1078).word_in_line(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address rounded down to its cache-line boundary.
    pub const fn line_aligned(self) -> Self {
        PhysAddr(self.0 & !(LINE_BYTES - 1))
    }

    /// Returns the cache-line number (byte address divided by the line size).
    pub const fn line_number(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// Creates an address from a cache-line number.
    pub const fn from_line_number(line: u64) -> Self {
        PhysAddr(line * LINE_BYTES)
    }

    /// Index (0..8) of the 8-byte word this address falls into within its
    /// cache line.
    pub const fn word_in_line(self) -> u8 {
        ((self.0 % LINE_BYTES) / WORD_BYTES) as u8
    }

    /// Returns `true` if the address is aligned to a cache-line boundary.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES)
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying 64-bit address space, which would
    /// indicate a bug in a workload generator.
    pub fn offset(self, bytes: u64) -> Self {
        PhysAddr(
            self.0
                .checked_add(bytes)
                // sim-lint: allow(no-panic-hot-path): documented contract — u64 address overflow means a broken workload generator, not a recoverable state
                .expect("physical address overflow"),
        )
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(addr: PhysAddr) -> Self {
        addr.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        let a = PhysAddr::new(0x1234_5678);
        assert_eq!(a.line_aligned().raw(), 0x1234_5640);
        assert!(a.line_aligned().is_line_aligned());
        assert!(!a.is_line_aligned());
    }

    #[test]
    fn line_number_roundtrip() {
        for line in [0u64, 1, 17, 1 << 20, (1 << 33) / 64 - 1] {
            let a = PhysAddr::from_line_number(line);
            assert_eq!(a.line_number(), line);
            assert!(a.is_line_aligned());
        }
    }

    #[test]
    fn word_in_line_covers_all_words() {
        let base = PhysAddr::new(0x40);
        for w in 0..8u8 {
            let a = base.offset(u64::from(w) * 8);
            assert_eq!(a.word_in_line(), w);
            // Every byte within the word reports the same word index.
            assert_eq!(a.offset(7).word_in_line(), w);
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(PhysAddr::new(0x40).to_string(), "0x0000000040");
    }

    #[test]
    fn conversions() {
        let a: PhysAddr = 0x80u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 0x80);
    }
}
