//! Shared vocabulary types for the Partial Row Activation (PRA) reproduction.
//!
//! This crate defines the data types every other crate in the workspace speaks
//! in terms of:
//!
//! * [`PhysAddr`] — a physical byte address in the simulated machine.
//! * [`DramGeometry`] — the shape of the DRAM system (channels, ranks, banks,
//!   rows, columns, chips, sub-arrays, MATs), defaulting to the paper's
//!   baseline of an 8 GB, 2-channel, 2-rank/channel system built from
//!   2 Gb x8 DDR3-1600 chips.
//! * [`AddressMapping`] — row-interleaved and line-interleaved physical
//!   address decompositions into `(channel, rank, bank, row, column)`.
//! * [`WordMask`] — the 8-bit word-granularity dirty/PRA mask at the heart of
//!   the paper's mechanism.
//! * [`MemRequest`] — a read or write request as seen by the memory
//!   controller.
//!
//! # Example
//!
//! ```
//! use mem_model::{AddressMapping, DramGeometry, PhysAddr, WordMask};
//!
//! let geometry = DramGeometry::baseline_ddr3();
//! let mapping = AddressMapping::RowInterleaved;
//! let loc = mapping.decode(PhysAddr::new(0x1234_5678), &geometry);
//! assert!(loc.bank < geometry.banks_per_rank as u32);
//!
//! let mask = WordMask::from_words([0, 7]);
//! assert_eq!(mask.count_words(), 2);
//! assert_eq!(format!("{mask}"), "10000001b");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod geometry;
mod mapping;
mod mask;
mod request;
pub mod rng;

pub use addr::PhysAddr;
pub use geometry::{DramGeometry, GeometryError};
pub use mapping::{AddressMapping, Location};
pub use mask::{WordMask, WORDS_PER_LINE};
pub use request::{MemRequest, ReqKind, RequestId};

/// Bytes in a cache line throughout the simulated system.
pub const LINE_BYTES: u64 = 64;

/// Bytes in one word (the dirty-tracking granularity of the paper's FGD).
pub const WORD_BYTES: u64 = 8;
