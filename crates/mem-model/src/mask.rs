//! Word-granularity masks: the FGD dirty mask and the PRA activation mask.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// Words per cache line (64 B line / 8 B words).
pub const WORDS_PER_LINE: usize = 8;

/// An 8-bit word mask over a 64-byte cache line.
///
/// Bit `i` covers word `i` (bytes `8*i..8*i+8`). The same type serves as
///
/// * the **fine-grained dirty (FGD) mask** a cache line carries (Section
///   4.1.4 of the paper), and
/// * the **PRA mask** delivered to the DRAM chips on a partial activation
///   (Section 4.1.1): bit `i` selects the `i`-th group of two MATs in the
///   addressed sub-array.
///
/// The paper renders masks most-significant-word first with a `b` suffix
/// (e.g. `10000001b` selects the first and eighth groups); [`fmt::Display`]
/// follows that convention, so bit 0 (word 0) is the **leftmost** digit.
///
/// # Example
///
/// ```
/// use mem_model::WordMask;
///
/// let m = WordMask::from_words([0, 7]);
/// assert_eq!(m.to_string(), "10000001b");
/// assert_eq!(m.count_words(), 2);
/// assert!(m.is_subset_of(WordMask::FULL));
/// assert!(!WordMask::FULL.is_subset_of(m));
/// assert_eq!(m | WordMask::from_words([1]), WordMask::from_words([0, 1, 7]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WordMask(u8);

impl WordMask {
    /// The empty mask (no words selected).
    pub const EMPTY: WordMask = WordMask(0);
    /// The full mask (all eight words; a conventional full-row activation).
    pub const FULL: WordMask = WordMask(0xFF);

    /// Creates a mask from raw bits (bit `i` = word `i`).
    pub const fn from_bits(bits: u8) -> Self {
        WordMask(bits)
    }

    /// Raw bits of the mask.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Mask with exactly the given word selected.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8`.
    pub fn single(word: u8) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented # Panics argument contract on a value-constructor
        assert!(
            (word as usize) < WORDS_PER_LINE,
            "word index {word} out of range"
        );
        WordMask(1 << word)
    }

    /// Mask selecting every word index in the iterator.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= 8`.
    pub fn from_words<I: IntoIterator<Item = u8>>(words: I) -> Self {
        words
            .into_iter()
            .fold(WordMask::EMPTY, |m, w| m | WordMask::single(w))
    }

    /// Mask selecting the first `n` words (`n == 8` gives [`WordMask::FULL`]).
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn first_n(n: usize) -> Self {
        // sim-lint: allow(no-panic-hot-path): documented # Panics argument contract on a value-constructor
        assert!(
            n <= WORDS_PER_LINE,
            "cannot select {n} of {WORDS_PER_LINE} words"
        );
        if n == WORDS_PER_LINE {
            WordMask::FULL
        } else {
            WordMask(((1u16 << n) - 1) as u8)
        }
    }

    /// Number of selected words, 0..=8.
    pub const fn count_words(self) -> u32 {
        self.0.count_ones()
    }

    /// Activation granularity in eighths of a row: a mask selecting `k`
    /// words activates `k` of the 8 MAT groups, i.e. `k/8` of the row.
    ///
    /// Identical to [`WordMask::count_words`]; the alias exists because call
    /// sites read better in power-model code (`granularity_eighths` indexes
    /// the paper's Table 3 ACT power array).
    pub const fn granularity_eighths(self) -> u32 {
        self.count_words()
    }

    /// `true` if no word is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if every word is selected (a full-row activation).
    pub const fn is_full(self) -> bool {
        self.0 == 0xFF
    }

    /// `true` if every word selected by `self` is also selected by `other`.
    ///
    /// This is the row-buffer coverage test of Section 5.2.1: a write with
    /// dirty mask `m` hits a partially opened row with mask `open` iff
    /// `m.is_subset_of(open)`.
    pub const fn is_subset_of(self, other: WordMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` if the given word is selected.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8`.
    pub fn contains(self, word: u8) -> bool {
        // sim-lint: allow(no-panic-hot-path): documented # Panics argument contract; word indices come from 0..WORDS_PER_LINE loops
        assert!(
            (word as usize) < WORDS_PER_LINE,
            "word index {word} out of range"
        );
        self.0 & (1 << word) != 0
    }

    /// Marks a word as selected, returning the new mask.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8`.
    #[must_use]
    pub fn with_word(self, word: u8) -> Self {
        self | WordMask::single(word)
    }

    /// Iterates over the selected word indices in ascending order.
    pub fn iter_words(self) -> impl Iterator<Item = u8> {
        (0..WORDS_PER_LINE as u8).filter(move |&w| self.0 & (1 << w) != 0)
    }

    /// Fraction (0.0..=1.0) of the line's data this mask covers; the write
    /// I/O energy of a PRA write scales by this factor.
    pub fn fraction(self) -> f64 {
        f64::from(self.count_words()) / WORDS_PER_LINE as f64
    }
}

impl BitOr for WordMask {
    type Output = WordMask;

    fn bitor(self, rhs: WordMask) -> WordMask {
        WordMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for WordMask {
    fn bitor_assign(&mut self, rhs: WordMask) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for WordMask {
    /// Paper convention: word 0 leftmost, trailing `b` (e.g. `10000001b`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in 0..WORDS_PER_LINE as u8 {
            write!(f, "{}", if self.0 & (1 << w) != 0 { '1' } else { '0' })?;
        }
        write!(f, "b")
    }
}

impl fmt::Binary for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counting() {
        assert_eq!(WordMask::EMPTY.count_words(), 0);
        assert_eq!(WordMask::FULL.count_words(), 8);
        assert_eq!(WordMask::single(3).count_words(), 1);
        assert_eq!(WordMask::from_words([0, 1, 7]).count_words(), 3);
        assert_eq!(WordMask::first_n(0), WordMask::EMPTY);
        assert_eq!(WordMask::first_n(8), WordMask::FULL);
        assert_eq!(WordMask::first_n(3), WordMask::from_words([0, 1, 2]));
    }

    #[test]
    fn paper_display_convention() {
        // Section 4.1.2: "if a PRA mask is 10000001b, the first and eighth
        // groups of two MATs are selected".
        assert_eq!(WordMask::from_words([0, 7]).to_string(), "10000001b");
        assert_eq!(WordMask::from_words([0, 1]).to_string(), "11000000b");
        assert_eq!(WordMask::FULL.to_string(), "11111111b");
        assert_eq!(WordMask::EMPTY.to_string(), "00000000b");
    }

    #[test]
    fn subset_semantics() {
        let open = WordMask::from_words([0, 1]);
        assert!(WordMask::single(0).is_subset_of(open));
        assert!(WordMask::from_words([0, 1]).is_subset_of(open));
        assert!(!WordMask::single(2).is_subset_of(open));
        assert!(!WordMask::FULL.is_subset_of(open));
        assert!(WordMask::EMPTY.is_subset_of(WordMask::EMPTY));
    }

    #[test]
    fn or_merges_masks() {
        // Section 5.2.1: queued requests to the same row OR their masks.
        let mut m = WordMask::single(0);
        m |= WordMask::single(7);
        assert_eq!(m, WordMask::from_words([0, 7]));
        assert_eq!(m | WordMask::FULL, WordMask::FULL);
    }

    #[test]
    fn iter_words_matches_contains() {
        let m = WordMask::from_words([1, 4, 6]);
        let words: Vec<u8> = m.iter_words().collect();
        assert_eq!(words, vec![1, 4, 6]);
        for w in 0..8 {
            assert_eq!(m.contains(w), words.contains(&w));
        }
    }

    #[test]
    fn fraction_and_granularity() {
        assert_eq!(WordMask::FULL.fraction(), 1.0);
        assert_eq!(WordMask::single(0).fraction(), 0.125);
        assert_eq!(WordMask::from_words([2, 5]).granularity_eighths(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_rejects_out_of_range() {
        let _ = WordMask::single(8);
    }
}
