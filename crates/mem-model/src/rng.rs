//! A small, deterministic, dependency-free PRNG for the workspace.
//!
//! The simulator must be reproducible offline — no registry access, no
//! platform entropy — so instead of an external `rand` dependency the
//! workspace carries this module: a [SplitMix64] seed expander feeding a
//! [xoshiro256**] generator (Blackman & Vigna). Both are public-domain
//! algorithms; xoshiro256** passes BigCrush and is more than adequate for
//! workload synthesis and randomized tests.
//!
//! A given seed always produces the same stream on every platform, which is
//! what experiment reproducibility (and `cargo test` determinism) rides on.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c
//!
//! # Example
//!
//! ```
//! use mem_model::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.random_range(0u64..10) < 10);
//! ```

use std::ops::Range;

/// The golden-ratio increment used by SplitMix64.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** generator.
///
/// Not cryptographically secure; use only for simulation and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as the xoshiro authors recommend (this guarantees a
    /// non-zero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw generator state, for checkpointing. Restore it with
    /// [`Rng::set_state`] to resume the stream at exactly this position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Overwrites the generator state with one captured by [`Rng::state`].
    /// An all-zero state (never produced by seeding or stepping) would
    /// wedge xoshiro at zero, so it is replaced by the zero-seed expansion.
    pub fn set_state(&mut self, s: [u64; 4]) {
        if s == [0; 4] {
            *self = Rng::seed_from_u64(0);
        } else {
            self.s = s;
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased uniform integer in `[0, n)` via Lemire's widening
    /// multiply with rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        // sim-lint: allow(no-panic-hot-path): documented # Panics argument contract; a zero bound has no defensible fallback
        assert!(n > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n; // 2^64 mod n
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.random_f64() < p
    }
}

/// Integer types [`Rng::random_range`] can sample uniformly.
pub trait RangeSample: Sized {
    /// Draws a uniform value in `range` (half-open).
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                // sim-lint: allow(no-panic-hot-path): documented # Panics argument contract; an empty range has no defensible fallback
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        // SplitMix64 expansion guarantees a non-zero xoshiro state.
        let mut r = Rng::seed_from_u64(0);
        assert!((0..8).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Rng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_is_uniform_and_in_bounds() {
        let mut r = Rng::seed_from_u64(5);
        let mut hist = [0u64; 10];
        for _ in 0..100_000 {
            let v = r.random_range(0usize..10);
            hist[v] += 1;
        }
        for (i, &count) in hist.iter().enumerate() {
            let frac = count as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn range_with_offset() {
        let mut r = Rng::seed_from_u64(6);
        for _ in 0..1000 {
            let v = r.random_range(100u64..108);
            assert!((100..108).contains(&v));
        }
    }

    #[test]
    fn bool_probability_respected() {
        let mut r = Rng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = Rng::seed_from_u64(11);
        let _ = a.next_u64();
        let saved = a.state();
        let expect: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = Rng::seed_from_u64(999);
        b.set_state(saved);
        let got: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(expect, got);
        // The all-zero fixed point is rejected rather than wedging the stream.
        b.set_state([0; 4]);
        assert_eq!(b.state(), Rng::seed_from_u64(0).state());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = Rng::seed_from_u64(9);
        let _ = r.random_range(5u64..5);
    }
}
