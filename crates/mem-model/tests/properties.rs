//! Property-based tests for the mem-model vocabulary types.

use mem_model::{AddressMapping, DramGeometry, PhysAddr, WordMask};
use proptest::prelude::*;

proptest! {
    /// encode(decode(a)) == line_aligned(a) for all in-capacity addresses,
    /// under both mappings and several geometries.
    #[test]
    fn mapping_roundtrip(raw in 0u64..(8u64 << 30), line_interleaved: bool) {
        let g = DramGeometry::baseline_ddr3();
        let mapping = if line_interleaved {
            AddressMapping::LineInterleaved
        } else {
            AddressMapping::RowInterleaved
        };
        let addr = PhysAddr::new(raw).line_aligned();
        let loc = mapping.decode(addr, &g);
        prop_assert_eq!(mapping.encode(loc, &g), addr);
    }

    /// Two distinct line-aligned in-capacity addresses never decode to the
    /// same coordinates (the mapping is injective).
    #[test]
    fn mapping_injective(a in 0u64..(1u64 << 27), b in 0u64..(1u64 << 27)) {
        prop_assume!(a / 64 != b / 64);
        let g = DramGeometry::baseline_ddr3();
        for mapping in [AddressMapping::RowInterleaved, AddressMapping::LineInterleaved] {
            let la = mapping.decode(PhysAddr::new(a).line_aligned(), &g);
            let lb = mapping.decode(PhysAddr::new(b).line_aligned(), &g);
            prop_assert_ne!(la, lb);
        }
    }

    /// Mask OR is monotone: the union covers both operands, and the
    /// granularity never decreases.
    #[test]
    fn mask_or_monotone(a: u8, b: u8) {
        let ma = WordMask::from_bits(a);
        let mb = WordMask::from_bits(b);
        let u = ma | mb;
        prop_assert!(ma.is_subset_of(u));
        prop_assert!(mb.is_subset_of(u));
        prop_assert!(u.granularity_eighths() >= ma.granularity_eighths());
        prop_assert!(u.granularity_eighths() >= mb.granularity_eighths());
    }

    /// Subset is a partial order consistent with bit containment.
    #[test]
    fn mask_subset_partial_order(a: u8, b: u8, c: u8) {
        let (ma, mb, mc) = (WordMask::from_bits(a), WordMask::from_bits(b), WordMask::from_bits(c));
        // Reflexive.
        prop_assert!(ma.is_subset_of(ma));
        // Transitive.
        if ma.is_subset_of(mb) && mb.is_subset_of(mc) {
            prop_assert!(ma.is_subset_of(mc));
        }
        // Antisymmetric.
        if ma.is_subset_of(mb) && mb.is_subset_of(ma) {
            prop_assert_eq!(ma, mb);
        }
    }

    /// iter_words reproduces exactly the set bits.
    #[test]
    fn mask_iter_matches_bits(bits: u8) {
        let m = WordMask::from_bits(bits);
        let rebuilt = WordMask::from_words(m.iter_words());
        prop_assert_eq!(rebuilt, m);
        prop_assert_eq!(m.iter_words().count() as u32, m.count_words());
    }

    /// word_in_line is consistent with line-relative byte offsets.
    #[test]
    fn word_in_line_consistent(raw: u64) {
        let addr = PhysAddr::new(raw);
        let offset = raw % 64;
        prop_assert_eq!(u64::from(addr.word_in_line()), offset / 8);
    }
}
