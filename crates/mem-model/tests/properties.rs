//! Randomized property tests for the mem-model vocabulary types.
//!
//! Formerly driven by proptest; now deterministic seeded sweeps over the
//! in-repo [`mem_model::rng`] PRNG so the suite builds and runs offline.

use mem_model::rng::Rng;
use mem_model::{AddressMapping, DramGeometry, PhysAddr, WordMask};

const CASES: u64 = 256;

/// encode(decode(a)) == line_aligned(a) for all in-capacity addresses,
/// under both mappings.
#[test]
fn mapping_roundtrip() {
    let g = DramGeometry::baseline_ddr3();
    let mut rng = Rng::seed_from_u64(0x6d61_7070);
    for _ in 0..CASES {
        let raw = rng.random_range(0u64..(8u64 << 30));
        for mapping in [
            AddressMapping::RowInterleaved,
            AddressMapping::LineInterleaved,
        ] {
            let addr = PhysAddr::new(raw).line_aligned();
            let loc = mapping.decode(addr, &g);
            assert_eq!(
                mapping.encode(loc, &g),
                addr,
                "mapping {mapping:?}, raw {raw:#x}"
            );
        }
    }
}

/// Two distinct line-aligned in-capacity addresses never decode to the
/// same coordinates (the mapping is injective).
#[test]
fn mapping_injective() {
    let g = DramGeometry::baseline_ddr3();
    let mut rng = Rng::seed_from_u64(0x696e_6a65);
    let mut checked = 0;
    while checked < CASES {
        let a = rng.random_range(0u64..(1u64 << 27));
        let b = rng.random_range(0u64..(1u64 << 27));
        if a / 64 == b / 64 {
            continue;
        }
        checked += 1;
        for mapping in [
            AddressMapping::RowInterleaved,
            AddressMapping::LineInterleaved,
        ] {
            let la = mapping.decode(PhysAddr::new(a).line_aligned(), &g);
            let lb = mapping.decode(PhysAddr::new(b).line_aligned(), &g);
            assert_ne!(la, lb, "mapping {mapping:?}: {a:#x} and {b:#x} collided");
        }
    }
}

/// Mask OR is monotone: the union covers both operands, and the
/// granularity never decreases. Exhaustive over all 2^16 pairs.
#[test]
fn mask_or_monotone() {
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            let ma = WordMask::from_bits(a);
            let mb = WordMask::from_bits(b);
            let u = ma | mb;
            assert!(ma.is_subset_of(u));
            assert!(mb.is_subset_of(u));
            assert!(u.granularity_eighths() >= ma.granularity_eighths());
            assert!(u.granularity_eighths() >= mb.granularity_eighths());
        }
    }
}

/// Subset is a partial order consistent with bit containment.
#[test]
fn mask_subset_partial_order() {
    let mut rng = Rng::seed_from_u64(0x7375_6273);
    for _ in 0..4096 {
        let a = rng.random_range(0u64..256) as u8;
        let b = rng.random_range(0u64..256) as u8;
        let c = rng.random_range(0u64..256) as u8;
        let (ma, mb, mc) = (
            WordMask::from_bits(a),
            WordMask::from_bits(b),
            WordMask::from_bits(c),
        );
        // Reflexive.
        assert!(ma.is_subset_of(ma));
        // Transitive.
        if ma.is_subset_of(mb) && mb.is_subset_of(mc) {
            assert!(ma.is_subset_of(mc));
        }
        // Antisymmetric.
        if ma.is_subset_of(mb) && mb.is_subset_of(ma) {
            assert_eq!(ma, mb);
        }
    }
}

/// iter_words reproduces exactly the set bits. Exhaustive over all masks.
#[test]
fn mask_iter_matches_bits() {
    for bits in 0..=255u8 {
        let m = WordMask::from_bits(bits);
        let rebuilt = WordMask::from_words(m.iter_words());
        assert_eq!(rebuilt, m);
        assert_eq!(m.iter_words().count() as u32, m.count_words());
    }
}

/// word_in_line is consistent with line-relative byte offsets.
#[test]
fn word_in_line_consistent() {
    let mut rng = Rng::seed_from_u64(0x776f_7264);
    for _ in 0..CASES {
        let raw = rng.next_u64();
        let addr = PhysAddr::new(raw);
        let offset = raw % 64;
        assert_eq!(u64::from(addr.word_in_line()), offset / 8);
    }
}
