//! Recovery pipeline for faulted DRAM commands: detection → bounded
//! retry/replay → graceful degradation.
//!
//! Real DDR4 controllers protect the command/address bus with C/A parity:
//! the DRAM checks a parity bit alongside every command, *blocks* a
//! mismatching command instead of executing it, and asserts the shared
//! `ALERT_n` pin a fixed latency later. The controller then replays the
//! faulted command window, and only falls back to a safe mode when its
//! retry budget is exhausted. This crate models that pipeline for the PRA
//! simulator:
//!
//! * [`RecoveryEngine`] — per-channel alert bookkeeping: which (rank,
//!   bank) is held closed until its replay window opens, how many retries
//!   each faulted (rank, bank, row) has consumed, and linear cycle-domain
//!   backoff between attempts.
//! * [`HealthScoreboard`] — per-bank/per-row standing: rows whose masked
//!   (partial) activations keep faulting are *demoted* to full-row
//!   activations (no mask transfer → nothing left to corrupt) and
//!   re-promoted after a probation window.
//! * [`RecoveryCounts`] — the `recover.*` metrics every layer above
//!   reports: alerts, retries, recoveries, exhaustions, demotions,
//!   promotions.
//!
//! The engine is pure cycle-domain state: it draws no randomness and does
//! nothing unless a fault is reported, so a run with recovery enabled but
//! no faults firing is bit-identical to a run without recovery.
//!
//! # Example
//!
//! ```
//! use sim_recover::{RecoveryConfig, RecoveryEngine, RecoveryVerdict};
//!
//! let mut eng = RecoveryEngine::new(RecoveryConfig::default());
//! // A parity fault on an ACT to (rank 0, bank 2, row 7) at cycle 100:
//! match eng.on_fault(100, 0, 2, 7) {
//!     RecoveryVerdict::Replay { until, attempt } => {
//!         assert_eq!(attempt, 1);
//!         assert!(until > 100, "the bank is held until the alert window elapses");
//!         assert!(eng.is_blocked(100, 0, 2));
//!     }
//!     RecoveryVerdict::Exhausted => unreachable!("budget is fresh"),
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::fmt;
use std::collections::BTreeMap;

use sim_obs::MetricsRegistry;
use sim_snap::{SnapError, SnapReader, SnapState, SnapWriter};

/// Tuning knobs of the recovery pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Memory cycles between a faulted command's issue slot and the
    /// controller observing the ALERT_n-style error signal; the faulted
    /// bank accepts no commands during this window (DDR4 C/A parity
    /// latency, a handful of nCK).
    pub alert_latency: u64,
    /// Replay attempts per faulted command before the terminal fallback
    /// (masked ACT → full-row ACT; dropped command → plain reschedule).
    pub max_retries: u32,
    /// Extra cycles added to the replay window per *prior* failed attempt
    /// (linear cycle-domain backoff: attempt `n` waits
    /// `alert_latency + backoff_cycles * (n - 1)`).
    pub backoff_cycles: u64,
    /// Cycles a demoted row stays on full-row activations before the
    /// scoreboard re-promotes it to partial activation.
    pub probation_cycles: u64,
}

impl RecoveryConfig {
    /// Checks the knobs for consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryError`] naming the offending knob: the alert
    /// latency and the probation window must both be at least one cycle.
    pub fn validate(&self) -> Result<(), RecoveryError> {
        if self.alert_latency == 0 {
            return Err(RecoveryError(
                "alert_latency must be at least 1 cycle".into(),
            ));
        }
        if self.probation_cycles == 0 {
            return Err(RecoveryError(
                "probation_cycles must be at least 1 cycle".into(),
            ));
        }
        Ok(())
    }
}

impl Default for RecoveryConfig {
    /// DDR4-flavoured defaults: a 6-cycle alert latency, 3 retries with
    /// 8-cycle linear backoff, and a 50 000-cycle probation window.
    fn default() -> Self {
        RecoveryConfig {
            alert_latency: 6,
            max_retries: 3,
            backoff_cycles: 8,
            probation_cycles: 50_000,
        }
    }
}

/// An inconsistent [`RecoveryConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError(String);

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid recovery config: {}", self.0)
    }
}

impl std::error::Error for RecoveryError {}

/// Counters over everything the recovery pipeline did, published as the
/// `recover.*` metric family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Parity alerts raised (one per detected command fault entering the
    /// pipeline, replays included).
    pub alerts: u64,
    /// Replay attempts scheduled (each consumes one unit of some
    /// command's retry budget).
    pub retries: u64,
    /// Faulted commands that eventually issued successfully within their
    /// retry budget.
    pub recovered: u64,
    /// Retry budgets exhausted — the command took its terminal fallback
    /// (full-row activation, or a plain reschedule for dropped commands).
    pub exhausted: u64,
    /// Rows demoted to full-row activations by the health scoreboard.
    pub demotions: u64,
    /// Demoted rows re-promoted to partial activation after probation.
    pub promotions: u64,
}

impl RecoveryCounts {
    /// Field-wise sum, for aggregating per-channel engines into one
    /// report record.
    #[must_use]
    pub fn merged(self, other: RecoveryCounts) -> RecoveryCounts {
        RecoveryCounts {
            alerts: self.alerts + other.alerts,
            retries: self.retries + other.retries,
            recovered: self.recovered + other.recovered,
            exhausted: self.exhausted + other.exhausted,
            demotions: self.demotions + other.demotions,
            promotions: self.promotions + other.promotions,
        }
    }

    /// `true` when the pipeline ever engaged — the campaign harness
    /// classifies such runs `Recovered` instead of plain `Ok`.
    pub fn engaged(&self) -> bool {
        self.alerts > 0
    }

    /// Mirrors the counters into a metrics registry under the canonical
    /// `recover.*` names.
    pub fn publish_to(&self, registry: &mut MetricsRegistry) {
        let mut set = |name: &str, value: u64| {
            let id = registry.counter(name);
            registry.set_counter(id, value);
        };
        set("recover.alerts", self.alerts);
        set("recover.retries", self.retries);
        set("recover.recovered", self.recovered);
        set("recover.exhausted", self.exhausted);
        set("recover.demotions", self.demotions);
        set("recover.promotions", self.promotions);
    }
}

/// What the engine decided about a freshly reported command fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryVerdict {
    /// Retry budget remains: the bank is held closed and the command
    /// replays once the window opens.
    Replay {
        /// First cycle at which the faulted bank accepts commands again.
        until: u64,
        /// 1-based attempt number this replay consumes.
        attempt: u32,
    },
    /// Budget exhausted: take the terminal fallback now. The per-command
    /// attempt state is cleared so a later fault at the same site starts
    /// a fresh budget.
    Exhausted,
}

/// A row's standing with the health scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStanding {
    /// Partial activations allowed.
    Healthy,
    /// Demoted: activations to this row must open the full row.
    Demoted,
    /// Probation just elapsed — this poll re-promoted the row (the caller
    /// should emit the promotion trace event).
    Promoted,
}

/// Per-bank/per-row health: rows with persistent mask faults are demoted
/// to full-row activations and re-promoted after a probation window.
#[derive(Debug, Clone, Default)]
pub struct HealthScoreboard {
    /// Demoted rows, keyed (rank, bank, row) → first cycle at which the
    /// row is eligible for re-promotion.
    demoted: BTreeMap<(u32, u32, u32), u64>,
}

impl HealthScoreboard {
    /// Demotes a row until `now + probation_cycles`. Re-demoting an
    /// already demoted row restarts its probation.
    pub fn demote(&mut self, now: u64, rank: u32, bank: u32, row: u32, probation_cycles: u64) {
        self.demoted
            .insert((rank, bank, row), now.saturating_add(probation_cycles));
    }

    /// The row's current standing. A demoted row whose probation has
    /// elapsed is removed and reported as [`RowStanding::Promoted`]
    /// exactly once.
    pub fn standing(&mut self, now: u64, rank: u32, bank: u32, row: u32) -> RowStanding {
        match self.demoted.get(&(rank, bank, row)) {
            None => RowStanding::Healthy,
            Some(&until) if now < until => RowStanding::Demoted,
            Some(_) => {
                self.demoted.remove(&(rank, bank, row));
                RowStanding::Promoted
            }
        }
    }

    /// Number of currently demoted rows.
    pub fn demoted_rows(&self) -> usize {
        self.demoted.len()
    }
}

/// Per-channel recovery state machine. The memory controller reports
/// detected command faults and successful issues; the engine answers with
/// replay windows, budget verdicts and row standings, and accumulates the
/// `recover.*` counters.
#[derive(Debug, Clone)]
pub struct RecoveryEngine {
    config: RecoveryConfig,
    counts: RecoveryCounts,
    /// (rank, bank) → first cycle at which the bank accepts commands
    /// again after an alert.
    blocked: BTreeMap<(u32, u32), u64>,
    /// (rank, bank, row) → failed attempts consumed so far by the faulted
    /// command parked there.
    attempts: BTreeMap<(u32, u32, u32), u32>,
    scoreboard: HealthScoreboard,
}

impl RecoveryEngine {
    /// An engine with the given knobs and all counters zero.
    pub fn new(config: RecoveryConfig) -> Self {
        RecoveryEngine {
            config,
            counts: RecoveryCounts::default(),
            blocked: BTreeMap::new(),
            attempts: BTreeMap::new(),
            scoreboard: HealthScoreboard::default(),
        }
    }

    /// The knobs this engine runs with.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Counters accumulated so far.
    pub fn counts(&self) -> RecoveryCounts {
        self.counts
    }

    /// The health scoreboard (read-only view).
    pub fn scoreboard(&self) -> &HealthScoreboard {
        &self.scoreboard
    }

    /// Reports a detected command fault (parity mismatch) at `(rank,
    /// bank, row)` in cycle `now`. Raises an alert and either schedules a
    /// replay — holding the bank closed until the alert window (plus
    /// linear backoff) elapses — or declares the budget exhausted.
    pub fn on_fault(&mut self, now: u64, rank: u32, bank: u32, row: u32) -> RecoveryVerdict {
        self.counts.alerts += 1;
        let attempts = self.attempts.entry((rank, bank, row)).or_insert(0);
        if *attempts >= self.config.max_retries {
            self.attempts.remove(&(rank, bank, row));
            self.counts.exhausted += 1;
            return RecoveryVerdict::Exhausted;
        }
        *attempts += 1;
        let attempt = *attempts;
        self.counts.retries += 1;
        let until = now
            .saturating_add(self.config.alert_latency)
            .saturating_add(
                self.config
                    .backoff_cycles
                    .saturating_mul(u64::from(attempt - 1)),
            );
        self.blocked.insert((rank, bank), until);
        RecoveryVerdict::Replay { until, attempt }
    }

    /// Reports that a command issued successfully at `(rank, bank, row)`.
    /// Returns `true` when this completed an in-flight recovery (a prior
    /// fault at this site had consumed retry budget).
    pub fn on_success(&mut self, rank: u32, bank: u32, row: u32) -> bool {
        if self.attempts.remove(&(rank, bank, row)).is_some() {
            self.counts.recovered += 1;
            self.blocked.remove(&(rank, bank));
            true
        } else {
            false
        }
    }

    /// Whether `(rank, bank)` is still inside a replay hold-off window at
    /// cycle `now` — the scheduler must not issue commands to it.
    pub fn is_blocked(&self, now: u64, rank: u32, bank: u32) -> bool {
        self.blocked
            .get(&(rank, bank))
            .is_some_and(|&until| now < until)
    }

    /// Demotes `row` on the health scoreboard (terminal fallback of a
    /// masked activation whose budget ran out).
    pub fn demote_row(&mut self, now: u64, rank: u32, bank: u32, row: u32) {
        self.counts.demotions += 1;
        self.scoreboard
            .demote(now, rank, bank, row, self.config.probation_cycles);
    }

    /// Polls the row's standing, counting a promotion when probation has
    /// just elapsed (see [`HealthScoreboard::standing`]).
    pub fn row_standing(&mut self, now: u64, rank: u32, bank: u32, row: u32) -> RowStanding {
        let standing = self.scoreboard.standing(now, rank, bank, row);
        if standing == RowStanding::Promoted {
            self.counts.promotions += 1;
        }
        standing
    }
}

impl SnapState for RecoveryEngine {
    // The config is covered by the snapshot's config digest; the mutable
    // state is the counters, per-bank hold-offs, per-command attempt
    // budgets and the demotion scoreboard — all BTreeMaps, so iteration
    // order is already canonical.
    fn snap_save(&self, w: &mut SnapWriter) {
        w.section("recovery-engine");
        let c = self.counts;
        for v in [
            c.alerts,
            c.retries,
            c.recovered,
            c.exhausted,
            c.demotions,
            c.promotions,
        ] {
            w.u64(v);
        }
        w.seq(self.blocked.len());
        for (&(rank, bank), &until) in &self.blocked {
            w.u32(rank);
            w.u32(bank);
            w.u64(until);
        }
        w.seq(self.attempts.len());
        for (&(rank, bank, row), &tries) in &self.attempts {
            w.u32(rank);
            w.u32(bank);
            w.u32(row);
            w.u32(tries);
        }
        w.seq(self.scoreboard.demoted.len());
        for (&(rank, bank, row), &until) in &self.scoreboard.demoted {
            w.u32(rank);
            w.u32(bank);
            w.u32(row);
            w.u64(until);
        }
    }

    fn snap_load(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.section("recovery-engine")?;
        self.counts = RecoveryCounts {
            alerts: r.u64()?,
            retries: r.u64()?,
            recovered: r.u64()?,
            exhausted: r.u64()?,
            demotions: r.u64()?,
            promotions: r.u64()?,
        };
        self.blocked.clear();
        for _ in 0..r.seq()? {
            let key = (r.u32()?, r.u32()?);
            self.blocked.insert(key, r.u64()?);
        }
        self.attempts.clear();
        for _ in 0..r.seq()? {
            let key = (r.u32()?, r.u32()?, r.u32()?);
            self.attempts.insert(key, r.u32()?);
        }
        self.scoreboard.demoted.clear();
        for _ in 0..r.seq()? {
            let key = (r.u32()?, r.u32()?, r.u32()?);
            self.scoreboard.demoted.insert(key, r.u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RecoveryConfig {
        RecoveryConfig {
            alert_latency: 6,
            max_retries: 2,
            backoff_cycles: 10,
            probation_cycles: 100,
        }
    }

    #[test]
    fn default_config_validates() {
        RecoveryConfig::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_latency_and_probation() {
        let c = RecoveryConfig {
            alert_latency: 0,
            ..RecoveryConfig::default()
        };
        assert!(c.validate().unwrap_err().to_string().contains("alert"));
        let c = RecoveryConfig {
            probation_cycles: 0,
            ..RecoveryConfig::default()
        };
        assert!(c.validate().unwrap_err().to_string().contains("probation"));
    }

    #[test]
    fn replay_windows_apply_linear_backoff() {
        let mut eng = RecoveryEngine::new(config());
        let RecoveryVerdict::Replay { until, attempt } = eng.on_fault(100, 0, 1, 7) else {
            panic!("first fault must replay");
        };
        assert_eq!((until, attempt), (106, 1), "alert latency only");
        assert!(eng.is_blocked(105, 0, 1));
        assert!(!eng.is_blocked(106, 0, 1), "window opens at `until`");
        assert!(!eng.is_blocked(105, 0, 2), "other banks unaffected");
        // Second failure at the same site: +backoff.
        let RecoveryVerdict::Replay { until, attempt } = eng.on_fault(106, 0, 1, 7) else {
            panic!("budget of 2 allows a second replay");
        };
        assert_eq!((until, attempt), (106 + 6 + 10, 2));
        // Third failure exhausts.
        assert_eq!(eng.on_fault(130, 0, 1, 7), RecoveryVerdict::Exhausted);
        let c = eng.counts();
        assert_eq!((c.alerts, c.retries, c.exhausted), (3, 2, 1));
        assert_eq!(c.recovered, 0);
        // The budget reset: a fresh fault at the same site replays again.
        assert!(matches!(
            eng.on_fault(200, 0, 1, 7),
            RecoveryVerdict::Replay { attempt: 1, .. }
        ));
    }

    #[test]
    fn success_after_fault_counts_one_recovery() {
        let mut eng = RecoveryEngine::new(config());
        assert!(!eng.on_success(0, 0, 3), "no fault pending, not a recovery");
        eng.on_fault(10, 0, 0, 3);
        assert!(eng.on_success(0, 0, 3));
        assert_eq!(eng.counts().recovered, 1);
        assert!(!eng.is_blocked(11, 0, 0), "success clears the hold-off");
        assert!(!eng.on_success(0, 0, 3), "recovery completes once");
    }

    #[test]
    fn scoreboard_demotes_and_promotes_after_probation() {
        let mut eng = RecoveryEngine::new(config());
        assert_eq!(eng.row_standing(0, 0, 2, 9), RowStanding::Healthy);
        eng.demote_row(50, 0, 2, 9);
        assert_eq!(eng.scoreboard().demoted_rows(), 1);
        assert_eq!(eng.row_standing(149, 0, 2, 9), RowStanding::Demoted);
        assert_eq!(eng.row_standing(150, 0, 2, 9), RowStanding::Promoted);
        assert_eq!(eng.row_standing(150, 0, 2, 9), RowStanding::Healthy);
        let c = eng.counts();
        assert_eq!((c.demotions, c.promotions), (1, 1));
    }

    #[test]
    fn counts_merge_and_publish_under_recover_names() {
        let a = RecoveryCounts {
            alerts: 4,
            retries: 3,
            recovered: 2,
            exhausted: 1,
            demotions: 1,
            promotions: 0,
        };
        let b = RecoveryCounts {
            alerts: 1,
            promotions: 2,
            ..RecoveryCounts::default()
        };
        let m = a.merged(b);
        assert_eq!(m.alerts, 5);
        assert_eq!(m.promotions, 2);
        assert!(m.engaged());
        assert!(!RecoveryCounts::default().engaged());
        let mut reg = MetricsRegistry::new();
        m.publish_to(&mut reg);
        assert_eq!(reg.counter_value("recover.alerts"), Some(5));
        assert_eq!(reg.counter_value("recover.retries"), Some(3));
        assert_eq!(reg.counter_value("recover.recovered"), Some(2));
        assert_eq!(reg.counter_value("recover.exhausted"), Some(1));
        assert_eq!(reg.counter_value("recover.demotions"), Some(1));
        assert_eq!(reg.counter_value("recover.promotions"), Some(2));
    }

    #[test]
    fn engine_without_faults_is_inert() {
        let mut eng = RecoveryEngine::new(RecoveryConfig::default());
        for bank in 0..8 {
            assert!(!eng.is_blocked(0, 0, bank));
            assert!(!eng.on_success(0, bank, 0));
            assert_eq!(eng.row_standing(0, 0, bank, 0), RowStanding::Healthy);
        }
        assert_eq!(eng.counts(), RecoveryCounts::default());
    }

    #[test]
    fn snapshot_roundtrip_resumes_recovery_state() {
        let mut reference = RecoveryEngine::new(config());
        reference.on_fault(100, 0, 1, 7);
        reference.on_fault(110, 1, 3, 2);
        reference.on_success(1, 3, 2);
        reference.demote_row(120, 0, 1, 7);
        let mut w = SnapWriter::new();
        reference.snap_save(&mut w);
        let payload = w.into_bytes();
        let mut restored = RecoveryEngine::new(config());
        let mut r = SnapReader::new(&payload);
        restored.snap_load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.counts(), reference.counts());
        assert_eq!(
            restored.is_blocked(105, 0, 1),
            reference.is_blocked(105, 0, 1)
        );
        assert_eq!(
            restored.scoreboard().demoted_rows(),
            reference.scoreboard().demoted_rows()
        );
        // Subsequent behaviour is identical: the hold-off, attempt budget
        // and probation deadlines survived the round trip.
        assert_eq!(
            restored.on_fault(130, 0, 1, 7),
            reference.on_fault(130, 0, 1, 7)
        );
        assert_eq!(
            restored.row_standing(220, 0, 1, 7),
            reference.row_standing(220, 0, 1, 7)
        );
        assert_eq!(restored.counts(), reference.counts());
    }

    #[test]
    fn zero_retry_budget_exhausts_immediately() {
        let mut cfg = config();
        cfg.max_retries = 0;
        let mut eng = RecoveryEngine::new(cfg);
        assert_eq!(eng.on_fault(10, 0, 0, 1), RecoveryVerdict::Exhausted);
        assert_eq!(eng.counts().retries, 0);
        assert_eq!(eng.counts().exhausted, 1);
    }
}
