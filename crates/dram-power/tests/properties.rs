//! Randomized property tests of the power models: accounting linearity,
//! monotonicity of the activation-energy curve, and breakdown consistency.
//!
//! Formerly driven by proptest; now deterministic seeded sweeps over the
//! in-repo [`mem_model::rng`] PRNG so the suite builds and runs offline.

use dram_power::{
    ActivationEnergyModel, EnergyAccounting, EnergyBreakdown, PowerParams, RankPowerState,
};
use mem_model::rng::Rng;

#[derive(Debug, Clone, Copy)]
enum Event {
    Act(u32),
    ActMats(u32),
    Read,
    Write(u8),
    Bg(u8),
    Refresh,
}

fn random_event(rng: &mut Rng) -> Event {
    match rng.random_range(0u8..6) {
        0 => Event::Act(rng.random_range(1u32..9)),
        1 => Event::ActMats(rng.random_range(1u32..17)),
        2 => Event::Read,
        3 => Event::Write(rng.random_range(1u8..9)),
        4 => Event::Bg(rng.random_range(0u8..3)),
        _ => Event::Refresh,
    }
}

fn random_events(rng: &mut Rng, max_len: usize) -> Vec<Event> {
    let len = rng.random_range(0usize..max_len);
    (0..len).map(|_| random_event(rng)).collect()
}

fn apply(acc: &mut EnergyAccounting, e: Event) {
    match e {
        Event::Act(g) => acc.activation(g),
        Event::ActMats(m) => acc.activation_mats(m),
        Event::Read => acc.read_line(),
        Event::Write(words) => acc.write_line(f64::from(words) / 8.0),
        Event::Bg(state) => acc.background_cycle(
            0,
            match state {
                0 => RankPowerState::ActiveStandby,
                1 => RankPowerState::PrechargeStandby,
                _ => RankPowerState::PowerDown,
            },
        ),
        Event::Refresh => acc.refresh(),
    }
}

fn total(events: &[Event]) -> EnergyBreakdown {
    let mut acc = EnergyAccounting::new(PowerParams::paper_table3(), 4);
    for &e in events {
        apply(&mut acc, e);
    }
    acc.breakdown()
}

/// Energy accounting is additive: processing a concatenated stream equals
/// the sum of processing its halves separately.
#[test]
fn accounting_is_additive() {
    let mut rng = Rng::seed_from_u64(0x6164_6431);
    for _ in 0..64 {
        let a = random_events(&mut rng, 50);
        let b = random_events(&mut rng, 50);
        let joint = total(&a.iter().chain(&b).copied().collect::<Vec<_>>());
        let split = total(&a) + total(&b);
        for (x, y) in joint
            .to_power(1.0)
            .components()
            .iter()
            .zip(split.to_power(1.0).components())
        {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }
}

/// Event order never matters (each event contributes independently).
#[test]
fn accounting_is_order_invariant() {
    let mut rng = Rng::seed_from_u64(0x6f72_6465);
    for _ in 0..64 {
        let events = random_events(&mut rng, 60);
        let forward = total(&events);
        let mut reversed = events.clone();
        reversed.reverse();
        let backward = total(&reversed);
        assert!((forward.total() - backward.total()).abs() < 1e-6);
        assert!((forward.act_pre - backward.act_pre).abs() < 1e-6);
        assert!((forward.io() - backward.io()).abs() < 1e-6);
    }
}

/// Activation energy is strictly monotone in MATs and bounded by the
/// full-row value. Exhaustive over the MAT range.
#[test]
fn activation_energy_monotone() {
    for m in 1u32..16 {
        let mut lo = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        lo.activation_mats(m);
        let mut hi = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        hi.activation_mats(m + 1);
        assert!(lo.breakdown().act_pre < hi.breakdown().act_pre);
        let mut full = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        full.activation_mats(16);
        assert!(hi.breakdown().act_pre <= full.breakdown().act_pre + 1e-12);
    }
}

/// Write I/O energy scales exactly linearly in the transferred words.
/// Exhaustive over the word count.
#[test]
fn write_io_linear_in_words() {
    for words in 1u8..=8 {
        let mut one = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        one.write_line(1.0 / 8.0);
        let mut many = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        many.write_line(f64::from(words) / 8.0);
        let ratio = many.breakdown().wr_io / one.breakdown().wr_io;
        assert!((ratio - f64::from(words)).abs() < 1e-9);
        // Core write energy is flat.
        assert!((many.breakdown().wr - one.breakdown().wr).abs() < 1e-12);
    }
}

/// The CACTI scaling factor is within (0, 1] and increasing. Exhaustive.
#[test]
fn cacti_scaling_behaves() {
    let model = ActivationEnergyModel::paper_table2();
    for m in 1u32..=16 {
        let s = model.scaling_factor(m);
        assert!(s > 0.0 && s <= 1.0);
        if m < 16 {
            assert!(s < model.scaling_factor(m + 1));
        }
        // Shared energy puts a floor under the curve.
        assert!(s > model.shared_energy_pj() / model.full_row_energy_pj());
    }
}

/// Power conversion and energy agree for any elapsed time.
#[test]
fn power_times_time_is_energy() {
    let mut rng = Rng::seed_from_u64(0x7077_7274);
    for _ in 0..64 {
        let events = {
            let mut ev = random_events(&mut rng, 40);
            if ev.is_empty() {
                ev.push(Event::Read);
            }
            ev
        };
        let elapsed = 1.0 + rng.random_f64() * (1e9 - 1.0);
        let e = total(&events);
        let p = e.to_power(elapsed);
        assert!((p.total() * elapsed - e.total()).abs() / e.total().max(1.0) < 1e-9);
    }
}
