//! Property-based tests of the power models: accounting linearity,
//! monotonicity of the activation-energy curve, and breakdown consistency.

use dram_power::{
    ActivationEnergyModel, EnergyAccounting, EnergyBreakdown, PowerParams, RankPowerState,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Event {
    Act(u32),
    ActMats(u32),
    Read,
    Write(u8),
    Bg(u8),
    Refresh,
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (1u32..=8).prop_map(Event::Act),
        (1u32..=16).prop_map(Event::ActMats),
        Just(Event::Read),
        (1u8..=8).prop_map(Event::Write),
        (0u8..3).prop_map(Event::Bg),
        Just(Event::Refresh),
    ]
}

fn apply(acc: &mut EnergyAccounting, e: Event) {
    match e {
        Event::Act(g) => acc.activation(g),
        Event::ActMats(m) => acc.activation_mats(m),
        Event::Read => acc.read_line(),
        Event::Write(words) => acc.write_line(f64::from(words) / 8.0),
        Event::Bg(state) => acc.background_cycle(
            0,
            match state {
                0 => RankPowerState::ActiveStandby,
                1 => RankPowerState::PrechargeStandby,
                _ => RankPowerState::PowerDown,
            },
        ),
        Event::Refresh => acc.refresh(),
    }
}

fn total(events: &[Event]) -> EnergyBreakdown {
    let mut acc = EnergyAccounting::new(PowerParams::paper_table3(), 4);
    for &e in events {
        apply(&mut acc, e);
    }
    acc.breakdown()
}

proptest! {
    /// Energy accounting is additive: processing a concatenated stream
    /// equals the sum of processing its halves separately.
    #[test]
    fn accounting_is_additive(a in prop::collection::vec(event(), 0..50),
                              b in prop::collection::vec(event(), 0..50)) {
        let joint = total(&a.iter().chain(&b).copied().collect::<Vec<_>>());
        let split = total(&a) + total(&b);
        for (x, y) in joint.to_power(1.0).components().iter()
            .zip(split.to_power(1.0).components()) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// Event order never matters (each event contributes independently).
    #[test]
    fn accounting_is_order_invariant(events in prop::collection::vec(event(), 0..60)) {
        let forward = total(&events);
        let mut reversed = events.clone();
        reversed.reverse();
        let backward = total(&reversed);
        prop_assert!((forward.total() - backward.total()).abs() < 1e-6);
        prop_assert!((forward.act_pre - backward.act_pre).abs() < 1e-6);
        prop_assert!((forward.io() - backward.io()).abs() < 1e-6);
    }

    /// Activation energy is strictly monotone in MATs and bounded by the
    /// full-row value.
    #[test]
    fn activation_energy_monotone(m in 1u32..16) {
        let mut lo = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        lo.activation_mats(m);
        let mut hi = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        hi.activation_mats(m + 1);
        prop_assert!(lo.breakdown().act_pre < hi.breakdown().act_pre);
        let mut full = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        full.activation_mats(16);
        prop_assert!(hi.breakdown().act_pre <= full.breakdown().act_pre + 1e-12);
    }

    /// Write I/O energy scales exactly linearly in the transferred words.
    #[test]
    fn write_io_linear_in_words(words in 1u8..=8) {
        let mut one = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        one.write_line(1.0 / 8.0);
        let mut many = EnergyAccounting::new(PowerParams::paper_table3(), 2);
        many.write_line(f64::from(words) / 8.0);
        let ratio = many.breakdown().wr_io / one.breakdown().wr_io;
        prop_assert!((ratio - f64::from(words)).abs() < 1e-9);
        // Core write energy is flat.
        prop_assert!((many.breakdown().wr - one.breakdown().wr).abs() < 1e-12);
    }

    /// The CACTI scaling factor is within (0, 1] and increasing.
    #[test]
    fn cacti_scaling_behaves(m in 1u32..=16) {
        let model = ActivationEnergyModel::paper_table2();
        let s = model.scaling_factor(m);
        prop_assert!(s > 0.0 && s <= 1.0);
        if m < 16 {
            prop_assert!(s < model.scaling_factor(m + 1));
        }
        // Shared energy puts a floor under the curve.
        prop_assert!(s > model.shared_energy_pj() / model.full_row_energy_pj());
    }

    /// Power conversion and energy agree for any elapsed time.
    #[test]
    fn power_times_time_is_energy(events in prop::collection::vec(event(), 1..40),
                                  elapsed in 1.0f64..1e9) {
        let e = total(&events);
        let p = e.to_power(elapsed);
        prop_assert!((p.total() * elapsed - e.total()).abs() / e.total().max(1.0) < 1e-9);
    }
}
