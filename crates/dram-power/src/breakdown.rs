//! Energy and power breakdowns by component (the axes of Figures 2 and 12).

use core::fmt;
use core::ops::{Add, AddAssign};

/// Accumulated energy per DRAM power component, in picojoules.
///
/// Components follow Figure 2's legend: `ACT-PRE`, `RD`, `WR`, `RD I/O`,
/// `WR I/O` (ODT plus write termination), `BG` (standby/power-down), `REF`.
/// Read termination is folded into `rd_io` the same way the paper folds
/// "read I/O, write ODT, and read/write termination" into its I/O category;
/// the split is still available via the dedicated fields.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Row activation + bank precharge pairs.
    pub act_pre: f64,
    /// Read burst core energy.
    pub rd: f64,
    /// Write burst core energy.
    pub wr: f64,
    /// Read output-driver I/O energy plus read termination.
    pub rd_io: f64,
    /// Write ODT energy plus write termination.
    pub wr_io: f64,
    /// Background (active/precharge standby, power-down).
    pub bg: f64,
    /// Refresh.
    pub refresh: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components (pJ).
    pub fn total(&self) -> f64 {
        self.act_pre + self.rd + self.wr + self.rd_io + self.wr_io + self.bg + self.refresh
    }

    /// Combined I/O energy (read I/O + write I/O incl. terminations), the
    /// paper's "I/O power" category.
    pub fn io(&self) -> f64 {
        self.rd_io + self.wr_io
    }

    /// Converts to average power over `elapsed_ns`, in mW.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_ns` is not strictly positive.
    pub fn to_power(&self, elapsed_ns: f64) -> PowerBreakdown {
        assert!(
            elapsed_ns > 0.0,
            "elapsed time must be positive, got {elapsed_ns}"
        );
        PowerBreakdown {
            act_pre: self.act_pre / elapsed_ns,
            rd: self.rd / elapsed_ns,
            wr: self.wr / elapsed_ns,
            rd_io: self.rd_io / elapsed_ns,
            wr_io: self.wr_io / elapsed_ns,
            bg: self.bg / elapsed_ns,
            refresh: self.refresh / elapsed_ns,
        }
    }

    /// Energy in millijoules (pJ * 1e-9), convenient for EDP arithmetic.
    pub fn total_mj(&self) -> f64 {
        self.total() * 1e-9
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        self.act_pre += rhs.act_pre;
        self.rd += rhs.rd;
        self.wr += rhs.wr;
        self.rd_io += rhs.rd_io;
        self.wr_io += rhs.wr_io;
        self.bg += rhs.bg;
        self.refresh += rhs.refresh;
    }
}

/// Average power per component, in milliwatts (energy / elapsed time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Row activation + bank precharge pairs.
    pub act_pre: f64,
    /// Read burst core power.
    pub rd: f64,
    /// Write burst core power.
    pub wr: f64,
    /// Read I/O (incl. read termination).
    pub rd_io: f64,
    /// Write I/O (ODT + write termination).
    pub wr_io: f64,
    /// Background.
    pub bg: f64,
    /// Refresh.
    pub refresh: f64,
}

impl PowerBreakdown {
    /// Total DRAM power (mW).
    pub fn total(&self) -> f64 {
        self.act_pre + self.rd + self.wr + self.rd_io + self.wr_io + self.bg + self.refresh
    }

    /// Combined I/O power, the paper's Figure 12(b) metric.
    pub fn io(&self) -> f64 {
        self.rd_io + self.wr_io
    }

    /// Fraction of total power spent on activation+precharge (the paper's
    /// motivational "up to 33%, average 25%" figure).
    pub fn act_pre_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.act_pre / self.total()
        }
    }

    /// Fraction of total power spent on I/O (the paper's "up to 19%,
    /// average 14%" figure).
    pub fn io_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.io() / self.total()
        }
    }

    /// Component values in Figure 2 legend order:
    /// `[ACT-PRE, RD, WR, RD I/O, WR I/O, BG, REF]`.
    pub fn components(&self) -> [f64; 7] {
        [
            self.act_pre,
            self.rd,
            self.wr,
            self.rd_io,
            self.wr_io,
            self.bg,
            self.refresh,
        ]
    }

    /// Component labels matching [`PowerBreakdown::components`].
    pub fn component_labels() -> [&'static str; 7] {
        ["ACT-PRE", "RD", "WR", "RD I/O", "WR I/O", "BG", "REF"]
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        writeln!(f, "{:>10} {:>10} {:>8}", "component", "mW", "share")?;
        for (label, value) in Self::component_labels().iter().zip(self.components()) {
            let share = if total > 0.0 {
                value / total * 100.0
            } else {
                0.0
            };
            writeln!(f, "{label:>10} {value:>10.3} {share:>7.1}%")?;
        }
        write!(f, "{:>10} {total:>10.3} {:>7.1}%", "total", 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            act_pre: 250.0,
            rd: 200.0,
            wr: 100.0,
            rd_io: 20.0,
            wr_io: 80.0,
            bg: 300.0,
            refresh: 50.0,
        }
    }

    #[test]
    fn totals_and_io() {
        let e = sample();
        assert_eq!(e.total(), 1000.0);
        assert_eq!(e.io(), 100.0);
        assert!((e.total_mj() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn add_accumulates() {
        let e = sample() + sample();
        assert_eq!(e.total(), 2000.0);
        assert_eq!(e.act_pre, 500.0);
    }

    #[test]
    fn power_conversion() {
        let p = sample().to_power(10.0);
        assert!((p.total() - 100.0).abs() < 1e-12);
        assert!((p.act_pre - 25.0).abs() < 1e-12);
        assert!((p.act_pre_share() - 0.25).abs() < 1e-12);
        assert!((p.io_share() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_components() {
        let text = sample().to_power(1.0).to_string();
        for label in PowerBreakdown::component_labels() {
            assert!(text.contains(label), "missing {label} in\n{text}");
        }
        assert!(text.contains("total"));
    }

    #[test]
    #[should_panic(expected = "elapsed time")]
    fn zero_elapsed_rejected() {
        let _ = sample().to_power(0.0);
    }

    #[test]
    fn zero_power_shares_are_zero() {
        let p = PowerBreakdown::default();
        assert_eq!(p.act_pre_share(), 0.0);
        assert_eq!(p.io_share(), 0.0);
    }
}
