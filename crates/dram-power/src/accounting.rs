//! Event-driven energy accumulation fed by the DRAM simulator.

use crate::telemetry::ResidencyLedger;
use crate::{EnergyBreakdown, PowerParams};

/// Number of MAT granularities tracked by the per-granularity activation
/// energy ledger (a full row spans 16 MATs).
pub const MAT_GRANULARITIES: usize = 16;

/// Background power state of one rank during one memory-clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankPowerState {
    /// At least one bank holds an open row (`ACT_STBY`).
    ActiveStandby,
    /// All banks precharged, clock enabled (`PRE_STBY`).
    PrechargeStandby,
    /// Precharge power-down (`PRE_PDN`), entered by the relaxed close-page
    /// policy when the rank is idle.
    PowerDown,
}

/// Accumulates DRAM energy from simulator events.
///
/// The simulator reports five kinds of events; each maps onto Table 3
/// parameters via [`PowerParams`]:
///
/// | event | energy charged |
/// |---|---|
/// | [`activation`](EnergyAccounting::activation) | `P_ACT(g) * tRC` (activation + precharge pair) |
/// | [`read_line`](EnergyAccounting::read_line) | `RD`, `RD I/O`, `RD TERM` over one burst window |
/// | [`write_line`](EnergyAccounting::write_line) | `WR` in full; `WR ODT`/`WR TERM` scaled by the transferred fraction |
/// | [`background_cycle`](EnergyAccounting::background_cycle) | per-rank standby/power-down power over `tCK` |
/// | [`refresh`](EnergyAccounting::refresh) | `P_REF * tRFC` |
///
/// Termination energy is only charged when the system has sibling ranks to
/// terminate into (`ranks > 1`), mirroring the dual-rank channel of the
/// paper's baseline.
#[derive(Debug, Clone)]
pub struct EnergyAccounting {
    params: PowerParams,
    ranks: usize,
    energy: EnergyBreakdown,
    activations: u64,
    reads: u64,
    writes: u64,
    refreshes: u64,
    background_cycles: u64,
    residency: ResidencyLedger,
    /// Activation+precharge energy (pJ) split by MAT count: index `m`
    /// holds the energy of all `(m + 1)`-MAT activations.
    act_by_mats: [f64; MAT_GRANULARITIES],
}

impl EnergyAccounting {
    /// Creates an accumulator for a system with `ranks` total ranks.
    ///
    /// # Panics
    ///
    /// Panics if `ranks == 0`.
    pub fn new(params: PowerParams, ranks: usize) -> Self {
        assert!(ranks > 0, "a DRAM system needs at least one rank");
        EnergyAccounting {
            params,
            ranks,
            energy: EnergyBreakdown::default(),
            activations: 0,
            reads: 0,
            writes: 0,
            refreshes: 0,
            background_cycles: 0,
            residency: ResidencyLedger::new(ranks),
            act_by_mats: [0.0; MAT_GRANULARITIES],
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Records one activation+precharge pair at `granularity_eighths/8` of a
    /// row.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is outside `1..=8`.
    pub fn activation(&mut self, granularity_eighths: u32) {
        let pj = self.params.act_energy_pj(granularity_eighths);
        self.energy.act_pre += pj;
        self.act_by_mats[granularity_eighths as usize * 2 - 1] += pj;
        self.activations += 1;
    }

    /// Records one activation+precharge pair driving `mats` of the row's 16
    /// MATs.
    ///
    /// Even MAT counts map onto the published Table 3 array
    /// (`mats/2` eighths). Odd MAT counts — which only arise in the combined
    /// Half-DRAM + PRA scheme, where each PRA group is a single halved MAT —
    /// fall back to the CACTI-derived scaling of
    /// [`ActivationEnergyModel`](crate::ActivationEnergyModel) projected onto
    /// the full-row `P_ACT`.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is outside `1..=16`.
    pub fn activation_mats(&mut self, mats: u32) {
        // sim-lint: allow(panic-reachability): hot-path callers derive mats from ActCoverage, which is clamped to 1..=16 at construction
        assert!((1..=16).contains(&mats), "mats must be 1..=16, got {mats}");
        if mats.is_multiple_of(2) {
            self.activation(mats / 2);
        } else {
            let model = crate::ActivationEnergyModel::paper_table2();
            let p_full = self.params.act_power_mw(8);
            let p = p_full * model.scaling_factor(mats);
            let pj = p * self.params.timings.trc_ns;
            self.energy.act_pre += pj;
            self.act_by_mats[mats as usize - 1] += pj;
            self.activations += 1;
        }
    }

    /// Records one full-line read transfer.
    pub fn read_line(&mut self) {
        let (core, io, term) = self.params.read_line_energy_pj();
        self.energy.rd += core;
        self.energy.rd_io += io;
        if self.ranks > 1 {
            self.energy.rd_io += term;
        }
        self.reads += 1;
    }

    /// Records one write transfer moving `fraction` (0.0..=1.0] of the
    /// line's words. Conventional schemes pass 1.0; PRA passes
    /// `dirty_words / 8`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0.0, 1.0]`.
    pub fn write_line(&mut self, fraction: f64) {
        // sim-lint: allow(panic-reachability): hot-path callers pass dirty_words/8 with dirty_words in 1..=8, so the fraction is always in (0, 1]
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "write fraction must be in (0, 1], got {fraction}"
        );
        let (core, odt, term) = self.params.write_line_energy_pj(fraction);
        self.energy.wr += core;
        self.energy.wr_io += odt;
        if self.ranks > 1 {
            self.energy.wr_io += term;
        }
        self.writes += 1;
    }

    /// Records one memory-clock cycle of background power for one rank,
    /// accounting the cycle in the rank's residency ledger.
    pub fn background_cycle(&mut self, rank: usize, state: RankPowerState) {
        let mw = match state {
            RankPowerState::ActiveStandby => self.params.act_stby_mw,
            RankPowerState::PrechargeStandby => self.params.pre_stby_mw,
            RankPowerState::PowerDown => self.params.pre_pdn_mw,
        };
        self.energy.bg += mw * self.params.timings.tck_ns;
        self.background_cycles += 1;
        self.residency.record_state(rank, state);
    }

    /// Records one cycle of per-bank open-row residency for `rank` (bit `b`
    /// of `open_mask` = bank `b` holds an open row). Energy-neutral: only
    /// the telemetry ledger moves.
    pub fn bank_residency(&mut self, rank: usize, open_mask: u16) {
        self.residency.record_open_banks(rank, open_mask);
    }

    /// The per-rank power-state residency ledger.
    pub fn residency(&self) -> &ResidencyLedger {
        &self.residency
    }

    /// Closes the residency window: per-rank state-cycle deltas since the
    /// previous close (see [`ResidencyLedger::close_window`]).
    pub fn residency_window(&mut self) -> Vec<[u64; 3]> {
        self.residency.close_window()
    }

    /// Activation+precharge energy (pJ) by MAT count: index `m` holds the
    /// cumulative energy of all `(m + 1)`-MAT activations; the array sums
    /// to [`EnergyBreakdown::act_pre`].
    pub fn act_energy_by_mats(&self) -> &[f64; MAT_GRANULARITIES] {
        &self.act_by_mats
    }

    /// Records one all-bank refresh of one rank.
    pub fn refresh(&mut self) {
        self.energy.refresh += self.params.refresh_energy_pj();
        self.refreshes += 1;
    }

    /// The accumulated energy breakdown (pJ).
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.energy
    }

    /// Event counts: (activations, reads, writes, refreshes).
    pub fn event_counts(&self) -> (u64, u64, u64, u64) {
        (self.activations, self.reads, self.writes, self.refreshes)
    }

    /// Resets all accumulated energy and counts, keeping the parameters.
    pub fn reset(&mut self) {
        self.energy = EnergyBreakdown::default();
        self.activations = 0;
        self.reads = 0;
        self.writes = 0;
        self.refreshes = 0;
        self.background_cycles = 0;
        self.residency.reset();
        self.act_by_mats = [0.0; MAT_GRANULARITIES];
    }
}

impl sim_snap::SnapState for EnergyAccounting {
    // Parameters and rank count are configuration; everything that
    // accumulates (energies bit-exact via f64 bits, event counts, the
    // residency ledger) travels.
    fn snap_save(&self, w: &mut sim_snap::SnapWriter) {
        w.section("energy-accounting");
        let e = self.energy;
        for v in [e.act_pre, e.rd, e.wr, e.rd_io, e.wr_io, e.bg, e.refresh] {
            w.f64(v);
        }
        for v in [
            self.activations,
            self.reads,
            self.writes,
            self.refreshes,
            self.background_cycles,
        ] {
            w.u64(v);
        }
        for v in self.act_by_mats {
            w.f64(v);
        }
        self.residency.snap_save(w);
    }

    fn snap_load(&mut self, r: &mut sim_snap::SnapReader) -> Result<(), sim_snap::SnapError> {
        r.section("energy-accounting")?;
        self.energy = EnergyBreakdown {
            act_pre: r.f64()?,
            rd: r.f64()?,
            wr: r.f64()?,
            rd_io: r.f64()?,
            wr_io: r.f64()?,
            bg: r.f64()?,
            refresh: r.f64()?,
        };
        self.activations = r.u64()?;
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.refreshes = r.u64()?;
        self.background_cycles = r.u64()?;
        for v in &mut self.act_by_mats {
            *v = r.f64()?;
        }
        self.residency.snap_load(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(ranks: usize) -> EnergyAccounting {
        EnergyAccounting::new(PowerParams::paper_table3(), ranks)
    }

    #[test]
    fn activation_energy_scales_with_granularity() {
        let mut a = acc(4);
        a.activation(8);
        let full = a.breakdown().act_pre;
        a.reset();
        a.activation(1);
        let eighth = a.breakdown().act_pre;
        assert!((full / eighth - 22.2 / 3.7).abs() < 1e-9);
    }

    #[test]
    fn pra_write_reduces_io_not_core() {
        let mut full = acc(4);
        full.write_line(1.0);
        let mut partial = acc(4);
        partial.write_line(0.125);
        assert_eq!(full.breakdown().wr, partial.breakdown().wr);
        assert!((partial.breakdown().wr_io - full.breakdown().wr_io * 0.125).abs() < 1e-9);
    }

    #[test]
    fn single_rank_has_no_termination() {
        let mut single = acc(1);
        single.read_line();
        let mut dual = acc(2);
        dual.read_line();
        // Dual-rank charges read termination on the sibling rank.
        assert!(dual.breakdown().rd_io > single.breakdown().rd_io);
        let t = PowerParams::paper_table3();
        let dur = t.timings.burst_cycles as f64 * t.timings.tck_ns;
        let term = t.rd_term_mw * dur * t.io_multiplier;
        assert!((dual.breakdown().rd_io - single.breakdown().rd_io - term).abs() < 1e-9);
    }

    #[test]
    fn background_states_ordered() {
        let states = [
            RankPowerState::PowerDown,
            RankPowerState::PrechargeStandby,
            RankPowerState::ActiveStandby,
        ];
        let energies: Vec<f64> = states
            .iter()
            .map(|&s| {
                let mut a = acc(2);
                a.background_cycle(0, s);
                a.breakdown().bg
            })
            .collect();
        assert!(energies[0] < energies[1] && energies[1] < energies[2]);
    }

    #[test]
    fn activation_mats_matches_table_for_even_counts() {
        for eighths in 1..=8u32 {
            let mut by_mats = acc(2);
            by_mats.activation_mats(eighths * 2);
            let mut by_eighths = acc(2);
            by_eighths.activation(eighths);
            assert_eq!(by_mats.breakdown().act_pre, by_eighths.breakdown().act_pre);
        }
    }

    #[test]
    fn activation_mats_odd_interpolates_between_neighbours() {
        // A 1-MAT activation (combined Half-DRAM + PRA minimum) costs less
        // than the published 2-MAT value but is still positive.
        let mut a = acc(2);
        a.activation_mats(1);
        let one = a.breakdown().act_pre;
        let mut b = acc(2);
        b.activation_mats(2);
        let two = b.breakdown().act_pre;
        assert!(one > 0.0 && one < two);
        // And 15 MATs cost between 14 and 16.
        let energy = |m: u32| {
            let mut x = acc(2);
            x.activation_mats(m);
            x.breakdown().act_pre
        };
        assert!(energy(15) > energy(14) && energy(15) < energy(16));
    }

    #[test]
    fn refresh_energy() {
        let mut a = acc(2);
        a.refresh();
        assert!((a.breakdown().refresh - 210.0 * 160.0).abs() < 1e-9);
    }

    #[test]
    fn counts_and_reset() {
        let mut a = acc(2);
        a.activation(8);
        a.read_line();
        a.write_line(1.0);
        a.refresh();
        assert_eq!(a.event_counts(), (1, 1, 1, 1));
        a.reset();
        assert_eq!(a.event_counts(), (0, 0, 0, 0));
        assert_eq!(a.breakdown().total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn zero_fraction_rejected() {
        acc(2).write_line(0.0);
    }

    #[test]
    fn residency_tracks_background_cycles_per_rank() {
        let mut a = acc(2);
        for _ in 0..10 {
            a.background_cycle(0, RankPowerState::ActiveStandby);
            a.background_cycle(1, RankPowerState::PowerDown);
        }
        a.background_cycle(1, RankPowerState::PrechargeStandby);
        let r = a.residency();
        assert_eq!(r.ranks()[0].state_cycles, [10, 0, 0]);
        assert_eq!(r.ranks()[1].state_cycles, [0, 1, 10]);
        assert_eq!(r.total_state_cycles(), 21);
        a.reset();
        assert_eq!(a.residency().total_state_cycles(), 0);
    }

    #[test]
    fn act_energy_by_mats_partitions_act_pre() {
        let mut a = acc(2);
        a.activation_mats(16); // full row -> index 15
        a.activation_mats(2); // one MAT pair -> index 1
        a.activation_mats(3); // odd path -> index 2
        let by_mats = a.act_energy_by_mats();
        assert!(by_mats[15] > 0.0 && by_mats[1] > 0.0 && by_mats[2] > 0.0);
        assert_eq!(by_mats[0], 0.0);
        let sum: f64 = by_mats.iter().sum();
        assert!((sum - a.breakdown().act_pre).abs() < 1e-9);
    }

    #[test]
    fn bank_residency_is_energy_neutral() {
        let mut a = acc(2);
        a.bank_residency(0, 0b11);
        assert_eq!(a.breakdown().total(), 0.0);
        assert_eq!(a.residency().ranks()[0].open_bank_cycles(), 2);
    }
}
