//! CACTI-3DD-style activation energy model (paper Table 2 and Figure 9).

/// One point of Figure 9: activation energy when `mats` MATs are activated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure9Point {
    /// Number of MATs activated (2..=16 in steps of 2 in the paper's figure).
    pub mats: u32,
    /// Row activation energy per bank, in pJ.
    pub energy_pj: f64,
    /// Energy relative to a full (16-MAT) activation.
    pub ratio: f64,
}

/// The activation energy breakdown of a 2 Gb x8 DDR3-1600 bank at 20 nm
/// (paper Table 2), decomposed into per-MAT and bank-shared components.
///
/// Per-MAT components (local bitlines, local sense amplifiers, local
/// wordline, local row decoder) scale with the number of MATs activated;
/// bank-shared components (row activation bus, row predecoder) do not — this
/// is why, as the paper notes, halving the activated MATs does **not** halve
/// activation energy (Figure 9).
///
/// # Example
///
/// ```
/// use dram_power::ActivationEnergyModel;
/// let m = ActivationEnergyModel::paper_table2();
/// assert!((m.full_row_energy_pj() - 288.752).abs() < 1e-3);
/// // Half the MATs costs more than half the energy:
/// assert!(m.scaling_factor(8) > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationEnergyModel {
    /// Local bitline energy per MAT (pJ).
    pub local_bitline_pj: f64,
    /// Local sense amplifier energy per MAT (pJ).
    pub local_sense_amp_pj: f64,
    /// Local wordline energy per MAT (pJ).
    pub local_wordline_pj: f64,
    /// Local row decoder energy per MAT (pJ).
    pub row_decoder_pj: f64,
    /// Row activation bus energy per bank (pJ), shared across MATs.
    pub activation_bus_pj: f64,
    /// Row predecoder energy per bank (pJ), shared across MATs.
    pub row_predecoder_pj: f64,
    /// MATs activated by a conventional full-row activation.
    pub mats_per_row: u32,
}

impl ActivationEnergyModel {
    /// The constants of the paper's Table 2.
    pub const fn paper_table2() -> Self {
        ActivationEnergyModel {
            local_bitline_pj: 15.583,
            local_sense_amp_pj: 1.257,
            local_wordline_pj: 0.046,
            row_decoder_pj: 0.035,
            activation_bus_pj: 17.944,
            row_predecoder_pj: 0.072,
            mats_per_row: 16,
        }
    }

    /// Energy of activating one MAT's slice of the row (pJ). The paper's
    /// Table 2 totals this to 16.921 pJ.
    pub fn per_mat_energy_pj(&self) -> f64 {
        self.local_bitline_pj
            + self.local_sense_amp_pj
            + self.local_wordline_pj
            + self.row_decoder_pj
    }

    /// Bank-shared energy spent on any activation regardless of width (pJ).
    pub fn shared_energy_pj(&self) -> f64 {
        self.activation_bus_pj + self.row_predecoder_pj
    }

    /// Total energy of an activation driving `mats` MATs (pJ).
    ///
    /// # Panics
    ///
    /// Panics if `mats` is 0 or exceeds [`ActivationEnergyModel::mats_per_row`].
    pub fn energy_per_activation_pj(&self, mats: u32) -> f64 {
        // sim-lint: allow(panic-reachability): the hot-path caller (EnergyAccounting::activation_mats) validates 1..=16 and the paper model has mats_per_row = 16
        assert!(
            mats >= 1 && mats <= self.mats_per_row,
            "mats must be 1..={}, got {mats}",
            self.mats_per_row
        );
        f64::from(mats) * self.per_mat_energy_pj() + self.shared_energy_pj()
    }

    /// Full-row activation energy per bank (pJ); 288.752 pJ in Table 2.
    pub fn full_row_energy_pj(&self) -> f64 {
        self.energy_per_activation_pj(self.mats_per_row)
    }

    /// Energy of a `mats`-wide activation relative to a full-row activation.
    pub fn scaling_factor(&self, mats: u32) -> f64 {
        self.energy_per_activation_pj(mats) / self.full_row_energy_pj()
    }

    /// Scaling factor for a PRA granularity expressed in eighths of a row
    /// (each eighth is one group of two MATs).
    pub fn scaling_for_granularity(&self, granularity_eighths: u32) -> f64 {
        let mats_per_group = self.mats_per_row / 8;
        self.scaling_factor(granularity_eighths * mats_per_group)
    }

    /// The Figure 9 series: energy and relative energy for 2, 4, ..., 16
    /// activated MATs.
    pub fn figure9_series(&self) -> Vec<Figure9Point> {
        let full = self.full_row_energy_pj();
        (1..=8)
            .map(|groups| {
                let mats = groups * (self.mats_per_row / 8);
                let energy = self.energy_per_activation_pj(mats);
                Figure9Point {
                    mats,
                    energy_pj: energy,
                    ratio: energy / full,
                }
            })
            .collect()
    }

    /// Projects the CACTI scaling factors onto an industrial full-row
    /// activation power (the paper's Section 5.1.1 "project scaling factors
    /// ... onto P_ACT"), yielding an alternative per-granularity ACT power
    /// array to Table 3's published one.
    pub fn project_onto_p_act(&self, p_act_full_mw: f64) -> [f64; 8] {
        let mut out = [0.0; 8];
        for g in 1..=8u32 {
            out[(g - 1) as usize] = p_act_full_mw * self.scaling_for_granularity(g);
        }
        out
    }
}

impl Default for ActivationEnergyModel {
    fn default() -> Self {
        ActivationEnergyModel::paper_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals() {
        let m = ActivationEnergyModel::paper_table2();
        assert!((m.per_mat_energy_pj() - 16.921).abs() < 1e-9);
        assert!((m.shared_energy_pj() - 18.016).abs() < 1e-9);
        assert!((m.full_row_energy_pj() - 288.752).abs() < 1e-9);
    }

    #[test]
    fn figure9_shape() {
        let m = ActivationEnergyModel::paper_table2();
        let series = m.figure9_series();
        assert_eq!(series.len(), 8);
        assert_eq!(series[0].mats, 2);
        assert_eq!(series[7].mats, 16);
        // Paper: "the energy reduction cannot reach 50% even though reducing
        // MATs by half because of shared structures".
        let half = &series[3]; // 8 MATs
        assert!(
            half.ratio > 0.5,
            "8-MAT ratio {} must exceed 0.5",
            half.ratio
        );
        assert!(half.ratio < 0.56);
        // Monotone increasing energy.
        for w in series.windows(2) {
            assert!(w[0].energy_pj < w[1].energy_pj);
        }
    }

    #[test]
    fn scaling_factor_bounds() {
        let m = ActivationEnergyModel::paper_table2();
        assert_eq!(m.scaling_factor(16), 1.0);
        let min = m.scaling_factor(2);
        assert!(min > 0.15 && min < 0.2, "1/8 row scaling {min}");
    }

    #[test]
    fn projection_anchors_at_full() {
        let m = ActivationEnergyModel::paper_table2();
        let arr = m.project_onto_p_act(22.2);
        assert!((arr[7] - 22.2).abs() < 1e-9);
        // The CACTI-projected values sit close to (within 10% of) the
        // published Table 3 numbers at every granularity.
        let published = [3.7, 6.4, 9.1, 11.6, 14.3, 16.9, 19.6, 22.2];
        for (i, (a, b)) in arr.iter().zip(published.iter()).enumerate() {
            let rel = (a - b).abs() / b;
            assert!(
                rel < 0.10,
                "granularity {}: projected {a:.2} vs published {b}",
                i + 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "mats must be")]
    fn zero_mats_rejected() {
        let _ = ActivationEnergyModel::paper_table2().energy_per_activation_pj(0);
    }
}
